"""Tests for the simulated communicator and the 4-D Cartesian grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import CartGrid, SimCommunicator, perlmutter_gpu


@pytest.fixture
def cluster():
    return perlmutter_gpu()


class TestSimCommunicator:
    def test_world(self, cluster):
        comm = SimCommunicator(cluster)
        assert comm.size == 40

    def test_subset_and_split(self, cluster):
        comm = SimCommunicator(cluster, range(8))
        subs = comm.split([[0, 1, 2, 3], [4, 5, 6, 7]])
        assert [s.size for s in subs] == [4, 4]

    def test_split_overlap_rejected(self, cluster):
        comm = SimCommunicator(cluster, range(8))
        with pytest.raises(ValueError):
            comm.split([[0, 1], [1, 2]])

    def test_invalid_ranks(self, cluster):
        with pytest.raises(ValueError):
            SimCommunicator(cluster, [0, 0])
        with pytest.raises(ValueError):
            SimCommunicator(cluster, [100])
        with pytest.raises(ValueError):
            SimCommunicator(cluster, [])

    def test_collective_times_positive(self, cluster):
        comm = SimCommunicator(cluster, range(16))
        b = 32 * 1024 * 1024
        assert comm.allreduce_time(b) > 0
        assert comm.alltoall_time(b) > 0
        assert comm.broadcast_time(b) > 0
        assert comm.transpose_padding_time(b) > 0


class TestCartGrid:
    def test_qbox_grid_shape(self):
        g = CartGrid(nspb=1, nkpb=2, nstb=4, ngb=2)
        assert g.size == 16
        assert g.dims == {"nspb": 1, "nkpb": 2, "nstb": 4, "ngb": 2}

    def test_rank_coords_roundtrip(self):
        g = CartGrid(nspb=2, nkpb=3, nstb=4, ngb=2)
        for r in range(g.size):
            s, k, b, gg = g.coords_of(r)
            assert g.rank_of(s, k, b, gg) == r

    def test_coordinate_bounds(self):
        g = CartGrid(nspb=1, nkpb=2, nstb=2)
        with pytest.raises(ValueError):
            g.rank_of(1, 0, 0, 0)
        with pytest.raises(ValueError):
            g.coords_of(g.size)

    def test_axis_group_is_fft_communicator(self):
        """The ngb ranks of one FFT transpose differ only along g."""
        g = CartGrid(nspb=1, nkpb=2, nstb=2, ngb=4)
        group = g.axis_group("ngb", s=0, k=1, b=1)
        assert len(group) == 4
        coords = [g.coords_of(r) for r in group]
        assert all((s, k, b) == (0, 1, 1) for s, k, b, _ in coords)
        assert sorted(gg for _, _, _, gg in coords) == [0, 1, 2, 3]

    def test_unknown_axis(self):
        with pytest.raises(ValueError):
            CartGrid(1, 1, 1).axis_group("nope")

    def test_local_counts_divisible(self):
        g = CartGrid(nspb=1, nkpb=4, nstb=8)
        assert g.local_counts(1, 36, 64) == (1, 9, 8)
        assert g.is_balanced(1, 36, 64)

    def test_local_counts_ceil_imbalance(self):
        g = CartGrid(nspb=1, nkpb=5, nstb=8)
        # 36 k-points over 5: busiest rank gets ceil(36/5) = 8.
        assert g.local_counts(1, 36, 64) == (1, 8, 8)
        assert not g.is_balanced(1, 36, 64)

    def test_oversized_grid_unbalanced(self):
        g = CartGrid(nspb=2, nkpb=1, nstb=1)
        assert not g.is_balanced(1, 36, 64)  # nspb > nspin -> idle ranks

    def test_validation(self):
        with pytest.raises(ValueError):
            CartGrid(0, 1, 1)
        with pytest.raises(ValueError):
            CartGrid(1, 1, 1).local_counts(0, 1, 1)

    @given(
        st.integers(1, 4), st.integers(1, 4), st.integers(1, 4), st.integers(1, 4)
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, s, k, b, g):
        grid = CartGrid(s, k, b, g)
        for r in range(0, grid.size, max(1, grid.size // 7)):
            assert grid.rank_of(*grid.coords_of(r)) == r
