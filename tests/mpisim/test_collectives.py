"""Tests for the collective cost models (Hockney/LogGP-style)."""

import pytest

from repro.mpisim import (
    allreduce_time,
    alltoall_time,
    broadcast_time,
    perlmutter_gpu,
    point_to_point_time,
    transpose_padding_time,
)


@pytest.fixture
def cluster():
    return perlmutter_gpu()


MB = 1024 * 1024


class TestPointToPoint:
    def test_intra_node_faster(self, cluster):
        b = 64 * MB
        assert point_to_point_time(cluster, b, same_node=True) < point_to_point_time(
            cluster, b, same_node=False
        )

    def test_monotone_in_bytes(self, cluster):
        small = point_to_point_time(cluster, MB, same_node=False)
        large = point_to_point_time(cluster, 100 * MB, same_node=False)
        assert large > small


class TestAllreduce:
    def test_single_rank_free(self, cluster):
        assert allreduce_time(cluster, 100 * MB, 1) == 0.0

    def test_zero_bytes_free(self, cluster):
        assert allreduce_time(cluster, 0, 16) == 0.0

    def test_grows_with_ranks_logarithmically(self, cluster):
        t8 = allreduce_time(cluster, 64 * MB, 8)
        t32 = allreduce_time(cluster, 64 * MB, 32)
        assert t8 < t32
        # Bandwidth term saturates at 2x bytes/bw: doubling ranks past 8
        # must not double the time.
        assert t32 < 2.0 * t8

    def test_bandwidth_term_dominates_large_messages(self, cluster):
        t = allreduce_time(cluster, 1024 * MB, 16)
        bw = cluster.interconnect.injection_bandwidth / cluster.ranks_per_node
        lower = 2.0 * (15 / 16) * 1024 * MB / bw
        assert t == pytest.approx(lower, rel=0.05)

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            allreduce_time(cluster, -1, 4)
        with pytest.raises(ValueError):
            allreduce_time(cluster, 10, 0)


class TestAlltoall:
    def test_single_rank_free(self, cluster):
        assert alltoall_time(cluster, 100 * MB, 1) == 0.0

    def test_scales_with_ranks(self, cluster):
        t4 = alltoall_time(cluster, 64 * MB, 4)
        t16 = alltoall_time(cluster, 64 * MB, 16)
        assert t16 > t4

    def test_intra_node_group_uses_shared_memory(self, cluster):
        # A 4-rank group fits one node: much faster than an 8-rank group
        # of the same total bytes that spills onto the network.
        t4 = alltoall_time(cluster, 64 * MB, 4)
        t8 = alltoall_time(cluster, 64 * MB, 8)
        assert t8 > 2 * t4


class TestBroadcast:
    def test_log_steps(self, cluster):
        # Both groups larger than one node, so the bandwidth regime is the
        # same and only the log2 step count differs: 4 steps vs 3.
        t8 = broadcast_time(cluster, MB, 8)
        t16 = broadcast_time(cluster, MB, 16)
        assert t16 == pytest.approx(t8 * 4 / 3, rel=0.01)


class TestTransposePadding:
    def test_includes_repack_cost(self, cluster):
        comm_only = alltoall_time(cluster, 64 * MB, 8)
        full = transpose_padding_time(cluster, 64 * MB, 8)
        assert full > comm_only

    def test_gpu_port_identity(self, cluster):
        """ngb = 1 eliminates the communication — only the local repack
        remains (the paper's motivation for the single-rank GPU
        transpose)."""
        t = transpose_padding_time(cluster, 64 * MB, 1)
        assert t == pytest.approx(1.15 * 64 * MB / cluster.node.memory_bandwidth)

    def test_padding_factor_validated(self, cluster):
        with pytest.raises(ValueError):
            transpose_padding_time(cluster, MB, 4, padding_factor=0.5)
