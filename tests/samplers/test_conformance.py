"""The conformance gauntlet: every registered sampler, same invariants.

Each test class is one invariant; each is parametrized over
:data:`~tests.samplers.conformance.GAUNTLET_ENGINES` (all seven
engines) and over seeds — seed 0 always runs, the extra seeds ride in
the CI ``sampler-conformance`` job via the ``slow`` marker.
"""

import pytest

from repro.bo import EvaluationDatabase
from repro.search import SearchCampaign, SearchSpec

from .conformance import (
    EXEMPT_ENGINES,
    GAUNTLET_ENGINES,
    Bowl,
    KillAfter,
    assert_conditional_validity,
    campaign_fingerprints,
    conditional_space,
    db_fingerprint,
    gauntlet_covers_registry,
    make_spec,
    mixed_space,
    numeric_space,
    result_fingerprint,
    run_once,
)

SEEDS = [0, pytest.param(1, marks=pytest.mark.slow),
         pytest.param(2, marks=pytest.mark.slow)]


def test_gauntlet_covers_every_registered_sampler():
    """A new sampler must opt into the gauntlet (or be exempted here)."""
    assert gauntlet_covers_registry(), (
        "registered samplers changed: update GAUNTLET_ENGINES (preferred) "
        f"or EXEMPT_ENGINES in tests/samplers/conformance.py "
        f"(exempt: {EXEMPT_ENGINES})"
    )


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestDeterminism:
    def test_same_seed_bit_identical(self, engine, seed):
        a = run_once(make_spec(engine), seed)
        b = run_once(make_spec(engine), seed)
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_engine_label_matches_registry_contract(self, engine, seed):
        r = run_once(make_spec(engine), seed)
        # Result labels keep their historical names ("bo", not "gp-bo"),
        # pinning ledger/report compatibility across the refactor.
        expected = {"gp-bo": "bo"}.get(engine, engine)
        assert r.engine == expected


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestKillAndResume:
    def test_resume_bit_identical_to_uninterrupted(
        self, engine, seed, tmp_path
    ):
        budget = 12
        space = numeric_space("KR")
        uninterrupted = run_once(
            make_spec(engine, space, budget=budget), seed
        )

        ck = tmp_path / "member.jsonl"
        killer = KillAfter(Bowl(), n_calls=7)
        with pytest.raises(KeyboardInterrupt):
            run_once(
                make_spec(engine, space, budget=budget, objective=killer),
                seed, checkpoint=str(ck),
            )
        persisted = EvaluationDatabase(ck)
        assert 0 < len(persisted) < budget, "kill must land mid-run"

        resumed = run_once(
            make_spec(engine, space, budget=budget), seed,
            checkpoint=str(ck),
        )
        assert resumed.database is not None
        assert len(resumed.database) == budget
        assert db_fingerprint(resumed.database) == db_fingerprint(
            uninterrupted.database
        )
        assert resumed.best_config == uninterrupted.best_config
        assert resumed.best_objective == uninterrupted.best_objective


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestParallelEqualsSequential:
    def test_campaign_members_bit_identical(self, engine, seed):
        seq = campaign_fingerprints(engine, seed=seed, parallel=False)
        par = campaign_fingerprints(engine, seed=seed, parallel=True)
        assert seq == par


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestConditionalValidity:
    def test_never_proposes_inactive_parameter(self, engine, seed):
        space = conditional_space()
        r = run_once(make_spec(engine, space, budget=10), seed)
        assert r.database is not None and len(r.database) > 0
        assert_conditional_validity(space, r.database)


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
class TestMemoizationCompatibility:
    def test_memoize_is_transparent(self, engine, seed):
        cold = run_once(make_spec(engine), seed)
        memo = run_once(make_spec(engine, memoize=True), seed)
        assert memo.best_config == cold.best_config
        assert memo.best_objective == cold.best_objective
        assert len(memo.database) == len(cold.database)
        for a, b in zip(cold.database, memo.database):
            assert a.config == b.config
            assert a.objective == b.objective
            assert a.cost == b.cost


@pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
class TestTelemetry:
    def test_emits_search_span_and_eval_events(self, engine):
        from repro.telemetry import MemorySink, NullClock, Telemetry

        sink = MemorySink()
        telemetry = Telemetry([sink], clock=NullClock())
        bare = run_once(make_spec(engine), 0)
        traced = run_once(
            make_spec(engine), 0, telemetry=telemetry, scope="gauntlet"
        )
        # Pure observer: identical results with telemetry on or off.
        assert result_fingerprint(traced) == result_fingerprint(bare)
        names = [
            e.get("name") for e in sink.events if e.get("kind") == "event"
        ]
        assert "search_start" in names
        spans = [
            e for e in sink.events
            if e.get("kind") == "span" and e.get("name") == "search"
        ]
        assert spans, f"no search span among events {sorted(set(names))}"
        evals = [e for e in sink.events if e.get("kind") == "eval"]
        assert len(evals) == len(traced.database)


class TestMixedSpaceSmoke:
    """Every engine must *run* on a mixed space (fallback or native)."""

    @pytest.mark.parametrize("engine", GAUNTLET_ENGINES)
    def test_runs_on_categorical_space(self, engine):
        r = run_once(make_spec(engine, mixed_space(), budget=8), 0)
        assert len(r.database) > 0
        assert r.best_objective == r.best_objective  # not NaN


class TestWarmStartCapability:
    """Samplers declaring warm_start must actually use seeded history."""

    @pytest.mark.parametrize("engine", ["tpe", "cma-es-lite"])
    def test_seeded_history_changes_proposals(self, engine):
        # Seed enough good history at a known optimum that a model-based
        # sampler concentrates near it; the cold run cannot.
        import numpy as np

        from repro.bo import Evaluation

        space = numeric_space("WS")
        rng = np.random.default_rng(0)
        seeds = []
        for _ in range(12):
            cfg = space.sample(rng)
            cfg["x"] = float(np.clip(0.35 + 0.01 * rng.standard_normal(), 0, 1))
            seeds.append(Evaluation(config=cfg, objective=Bowl()(cfg), cost=0.1))
        warm = run_once(
            make_spec(engine, space, budget=16, warm_start=seeds), 3
        )
        cold = run_once(make_spec(engine, space, budget=16), 3)
        assert warm.meta.get("warm_seeded") == 12
        assert db_fingerprint(warm.database) != db_fingerprint(cold.database)
