"""Capability declarations and explicit degradation.

A sampler asked to run on a space it does not support must degrade
*explicitly* — a ``UserWarning`` naming the unsupported features, a
uniform-feasible fallback, and ``meta["capability_fallback"]`` in the
result — never crash, and never silently mis-encode (a diagonal Gaussian
treating category indices as ordered, say).  CMA-ES-lite is the one
gauntlet sampler with declared gaps (categorical, conditional), so it
anchors these tests; the matrix checks cover every registered sampler.
"""

import warnings

import numpy as np
import pytest

from repro.search import run_search_spec
from repro.search.samplers import registered_samplers
from repro.search.samplers.base import (
    SamplerCapabilities,
    space_features,
    unsupported_features,
)

from .conformance import (
    Bowl,
    assert_conditional_validity,
    conditional_space,
    make_spec,
    mixed_space,
    numeric_space,
)

CAP_FIELDS = (
    "floats", "integers", "categorical", "multivariate", "conditional",
    "warm_start",
)


class TestCapabilityMatrix:
    def test_every_sampler_declares_a_full_matrix(self):
        for name, cls in registered_samplers().items():
            assert isinstance(cls.capabilities, SamplerCapabilities), name
            for field in CAP_FIELDS:
                assert isinstance(getattr(cls.capabilities, field), bool), (
                    f"{name}.capabilities.{field} is not a bool"
                )

    def test_cma_es_lite_declares_its_gaps(self):
        caps = registered_samplers()["cma-es-lite"].capabilities
        assert caps.floats and caps.integers and caps.multivariate
        assert not caps.categorical
        assert not caps.conditional

    def test_space_features_detect_what_a_space_needs(self):
        assert space_features(numeric_space()) == {
            "floats": True, "integers": True, "categorical": False,
            "conditional": False,
        }
        feats = space_features(conditional_space())
        assert feats["categorical"] and feats["conditional"]

    def test_unsupported_features_is_the_set_difference(self):
        caps = registered_samplers()["cma-es-lite"].capabilities
        assert unsupported_features(caps, numeric_space()) == []
        assert unsupported_features(caps, mixed_space()) == ["categorical"]
        assert unsupported_features(caps, conditional_space()) == [
            "categorical", "conditional",
        ]


class TestExplicitDegradation:
    """CMA-ES-lite on spaces outside its matrix: loud, safe, complete."""

    def test_categorical_space_warns_and_falls_back(self):
        spec = make_spec("cma-es-lite", mixed_space(), budget=12)
        with pytest.warns(UserWarning, match="cma-es-lite.*categorical"):
            r = run_search_spec(spec, np.random.SeedSequence(0))
        fb = r.meta.get("capability_fallback")
        assert fb is not None, "degradation must be recorded in the result"
        assert fb["sampler"] == "cma-es-lite"
        assert fb["unsupported"] == ["categorical"]
        assert fb["fallback"] == "uniform"
        # The full budget ran and every categorical value is a real
        # choice — nothing crashed, nothing was mis-encoded.
        assert len(r.database) == 12
        for rec in r.database:
            assert rec.config["alg"] in ("a", "b", "c")

    def test_conditional_space_falls_back_and_stays_valid(self):
        space = conditional_space()
        spec = make_spec("cma-es-lite", space, budget=12)
        with pytest.warns(UserWarning, match="categorical, conditional"):
            r = run_search_spec(spec, np.random.SeedSequence(1))
        fb = r.meta["capability_fallback"]
        assert fb["unsupported"] == ["categorical", "conditional"]
        assert len(r.database) == 12
        assert_conditional_validity(space, r.database)

    def test_supported_space_does_not_warn(self):
        spec = make_spec("cma-es-lite", numeric_space(), budget=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            r = run_search_spec(spec, np.random.SeedSequence(0))
        assert "capability_fallback" not in r.meta
        assert len(r.database) == 10

    def test_fallback_run_is_deterministic(self):
        spec = make_spec("cma-es-lite", mixed_space(), budget=10)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            a = run_search_spec(spec, np.random.SeedSequence(5))
            b = run_search_spec(
                make_spec("cma-es-lite", mixed_space(), budget=10),
                np.random.SeedSequence(5),
            )
        assert a.best_config == b.best_config
        assert [r.config for r in a.database] == [r.config for r in b.database]


class TestNativeConditionalSamplers:
    """Samplers declaring conditional support run without degradation."""

    @pytest.mark.parametrize("engine", ["tpe", "qmc"])
    def test_no_fallback_on_conditional_space(self, engine):
        space = conditional_space()
        spec = make_spec(engine, space, budget=10)
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            r = run_search_spec(spec, np.random.SeedSequence(0))
        assert "capability_fallback" not in r.meta
        assert_conditional_validity(space, r.database)

    def test_objective_still_improves_under_fallback(self):
        # Degraded is not broken: uniform fallback still finds a better
        # point than the first draw on an easy bowl.
        spec = make_spec(
            "cma-es-lite", mixed_space(), budget=24, objective=Bowl(0.2)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            r = run_search_spec(spec, np.random.SeedSequence(7))
        assert r.best_objective <= r.database[0].objective
