"""Shared conformance gauntlet for every registered sampler.

This module is the enforcement layer of the pluggable-sampler
architecture: :data:`GAUNTLET_ENGINES` lists every engine that must
honor the repo's hard invariants, and the helpers here express each
invariant once so ``test_conformance.py`` can parametrize the whole
matrix.  Adding a sampler to the registry means adding its name here
(or inheriting it via :func:`repro.search.samplers.registered_samplers`)
and passing the gauntlet — nothing else.

Everything at module level is picklable on purpose: the
parallel==sequential case round-trips member specs through a real
process pool.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.bo import EvaluationDatabase
from repro.search import SearchCampaign, SearchSpec, run_search_spec
from repro.search.samplers import registered_samplers
from repro.space import (
    Categorical,
    Condition,
    ConditionalSpace,
    Integer,
    Real,
    SearchSpace,
)

#: Engines that must pass the full gauntlet.  The local-search engines
#: (hillclimb, anneal) are registered but excluded: they predate the
#: checkpoint protocol (no evaluation database), so the resume and
#: memoization invariants do not apply to them.
GAUNTLET_ENGINES = (
    "gp-bo",
    "batch-bo",
    "random",
    "grid",
    "tpe",
    "cma-es-lite",
    "qmc",
)

#: Sanity guard: the gauntlet must cover every registered sampler except
#: the explicitly exempted local-search engines.
EXEMPT_ENGINES = ("hillclimb", "anneal")


def gauntlet_covers_registry() -> bool:
    return set(GAUNTLET_ENGINES) | set(EXEMPT_ENGINES) == set(
        registered_samplers()
    )


# ----------------------------------------------------------------------
# Spaces
# ----------------------------------------------------------------------

def numeric_space(label: str = "conf") -> SearchSpace:
    """All-numeric space every sampler supports natively."""
    return SearchSpace(
        [Real("x", 0.0, 1.0), Real("y", -1.0, 2.0), Integer("n", 1, 6)],
        name=label,
    )


def mixed_space(label: str = "conf-mixed") -> SearchSpace:
    """Adds a categorical axis (CMA-ES-lite falls back explicitly)."""
    return SearchSpace(
        [Real("x", 0.0, 1.0), Categorical("alg", ("a", "b", "c"))],
        name=label,
    )


def conditional_space(label: str = "conf-cond") -> ConditionalSpace:
    """Parent/child space: ``depth`` and ``width`` only exist under
    ``mode='deep'``; ``x`` is unconditional."""
    return ConditionalSpace(
        [
            Categorical("mode", ("flat", "deep")),
            Integer("depth", 1, 4),
            Integer("width", 2, 8),
            Real("x", 0.0, 1.0),
        ],
        conditions={
            "depth": Condition("mode", ("deep",)),
            "width": Condition("mode", ("deep",)),
        },
        name=label,
    )


# ----------------------------------------------------------------------
# Objectives (module-level classes: picklable for the process pool)
# ----------------------------------------------------------------------

class Bowl:
    """Deterministic mixed-type quadratic bowl, always positive."""

    def __init__(self, center: float = 0.35):
        self.center = center

    def __call__(self, cfg):
        total = 0.1
        for value in cfg.values():
            if isinstance(value, str):
                total += 0.05 * (len(value) % 3)
            else:
                total += (float(value) - self.center) ** 2
        return total


class KillAfter:
    """Objective that raises ``KeyboardInterrupt`` after N calls.

    Simulates a mid-run kill for the resume invariant.  Deliberately a
    hard, un-classified interrupt: nothing in the retry/failure stack
    may swallow it.
    """

    def __init__(self, inner, n_calls: int):
        self.inner = inner
        self.n_calls = n_calls
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        if self.calls > self.n_calls:
            raise KeyboardInterrupt
        return self.inner(cfg)


# ----------------------------------------------------------------------
# Runner + fingerprint helpers
# ----------------------------------------------------------------------

def make_spec(engine: str, space=None, *, budget: int = 10, **kwargs) -> SearchSpec:
    return SearchSpec(
        space=space if space is not None else numeric_space(),
        objective=kwargs.pop("objective", Bowl()),
        engine=engine,
        max_evaluations=budget,
        **kwargs,
    )


def run_once(spec: SearchSpec, seed: int, **kwargs):
    """One member search under the gauntlet's warning policy.

    Capability-fallback ``UserWarning``s are expected for samplers on
    spaces they do not support natively; everything else propagates.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return run_search_spec(spec, np.random.SeedSequence(seed), **kwargs)


def db_fingerprint(database: EvaluationDatabase) -> tuple:
    """Byte-comparable identity of an evaluation database."""
    return tuple(
        (
            tuple(sorted((k, repr(v)) for k, v in rec.config.items())),
            repr(rec.objective),
            repr(rec.cost),
            str(rec.status),
        )
        for rec in database
    )


def result_fingerprint(result) -> tuple:
    fp_db = (
        db_fingerprint(result.database) if result.database is not None else None
    )
    return (
        tuple(sorted((k, repr(v)) for k, v in result.best_config.items())),
        repr(result.best_objective),
        repr(result.search_time),
        fp_db,
    )


def campaign_fingerprints(engine: str, *, seed: int, parallel: bool) -> list:
    """Fingerprints of a 2-member campaign (the parallel== sequential case).

    Member spaces carry distinct names so the stable member keys derive
    distinct seeds, exactly like a real strategy campaign.
    """
    specs = [
        make_spec(engine, numeric_space("A"), budget=8),
        make_spec(engine, numeric_space("B"), budget=8, objective=Bowl(0.6)),
    ]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        result = SearchCampaign(
            specs, random_state=seed, parallel=parallel,
            n_workers=2 if parallel else None,
        ).run()
    if parallel:
        assert result.executed_parallel, (
            "pool fell back in-process; the parallel case would be vacuous"
        )
    return [result_fingerprint(s) for s in result.searches]


def assert_conditional_validity(space: ConditionalSpace, database) -> None:
    """No record may activate a dead branch or violate the space."""
    for rec in database:
        assert space.is_valid(rec.config), (
            f"invalid configuration evaluated: {rec.config}"
        )
        for name in space.names:
            if not space.is_active(name, rec.config):
                assert rec.config[name] == space.inactive_value(name), (
                    f"inactive parameter {name!r} not pinned in {rec.config}"
                )
