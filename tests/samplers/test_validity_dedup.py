"""The shared candidate-validity filter, pinned across engines.

Grid search, random search, and the generic sampler driver used to each
re-implement "may this configuration be evaluated?".  The filter now has
exactly one definition — :meth:`BaseSampler.candidate_is_valid` — and
these tests pin both halves of the dedup:

* the *semantics*: in-domain + constraints + conditional masking via
  ``space.is_valid``, plus an optional circuit-breaker veto;
* the *routing*: monkeypatching the shared filter changes what grid
  search, random search, and driver-based samplers will evaluate, which
  fails loudly if any engine regrows a private copy of the check.
"""

import numpy as np
import pytest

from repro.faults import CircuitBreaker
from repro.faults.taxonomy import FailureKind
from repro.search.grid_search import GridSearch
from repro.search.random_search import RandomSearch
from repro.search.samplers.base import BaseSampler

from .conformance import Bowl, conditional_space, numeric_space


class TestFilterSemantics:
    def test_accepts_feasible_config(self):
        space = numeric_space()
        assert BaseSampler.candidate_is_valid(
            space, {"x": 0.5, "y": 0.0, "n": 3}
        )

    def test_rejects_out_of_domain(self):
        space = numeric_space()
        assert not BaseSampler.candidate_is_valid(
            space, {"x": 1.5, "y": 0.0, "n": 3}
        )

    def test_rejects_unmasked_conditional(self):
        space = conditional_space()
        cfg = space.sample(np.random.default_rng(0))
        cfg["mode"] = "flat"
        bad = dict(cfg, depth=3)  # dead branch forced active
        bad["width"] = space.inactive_value("width")
        assert not BaseSampler.candidate_is_valid(space, bad)
        assert BaseSampler.candidate_is_valid(space, space.mask(bad))

    def test_breaker_vetoes_quarantined_cell(self):
        space = numeric_space()
        breaker = CircuitBreaker(space, threshold=1, resolution=2)
        cfg = {"x": 0.1, "y": -0.5, "n": 2}
        assert BaseSampler.candidate_is_valid(space, cfg, breaker)
        breaker.record(cfg, FailureKind.PERMANENT)
        assert not BaseSampler.candidate_is_valid(space, cfg, breaker)
        # No breaker: the same config is acceptable again.
        assert BaseSampler.candidate_is_valid(space, cfg)


def _veto_large_x(monkeypatch):
    """Route the shared filter through a spy that also vetoes x > 0.5."""
    calls = []
    original = BaseSampler.candidate_is_valid

    def spy(space, config, breaker=None):
        calls.append(dict(config))
        if float(config["x"]) > 0.5:
            return False
        return original(space, config, breaker)

    monkeypatch.setattr(BaseSampler, "candidate_is_valid", staticmethod(spy))
    return calls


class TestRoutingIsShared:
    """Patching the one filter changes every engine's behavior."""

    def test_random_search_routes_through_shared_filter(self, monkeypatch):
        calls = _veto_large_x(monkeypatch)
        rs = RandomSearch(
            numeric_space(),
            Bowl(),
            max_evaluations=10,
            random_state=np.random.default_rng(0),
        )
        result = rs.run()
        assert calls, "random search bypassed the shared validity filter"
        assert all(rec.config["x"] <= 0.5 for rec in result.database)

    def test_grid_search_routes_through_shared_filter(self, monkeypatch):
        calls = _veto_large_x(monkeypatch)
        gs = GridSearch(numeric_space(), Bowl(), max_evaluations=10)
        result = gs.run()
        assert calls, "grid search bypassed the shared validity filter"
        assert len(result.database) > 0
        assert all(rec.config["x"] <= 0.5 for rec in result.database)

    @pytest.mark.parametrize("engine", ["tpe", "qmc", "cma-es-lite"])
    def test_driver_samplers_route_through_shared_filter(
        self, monkeypatch, engine
    ):
        from .conformance import make_spec, run_once

        calls = _veto_large_x(monkeypatch)
        result = run_once(make_spec(engine, numeric_space(), budget=8), 0)
        assert calls, f"{engine} bypassed the shared validity filter"
        # The driver retries vetoed proposals and then falls back to
        # uniform feasible sampling (valid by construction, so exempt
        # from the filter) — the routing pin is therefore the rejected
        # proposal count, not the surviving configs.
        assert result.meta.get("invalid_proposals", 0) > 0, (
            f"{engine} never consulted the shared filter on its proposals"
        )
