"""Tests for the synthetic benchmark suite (paper Fig. 1 + Table I)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthetic import CASE_INFLUENCE, GROUP_VARIABLES, SyntheticFunction, all_cases


def det(case):
    """Deterministic (noise-free) instance."""
    return SyntheticFunction(case, noise_scale=0.0, random_state=0)


class TestStructure:
    def test_group_ownership_covers_all_20_vars(self):
        owned = [v for vs in GROUP_VARIABLES.values() for v in vs]
        assert sorted(owned) == sorted(f"x{i}" for i in range(20))
        assert all(len(vs) == 5 for vs in GROUP_VARIABLES.values())

    def test_case_validation(self):
        with pytest.raises(ValueError):
            SyntheticFunction(0)
        with pytest.raises(ValueError):
            SyntheticFunction(6)
        with pytest.raises(ValueError):
            SyntheticFunction(1, noise_scale=-1.0)

    def test_all_cases_factory(self):
        cases = all_cases(noise_scale=0.0)
        assert sorted(cases) == [1, 2, 3, 4, 5]
        assert all(isinstance(f, SyntheticFunction) for f in cases.values())

    def test_influence_labels(self):
        assert CASE_INFLUENCE[1] == "Very Low"
        assert CASE_INFLUENCE[5] == "Extremely High"


class TestHandDerivedValues:
    """Crafted points validated against the paper's formulas by hand."""

    def test_group1_at_ones(self):
        # x0..x4 = 1: quadratic terms vanish; A_i = 10 cos(0) = 10 each.
        f = det(1)
        x = [1.0] * 20
        assert f.group1_raw(x) == pytest.approx(50.0)

    def test_group1_quadratic_chain(self):
        f = det(1)
        x = [0.0] * 20
        x[0], x[1], x[2], x[3], x[4] = 3.0, 1.0, 1.0, 1.0, 1.0
        # (3-1)^2 = 4 plus A terms: A(3)=A(1)=10cos(2pi k)=10 each.
        assert f.group1_raw(x) == pytest.approx(4.0 + 50.0)

    def test_group2_quartic(self):
        f = det(1)
        x = [1.0] * 20
        x[5] = 3.0  # (3-1)^4 = 16; all A = 10.
        assert f.group2_raw(x) == pytest.approx(16.0 + 50.0)

    def test_group3_case1(self):
        f = det(1)
        x = [0.0] * 20
        for i in range(10, 15):
            x[i] = 2.0
        for v in range(15, 20):
            x[v] = 1.0  # cos(2 pi) = 1
        assert f.group3_raw(x) == pytest.approx(10.0 + 5.0)

    def test_group3_case2(self):
        f = det(2)
        x = [0.0] * 20
        x[10] = 3.0
        x[15] = 7.0
        assert f.group3_raw(x) == pytest.approx(9.0 + 7.0)

    def test_group3_case3(self):
        f = det(3)
        x = [0.0] * 20
        x[10] = 3.0
        x[15] = 7.0
        assert f.group3_raw(x) == pytest.approx(9.0 + 49.0)

    def test_group3_case4_pairing(self):
        f = det(4)
        x = [0.0] * 20
        x[10], x[15] = 2.0, 2.0  # (2 * 2^4)^2 = 1024
        assert f.group3_raw(x) == pytest.approx(1024.0)
        # Pairing is positional: x10 pairs with x15, not x16.
        x = [0.0] * 20
        x[10], x[16] = 2.0, 2.0
        assert f.group3_raw(x) == pytest.approx(0.0)

    def test_group3_case5_power8(self):
        f = det(5)
        x = [0.0] * 20
        x[11], x[16] = 1.0, 2.0  # (1 * 2^8)^2 = 65536
        assert f.group3_raw(x) == pytest.approx(65536.0)

    def test_group4_reciprocals(self):
        f = det(1)
        x = [1.0] * 20
        x[15], x[16], x[17], x[18], x[19] = 1.0, 2.0, 4.0, 5.0, 10.0
        assert f.group4_raw(x) == pytest.approx(1 + 0.5 + 0.25 + 0.2 + 0.1)

    def test_group4_zero_guard(self):
        f = det(1)
        x = [1.0] * 20
        x[15] = 0.0
        assert math.isfinite(f.group4_raw(x))

    def test_objective_is_sum_of_log_abs(self):
        f = det(3)
        cfg = f.vector_to_config([2.0] * 20)
        groups = f.group_objectives(cfg)
        assert f(cfg) == pytest.approx(sum(groups.values()))
        raw = f.group_raw_values(cfg)
        for g, v in raw.items():
            assert groups[g] == pytest.approx(math.log(abs(v)))


class TestInterdependenceDesign:
    def test_group3_reads_group4_vars(self):
        """The designed cross-routine coupling: x15..x19 move Group 3."""
        f = det(4)
        base = [1.0] * 20
        moved = list(base)
        moved[15] = 3.0
        assert f.group3_raw(moved) != f.group3_raw(base)

    def test_group1_isolated(self):
        f = det(3)
        base = [1.0] * 20
        for j in range(5, 20):
            moved = list(base)
            moved[j] = 9.0
            assert f.group1_raw(moved) == pytest.approx(f.group1_raw(base))

    def test_influence_grading_monotone(self):
        """Group 4's leverage on Group 3 grows with the case number.

        Integer coordinates keep the case-1 cosine terms pinned at 1, so
        the comparison isolates the designed power-law escalation.
        """
        base = [2.0] * 20
        ratios = []
        for case in range(1, 6):
            f = det(case)
            moved = list(base)
            for v in range(15, 20):
                moved[v] = 3.0
            b, m = abs(f.group3_raw(base)), abs(f.group3_raw(moved))
            ratios.append(abs(m - b) / max(b, 1e-12))
        assert ratios[0] < ratios[2] < ratios[3] < ratios[4]


class TestConfigInterface:
    def test_vector_roundtrip(self):
        f = det(1)
        x = list(np.linspace(-50, 50, 20))
        cfg = f.vector_to_config(x)
        assert f.config_to_vector(cfg) == pytest.approx(x)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            det(1).vector_to_config([1.0] * 19)

    def test_missing_key_rejected(self):
        cfg = det(1).vector_to_config([1.0] * 20)
        del cfg["x7"]
        with pytest.raises(KeyError):
            det(1)(cfg)

    def test_search_space_shape(self):
        sp = det(1).search_space()
        assert sp.dimension == 20
        assert sp["x0"].low == -50.0 and sp["x0"].high == 50.0

    def test_routines_shape(self):
        rs = det(1).routines()
        assert rs.names == ["Group 1", "Group 2", "Group 3", "Group 4"]
        assert rs["Group 3"].parameters == tuple(f"x{i}" for i in range(10, 15))
        assert rs.shared_parameters() == {}

    def test_routine_objectives_are_abs_outputs(self):
        f = det(2)
        cfg = f.vector_to_config([2.0] * 20)
        rs = f.routines()
        outs = f.group_outputs(cfg)
        for r in rs:
            assert r.evaluate(cfg) == pytest.approx(outs[r.name])


class TestNoise:
    def test_noise_zero_is_deterministic(self):
        f = det(3)
        cfg = f.vector_to_config([2.0] * 20)
        assert f(cfg) == f(cfg)

    def test_noise_perturbs_but_small(self):
        f = SyntheticFunction(3, noise_scale=0.001, random_state=0)
        cfg = f.vector_to_config([5.0] * 20)
        vals = [f(cfg) for _ in range(10)]
        assert len(set(vals)) > 1
        assert np.std(vals) < 0.05 * abs(np.mean(vals))

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=20, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_objective_always_finite(self, x):
        f = SyntheticFunction(5, noise_scale=0.001, random_state=0)
        assert math.isfinite(f.evaluate_vector(x))
