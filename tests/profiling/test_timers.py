"""Tests for the region timers."""

import time

import pytest

from repro.profiling import RegionTimer, TimingReport


class TestRegionTimer:
    def test_accumulates(self):
        t = RegionTimer()
        for _ in range(3):
            with t.region("work"):
                time.sleep(0.001)
        assert t.count("work") == 3
        assert t.total("work") >= 0.003

    def test_add_external(self):
        t = RegionTimer()
        t.add("sim", 2.5)
        t.add("sim", 1.5, count=2)
        assert t.total("sim") == pytest.approx(4.0)
        assert t.count("sim") == 3

    def test_timing_survives_exception(self):
        t = RegionTimer()
        with pytest.raises(RuntimeError):
            with t.region("risky"):
                raise RuntimeError
        assert t.count("risky") == 1

    def test_validation(self):
        t = RegionTimer()
        with pytest.raises(ValueError):
            with t.region(""):
                pass
        with pytest.raises(ValueError):
            t.add("x", -1.0)

    def test_reset(self):
        t = RegionTimer()
        t.add("a", 1.0)
        t.reset()
        assert t.regions == []


class TestReport:
    def test_shares(self):
        t = RegionTimer()
        t.add("fft", 6.0)
        t.add("comm", 4.0)
        rep = t.report()
        assert rep.grand_total == pytest.approx(10.0)
        assert rep.share("fft") == pytest.approx(0.6)

    def test_format_sorted(self):
        t = RegionTimer()
        t.add("small", 1.0)
        t.add("big", 9.0)
        text = t.report().format()
        assert text.index("big") < text.index("small")
        assert "TOTAL" in text

    def test_empty_report(self):
        rep = TimingReport()
        assert rep.grand_total == 0.0
