"""Tests for the region timers."""

import time

import pytest

from repro.profiling import RegionTimer, TimingReport


class TestRegionTimer:
    def test_accumulates(self):
        t = RegionTimer()
        for _ in range(3):
            with t.region("work"):
                time.sleep(0.001)
        assert t.count("work") == 3
        assert t.total("work") >= 0.003

    def test_add_external(self):
        t = RegionTimer()
        t.add("sim", 2.5)
        t.add("sim", 1.5, count=2)
        assert t.total("sim") == pytest.approx(4.0)
        assert t.count("sim") == 3

    def test_timing_survives_exception(self):
        t = RegionTimer()
        with pytest.raises(RuntimeError):
            with t.region("risky"):
                raise RuntimeError
        assert t.count("risky") == 1

    def test_validation(self):
        t = RegionTimer()
        with pytest.raises(ValueError):
            with t.region(""):
                pass
        with pytest.raises(ValueError):
            t.add("x", -1.0)

    def test_reset(self):
        t = RegionTimer()
        t.add("a", 1.0)
        t.reset()
        assert t.regions == []


class TestReport:
    def test_shares(self):
        t = RegionTimer()
        t.add("fft", 6.0)
        t.add("comm", 4.0)
        rep = t.report()
        assert rep.grand_total == pytest.approx(10.0)
        assert rep.share("fft") == pytest.approx(0.6)

    def test_format_sorted(self):
        t = RegionTimer()
        t.add("small", 1.0)
        t.add("big", 9.0)
        text = t.report().format()
        assert text.index("big") < text.index("small")
        assert "TOTAL" in text

    def test_empty_report(self):
        rep = TimingReport()
        assert rep.grand_total == 0.0

    def test_long_names_stay_aligned(self):
        t = RegionTimer()
        t.add("a_region_name_well_beyond_twenty_four_chars", 2.0)
        t.add("short", 1.0)
        lines = t.report().format().splitlines()
        # Every row's time column starts at the same offset.
        offsets = {line.rindex("s ") for line in lines[1:-1]}
        assert len(offsets) == 1
        total_line = lines[-1]
        assert total_line.rstrip().endswith("s")
        assert total_line.rindex("s") >= max(offsets)


class TestReportSerialization:
    def test_json_roundtrip(self):
        t = RegionTimer()
        t.add("fft", 6.0, count=3)
        t.add("comm", 4.0)
        rep = t.report()
        back = TimingReport.from_json(rep.to_json())
        assert back.entries == rep.entries
        assert back.grand_total == pytest.approx(rep.grand_total)

    def test_json_is_deterministic(self):
        a, b = RegionTimer(), RegionTimer()
        a.add("x", 1.0)
        a.add("y", 2.0)
        b.add("y", 2.0)
        b.add("x", 1.0)
        assert a.report().to_json() == b.report().to_json()

    def test_merge_sums_totals_and_counts(self):
        t1, t2 = RegionTimer(), RegionTimer()
        t1.add("fft", 6.0, count=2)
        t1.add("solo", 1.0)
        t2.add("fft", 4.0)
        merged = t1.report().merge(t2.report())
        assert merged.entries["fft"] == (pytest.approx(10.0), 3)
        assert merged.entries["solo"] == (pytest.approx(1.0), 1)
        # Inputs untouched.
        assert t1.report().entries["fft"] == (pytest.approx(6.0), 2)
