"""Tests for the campaign runner and result aggregation."""

import numpy as np
import pytest

from repro.search import CampaignResult, SearchCampaign, SearchResult, SearchSpec
from repro.space import Real, SearchSpace


def space(names, label):
    return SearchSpace([Real(n, 0.0, 1.0) for n in names], name=label)


def quad(center):
    def f(cfg):
        return sum((v - center) ** 2 for v in cfg.values()) + 0.05

    return f


class TestCampaign:
    def test_runs_all_members(self):
        specs = [
            SearchSpec(space(["a", "b"], "S1"), quad(0.3), engine="random",
                       max_evaluations=20),
            SearchSpec(space(["c"], "S2"), quad(0.7), engine="random",
                       max_evaluations=10),
        ]
        result = SearchCampaign(specs, strategy="test", random_state=0).run()
        assert result.strategy == "test"
        assert [s.name for s in result.searches] == ["S1", "S2"]
        assert result.n_evaluations == 30

    def test_combined_config_merges_tuned_values(self):
        specs = [
            SearchSpec(space(["a"], "S1"), quad(0.2), engine="random",
                       max_evaluations=15),
            SearchSpec(space(["b"], "S2"), quad(0.9), engine="random",
                       max_evaluations=15),
        ]
        result = SearchCampaign(specs, random_state=0).run()
        combined = result.combined_config
        assert set(combined) == {"a", "b"}
        assert abs(combined["a"] - 0.2) < 0.3
        assert abs(combined["b"] - 0.9) < 0.3
        assert result.overlaps == set()

    def test_subspace_pins_do_not_overwrite_tuned(self):
        """A pinned default from one subsearch must not clobber another
        search's tuned value in the merged configuration."""
        full = space(["a", "b"], "full")
        sub_a = full.subspace(["a"], pinned={"b": 0.123}, name="A")
        sub_b = full.subspace(["b"], pinned={"a": 0.123}, name="B")
        specs = [
            SearchSpec(sub_a, quad(0.9), engine="random", max_evaluations=20),
            SearchSpec(sub_b, quad(0.9), engine="random", max_evaluations=20),
        ]
        result = SearchCampaign(specs, random_state=0).run()
        combined = result.combined_config
        # Both tuned values near 0.9, neither stuck at the 0.123 pin.
        assert abs(combined["a"] - 0.9) < 0.3
        assert abs(combined["b"] - 0.9) < 0.3

    def test_wall_time_is_max_total_is_sum(self):
        r = CampaignResult(
            strategy="x",
            searches=[
                SearchResult("A", "bo", {}, 1.0, search_time=5.0, n_evaluations=10),
                SearchResult("B", "bo", {}, 1.0, search_time=2.0, n_evaluations=10),
            ],
        )
        assert r.wall_time == 5.0
        assert r.total_time == 7.0

    def test_bo_engine_through_campaign(self):
        specs = [
            SearchSpec(space(["a"], "S"), quad(0.4), engine="bo", max_evaluations=10)
        ]
        result = SearchCampaign(specs, random_state=0).run()
        s = result.searches[0]
        assert s.engine == "bo"
        assert s.database is not None and len(s.database) == 10

    def test_unknown_engine(self):
        specs = [SearchSpec(space(["a"], "S"), quad(0.5), engine="annealing")]
        with pytest.raises(ValueError, match="unknown engine"):
            SearchCampaign(specs).run()

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            SearchCampaign([])

    def test_member_seeds_independent_of_order(self):
        s1 = SearchSpec(space(["a"], "S1"), quad(0.3), engine="random",
                        max_evaluations=10)
        s2 = SearchSpec(space(["b"], "S2"), quad(0.6), engine="random",
                        max_evaluations=10)
        r_fwd = SearchCampaign([s1, s2], random_state=5).run()
        # Same campaign, same seed: deterministic.
        r_again = SearchCampaign([s1, s2], random_state=5).run()
        assert r_fwd.combined_config == r_again.combined_config

    def test_permuting_specs_leaves_every_result_unchanged(self):
        """Regression: seeds are keyed by member identity, not position —
        reordering specs must not reseed any member search."""
        s1 = SearchSpec(space(["a"], "S1"), quad(0.3), engine="random",
                        max_evaluations=10)
        s2 = SearchSpec(space(["b"], "S2"), quad(0.6), engine="bo",
                        max_evaluations=8)
        s3 = SearchSpec(space(["c"], "S3"), quad(0.9), engine="random",
                        max_evaluations=10)
        fwd = SearchCampaign([s1, s2, s3], random_state=5).run()
        rev = SearchCampaign([s3, s1, s2], random_state=5).run()
        by_name = {s.name: s for s in rev.searches}
        for s in fwd.searches:
            assert by_name[s.name].best_config == s.best_config
            assert by_name[s.name].best_objective == s.best_objective

    def test_removing_a_spec_does_not_reseed_the_others(self):
        """Regression: dropping one member must leave the remaining
        members' searches bit-identical."""
        s1 = SearchSpec(space(["a"], "S1"), quad(0.3), engine="random",
                        max_evaluations=10)
        s2 = SearchSpec(space(["b"], "S2"), quad(0.6), engine="random",
                        max_evaluations=10)
        s3 = SearchSpec(space(["c"], "S3"), quad(0.9), engine="random",
                        max_evaluations=10)
        full = SearchCampaign([s1, s2, s3], random_state=5).run()
        partial = SearchCampaign([s1, s3], random_state=5).run()
        by_name = {s.name: s for s in full.searches}
        for s in partial.searches:
            assert by_name[s.name].best_config == s.best_config
            assert by_name[s.name].best_objective == s.best_objective

    def test_default_budget_from_dimension(self):
        spec = SearchSpec(space(["a", "b", "c"], "S"), quad(0.5))
        assert spec.budget() == 30

    def test_evaluate_combined(self):
        specs = [
            SearchSpec(space(["a"], "S1"), quad(0.5), engine="random",
                       max_evaluations=10),
        ]
        result = SearchCampaign(specs, random_state=0).run()
        val = result.evaluate_combined(lambda cfg: cfg["a"] * 2.0)
        assert val == pytest.approx(result.combined_config["a"] * 2.0)

    def test_objective_sum(self):
        r = CampaignResult(
            strategy="x",
            searches=[
                SearchResult("A", "bo", {}, 1.5, 0.0, 1),
                SearchResult("B", "bo", {}, 2.5, 0.0, 1),
            ],
        )
        assert r.objective_sum() == 4.0


class TestExtendedEngines:
    @pytest.mark.parametrize("engine", ["hillclimb", "anneal", "batch-bo"])
    def test_engine_registry(self, engine):
        sp = space(["a", "b"], f"S-{engine}")
        spec = SearchSpec(sp, quad(0.4), engine=engine, max_evaluations=30)
        result = SearchCampaign([spec], random_state=0).run()
        s = result.searches[0]
        assert s.best_objective < 0.5
        assert s.tuned_names == ("a", "b")
        assert s.measured_time > 0
