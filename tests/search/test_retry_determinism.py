"""Retry/backoff determinism through the executor's resubmission path.

The campaign executor retries transient failures *inside* an evaluation
(:class:`RetryingObjective`) and resubmits whole members whose pool
worker died (``_pool_round``).  Both layers must compose without
breaking determinism: retry counters surface in the member metrics, and
the retry/backoff decisions a killed-and-resumed campaign replays are
identical to an uninterrupted run's — same records, same faults
injected, same retry totals.
"""

import os

from repro.faults import FaultPlan
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace
from repro.telemetry import MemorySink, Telemetry

SEED = 0

#: Every configuration faults exactly once, then succeeds — one retry
#: per evaluation, fully absorbed by ``max_retries=2``.
TRANSIENT_PLAN = FaultPlan(seed=SEED, transient_rate=1.0, transient_burst=1)


def space(names, label):
    return SearchSpace([Real(n, 0.0, 1.0) for n in names], name=label)


class Quad:
    def __init__(self, center):
        self.center = center

    def __call__(self, cfg):
        return sum((v - self.center) ** 2 for v in cfg.values()) + 0.05


class DieOnce:
    """Kills its pool worker hard (``os._exit``) on the first evaluation
    until the marker file exists; the resubmitted member then survives.
    Picklable, and the marker keeps the crash decision stable across the
    executor's re-pickling of resubmitted payloads."""

    def __init__(self, center, marker):
        self.center = center
        self.marker = marker

    def __call__(self, cfg):
        if not os.path.exists(self.marker):
            with open(self.marker, "w"):
                pass
            os._exit(1)
        return Quad(self.center)(cfg)


def spec(objective, n=8, fault_plan=TRANSIENT_PLAN, label="R1"):
    return SearchSpec(
        space(["a", "b"], label),
        objective,
        max_evaluations=n,
        fault_plan=fault_plan,
        max_retries=2,
        retry_backoff=0.001,
    )


def records(campaign, i=0):
    return [
        (r.config, r.objective, r.status)
        for r in campaign.searches[i].database
    ]


class TestRetryCountersInMemberMetrics:
    def test_sequential_counters(self):
        tel = Telemetry([MemorySink()])
        SearchCampaign(
            [spec(Quad(0.3))], random_state=SEED, telemetry=tel
        ).run()
        snap = tel.metrics.snapshot()
        # One injected transient per evaluation, each absorbed by one
        # retry — and absorbed means no FAILED records, so no "faults"
        # counters appear alongside.
        assert snap["counters"]["retries"] == 8.0
        assert not any(k.startswith("faults{") for k in snap["counters"])

    def test_parallel_counters_merge_identically(self):
        seq_tel = Telemetry([MemorySink()])
        SearchCampaign(
            [spec(Quad(0.3)), spec(Quad(0.7), label="R2")],
            random_state=SEED, telemetry=seq_tel,
        ).run()
        par_tel = Telemetry([MemorySink()])
        par = SearchCampaign(
            [spec(Quad(0.3)), spec(Quad(0.7), label="R2")],
            random_state=SEED, telemetry=par_tel, parallel=True, n_workers=2,
        ).run()
        assert par.executed_parallel
        assert (
            seq_tel.metrics.snapshot()["counters"]
            == par_tel.metrics.snapshot()["counters"]
        )


class TestBackoffReplayAcrossKillAndResume:
    def test_worker_death_and_resubmission_bit_identical(self, tmp_path):
        # Two members so the executor genuinely uses the process pool
        # (single-member campaigns run in-process, where DieOnce's
        # os._exit would kill the test runner itself).
        ref = SearchCampaign(
            [spec(Quad(0.4)), spec(Quad(0.7), label="R2")],
            random_state=SEED,
            checkpoint_dir=str(tmp_path / "ref"),
        ).run()

        # Chaos: member R1's pool worker dies hard on its first
        # evaluation; the executor resubmits to a fresh pool, which
        # resumes from the checkpoint and replays the same decisions.
        marker = str(tmp_path / "died-once")
        tel = Telemetry([MemorySink()])
        chaos = SearchCampaign(
            [spec(DieOnce(0.4, marker)), spec(Quad(0.7), label="R2")],
            random_state=SEED,
            checkpoint_dir=str(tmp_path / "chaos"),
            parallel=True,
            n_workers=2,
            telemetry=tel,
        ).run()
        assert os.path.exists(marker)  # the worker really died once
        assert records(chaos, 0) == records(ref, 0)
        assert records(chaos, 1) == records(ref, 1)
        assert (
            chaos.searches[0].best_objective == ref.searches[0].best_objective
        )
        # Replayed records never re-pay retries: the resubmitted members
        # paid one retry per *fresh* evaluation only.  How many records
        # the collateral-killed member had checkpointed before the pool
        # died is timing-dependent, so the exact total floats between
        # "R1's full 8" and "both members fully re-run" — but never
        # above 16 (which would mean replayed evaluations re-retried).
        assert 8.0 <= tel.metrics.snapshot()["counters"]["retries"] <= 16.0

    def test_kill_and_resume_replays_backoff_decisions(self, tmp_path):
        # Same campaign interrupted between legs: leg 1 evaluates a
        # prefix, leg 2 resumes and extends to the full budget.  The
        # injected-fault and retry decisions are keyed on (seed, config,
        # attempt) — never wall-clock — so the combined record stream is
        # identical to the uninterrupted reference.
        ref = SearchCampaign(
            [spec(Quad(0.4), n=12)],
            random_state=SEED,
            checkpoint_dir=str(tmp_path / "ref"),
        ).run()

        SearchCampaign(
            [spec(Quad(0.4), n=5)],
            random_state=SEED,
            checkpoint_dir=str(tmp_path / "kill"),
        ).run()
        tel = Telemetry([MemorySink()])
        resumed = SearchCampaign(
            [spec(Quad(0.4), n=12)],
            random_state=SEED,
            checkpoint_dir=str(tmp_path / "kill"),
            telemetry=tel,
        ).run()
        assert records(resumed) == records(ref)
        # Only the 7 fresh evaluations paid retries on the resumed leg.
        assert tel.metrics.snapshot()["counters"]["retries"] == 7.0
