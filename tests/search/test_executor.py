"""Tests for the fault-tolerant parallel campaign executor: parallel
determinism, checkpoint/resume, retries, and memoization."""

import os
import time

import numpy as np
import pytest

from repro.bo import EvaluationDatabase
from repro.search import (
    CampaignExecutor,
    MemoizingObjective,
    RetryingObjective,
    SearchCampaign,
    SearchSpec,
    canonical_key,
    run_search_spec,
    spec_seed_sequences,
)
from repro.space import Integer, Real, SearchSpace


def space(names, label):
    return SearchSpace([Real(n, 0.0, 1.0) for n in names], name=label)


class Quad:
    """Picklable quadratic objective (process-pool friendly)."""

    def __init__(self, center):
        self.center = center

    def __call__(self, cfg):
        return sum((v - self.center) ** 2 for v in cfg.values()) + 0.05


class SleepyQuad(Quad):
    """Quadratic with real per-evaluation wall-clock cost."""

    def __init__(self, center, delay):
        super().__init__(center)
        self.delay = delay

    def __call__(self, cfg):
        time.sleep(self.delay)
        return super().__call__(cfg)


def three_specs(engine="bo", n=10):
    return [
        SearchSpec(space(["a", "b"], "S1"), Quad(0.3), engine=engine,
                   max_evaluations=n),
        SearchSpec(space(["c"], "S2"), Quad(0.7), engine=engine,
                   max_evaluations=n),
        SearchSpec(space(["d", "e"], "S3"), Quad(0.5), engine=engine,
                   max_evaluations=n),
    ]


class TestParallelDeterminism:
    def test_parallel_matches_sequential_bit_identical(self):
        specs = three_specs()
        seq = SearchCampaign(specs, random_state=7).run()
        par = SearchCampaign(
            specs, random_state=7, parallel=True, n_workers=3
        ).run()
        assert par.executed_parallel
        assert not seq.executed_parallel
        for a, b in zip(seq.searches, par.searches):
            assert a.best_config == b.best_config
            assert a.best_objective == b.best_objective
            assert a.n_evaluations == b.n_evaluations

    def test_unpicklable_objective_falls_back_in_process(self):
        center = 0.4
        specs = [
            SearchSpec(space(["a"], "S1"), lambda cfg: (cfg["a"] - center) ** 2,
                       engine="random", max_evaluations=10),
            SearchSpec(space(["b"], "S2"), lambda cfg: (cfg["b"] - center) ** 2,
                       engine="random", max_evaluations=10),
        ]
        par = SearchCampaign(
            specs, random_state=1, parallel=True, n_workers=2
        ).run()
        seq = SearchCampaign(specs, random_state=1).run()
        assert not par.executed_parallel  # lambdas cannot cross processes
        for a, b in zip(seq.searches, par.searches):
            assert a.best_config == b.best_config

    def test_n_workers_one_runs_in_process(self):
        r = SearchCampaign(
            three_specs(engine="random"), random_state=0,
            parallel=True, n_workers=1,
        ).run()
        assert not r.executed_parallel
        assert len(r.searches) == 3

    def test_parallel_wall_clock_beats_sequential(self):
        # >= 3 equal members with real per-evaluation cost: the pool must
        # deliver genuine concurrency, not just a simulated max.
        specs = [
            SearchSpec(space([n], f"W{i}"), SleepyQuad(0.5, 0.05),
                       engine="random", max_evaluations=12)
            for i, n in enumerate(["a", "b", "c"])
        ]
        seq = SearchCampaign(specs, random_state=0).run()
        par = SearchCampaign(
            specs, random_state=0, parallel=True, n_workers=3
        ).run()
        assert par.executed_parallel
        assert par.measured_wall_time < 0.7 * seq.measured_total_time
        for a, b in zip(seq.searches, par.searches):
            assert a.best_config == b.best_config


class TestSeeding:
    def test_seeds_keyed_by_name_not_position(self):
        specs = three_specs(engine="random")
        seeds = spec_seed_sequences(specs, 42)
        permuted = [specs[2], specs[0], specs[1]]
        seeds_perm = spec_seed_sequences(permuted, 42)
        by_name = dict(zip(["S3", "S1", "S2"], seeds_perm))
        for spec, seed in zip(specs, seeds):
            other = by_name[spec.space.name]
            assert seed.entropy == other.entropy
            assert seed.spawn_key == other.spawn_key

    def test_duplicate_names_get_distinct_seeds(self):
        sp = space(["a"], "same")
        specs = [
            SearchSpec(sp, Quad(0.5), engine="random", max_evaluations=5),
            SearchSpec(sp, Quad(0.5), engine="random", max_evaluations=5),
        ]
        s1, s2 = spec_seed_sequences(specs, 0)
        assert s1.spawn_key != s2.spawn_key


class TestCheckpointResume:
    def test_checkpoint_files_created_and_resumed(self, tmp_path):
        specs = three_specs(n=8)
        ck = tmp_path / "ck"
        first = SearchCampaign(
            specs, random_state=3, checkpoint_dir=str(ck)
        ).run()
        files = sorted(os.listdir(ck))
        assert files == ["S1-0.jsonl", "S2-0.jsonl", "S3-0.jsonl"]

        # Rerun with the same checkpoint dir: members resume (replay, no
        # fresh evaluations) and reproduce the same incumbents.
        second = SearchCampaign(
            specs, random_state=3, checkpoint_dir=str(ck)
        ).run()
        for a, b in zip(first.searches, second.searches):
            assert b.n_evaluations == 0
            assert b.best_config == a.best_config
            assert b.best_objective == a.best_objective

    def test_killed_campaign_resumes_to_uninterrupted_result(self, tmp_path):
        sp = space(["a", "b"], "K")
        uninterrupted = SearchCampaign(
            [SearchSpec(sp, Quad(0.4), max_evaluations=14)], random_state=5
        ).run()

        calls = {"n": 0}

        def killer(cfg):
            calls["n"] += 1
            if calls["n"] > 9:
                raise KeyboardInterrupt  # simulated mid-run kill
            return Quad(0.4)(cfg)

        ck = tmp_path / "ck"
        with pytest.raises(KeyboardInterrupt):
            SearchCampaign(
                [SearchSpec(sp, killer, max_evaluations=14)],
                random_state=5, checkpoint_dir=str(ck),
            ).run()
        db = EvaluationDatabase(ck / "K-0.jsonl")
        assert 0 < len(db) < 14

        resumed = SearchCampaign(
            [SearchSpec(sp, Quad(0.4), max_evaluations=14)],
            random_state=5, checkpoint_dir=str(ck),
        ).run()
        s = resumed.searches[0]
        u = uninterrupted.searches[0]
        # Completed evaluations were replayed, not re-run ...
        assert s.n_evaluations == 14 - len(db)
        assert len(s.database) == 14
        # ... and the continuation is bit-identical to never crashing.
        assert s.best_config == u.best_config
        assert s.best_objective == u.best_objective


class IntQuad:
    """Deterministic objective over a small integer space, counting calls
    via a class attribute so pool-free tests can observe evaluations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        return abs(cfg["n"] - 3) + 1.0


class TestMemoization:
    def test_memoize_serves_repeats_from_cache(self):
        sp = SearchSpace([Integer("n", 0, 4)], name="M")
        obj = IntQuad()
        spec = SearchSpec(sp, obj, engine="random", max_evaluations=40,
                          memoize=True)
        r = SearchCampaign([spec], random_state=0).run()
        assert r.searches[0].n_evaluations == 40
        # Only 5 distinct configurations exist.
        assert obj.calls <= 5

    def test_memoizing_objective_canonicalizes(self):
        obj = MemoizingObjective(lambda cfg: cfg["x"] + cfg["y"])
        assert obj({"x": 1.0, "y": 2})[0] == 3.0
        value, meta = obj({"y": np.int64(2), "x": np.float64(1.0)})
        assert value == 3.0
        assert meta["cache_hit"] is True
        assert obj.misses == 1 and obj.hits == 1

    def test_cache_preseeded_from_checkpoint(self, tmp_path):
        sp = SearchSpace([Integer("n", 0, 4)], name="C")
        obj = IntQuad()
        spec = SearchSpec(sp, obj, engine="random", max_evaluations=10,
                          memoize=True)
        SearchCampaign([spec], random_state=0,
                       checkpoint_dir=str(tmp_path)).run()
        first_calls = obj.calls
        assert first_calls <= 5
        # Resume: all configs already measured -> zero fresh objective calls.
        SearchCampaign([spec], random_state=0,
                       checkpoint_dir=str(tmp_path)).run()
        assert obj.calls == first_calls

    def test_canonical_key_order_and_dtype_insensitive(self):
        a = canonical_key({"b": 2, "a": 1.0})
        b = canonical_key({"a": np.float64(1.0), "b": np.int64(2)})
        assert a == b


class Flaky:
    """Raises for the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures):
        self.remaining = n_failures

    def __call__(self, cfg):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient")
        return sum(cfg.values())


class TestRetry:
    def test_transient_failures_retried(self):
        sp = space(["a"], "F")
        spec = SearchSpec(sp, Flaky(2), engine="random", max_evaluations=6,
                          max_retries=3, retry_backoff=0.0)
        r = SearchCampaign([spec], random_state=0).run()
        s = r.searches[0]
        # Retries absorbed the transient errors: no FAILED records.
        assert all(rec.ok for rec in s.database)
        assert len(s.database) == 6

    def test_exhausted_retries_surface_as_failed(self):
        sp = space(["a"], "F")
        spec = SearchSpec(sp, Flaky(10**9), engine="bo", max_evaluations=5,
                          max_retries=1, retry_backoff=0.0)
        with pytest.raises(LookupError):  # every evaluation fails
            SearchCampaign([spec], random_state=0).run()

    def test_retrying_objective_backoff_and_count(self):
        obj = RetryingObjective(Flaky(2), max_retries=2, backoff=0.0)
        assert obj({"a": 1.0}) == 1.0
        assert obj.retries == 2

    def test_retrying_objective_validation(self):
        with pytest.raises(ValueError):
            RetryingObjective(Flaky(0), max_retries=-1)
        with pytest.raises(ValueError):
            RetryingObjective(Flaky(0), backoff=-0.5)


class TestExecutorAPI:
    def test_run_search_spec_direct(self):
        spec = SearchSpec(space(["a"], "D"), Quad(0.2), engine="random",
                          max_evaluations=10)
        seed = spec_seed_sequences([spec], 9)[0]
        r = run_search_spec(spec, seed)
        assert r.name == "D"
        assert r.measured_time > 0

    def test_executor_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            CampaignExecutor(n_workers=0)

    def test_mismatched_seeds_rejected(self):
        spec = SearchSpec(space(["a"], "D"), Quad(0.2), engine="random")
        with pytest.raises(ValueError):
            CampaignExecutor().run([spec], [], strategy="x")
