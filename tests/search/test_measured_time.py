"""Tests for the measured (real wall-clock) time accounting."""

import pytest

from repro.search import CampaignResult, SearchCampaign, SearchResult, SearchSpec
from repro.space import Real, SearchSpace


def spec(name, n=10):
    sp = SearchSpace([Real("a", 0.0, 1.0)], name=name)
    return SearchSpec(sp, lambda c: c["a"] + 0.1, engine="random", max_evaluations=n)


class TestMeasuredTime:
    def test_campaign_populates_measured_time(self):
        result = SearchCampaign([spec("A"), spec("B")], random_state=0).run()
        for s in result.searches:
            assert s.measured_time > 0.0

    def test_aggregates(self):
        r = CampaignResult(
            strategy="x",
            searches=[
                SearchResult("A", "bo", {}, 1.0, 5.0, 1, measured_time=2.0),
                SearchResult("B", "bo", {}, 1.0, 3.0, 1, measured_time=1.0),
            ],
        )
        assert r.measured_wall_time == 2.0
        assert r.measured_total_time == pytest.approx(3.0)
        # Simulated accounting untouched.
        assert r.wall_time == 5.0

    def test_default_zero(self):
        s = SearchResult("A", "bo", {}, 1.0, 1.0, 1)
        assert s.measured_time == 0.0
