"""Tests for the local-search baselines."""

import numpy as np
import pytest

from repro.search import HillClimbing, RandomSearch, SimulatedAnnealing
from repro.space import ExpressionConstraint, Integer, Ordinal, SearchSpace


def discrete_space():
    return SearchSpace(
        [Integer("x", 0, 20), Integer("y", 0, 20)], name="local"
    )


def bowl(c):
    return (c["x"] - 13) ** 2 + (c["y"] - 6) ** 2 + 1.0


class TestHillClimbing:
    def test_descends_to_optimum(self):
        r = HillClimbing(discrete_space(), bowl, max_evaluations=150,
                         random_state=0).run()
        assert r.best_objective == pytest.approx(1.0)
        assert r.best_config["x"] == 13 and r.best_config["y"] == 6

    def test_budget_respected(self):
        r = HillClimbing(discrete_space(), bowl, max_evaluations=37,
                         random_state=0).run()
        assert r.n_evaluations <= 37 + 4  # may finish the neighbor scan

    def test_restarts_escape_local_minima(self):
        """A two-basin objective: restarts must eventually find the
        deeper basin."""
        def two_basins(c):
            a = (c["x"] - 3) ** 2 + (c["y"] - 3) ** 2 + 5.0
            b = (c["x"] - 17) ** 2 + (c["y"] - 17) ** 2 + 1.0
            return min(a, b)

        r = HillClimbing(discrete_space(), two_basins, max_evaluations=400,
                         random_state=1).run()
        assert r.best_objective == pytest.approx(1.0)

    def test_respects_constraints(self):
        sp = SearchSpace(
            [Integer("x", 0, 20), Integer("y", 0, 20)],
            [ExpressionConstraint("x + y <= 20")],
        )
        r = HillClimbing(sp, bowl, max_evaluations=120, random_state=0).run()
        for rec in r.database:
            assert rec.config["x"] + rec.config["y"] <= 20

    def test_failures_skipped(self):
        def flaky(c):
            if c["x"] == 10:
                raise RuntimeError("boom")
            return bowl(c)

        r = HillClimbing(discrete_space(), flaky, max_evaluations=120,
                         random_state=0).run()
        assert r.best_config["x"] != 10


class TestSimulatedAnnealing:
    def test_finds_optimum_on_bowl(self):
        r = SimulatedAnnealing(discrete_space(), bowl, max_evaluations=400,
                               random_state=0).run()
        assert r.best_objective <= 3.0  # near the basin floor

    def test_beats_or_matches_random(self):
        sa_best, rs_best = [], []
        for seed in range(3):
            sa = SimulatedAnnealing(discrete_space(), bowl,
                                    max_evaluations=150, random_state=seed).run()
            rs = RandomSearch(discrete_space(), bowl, max_evaluations=150,
                              random_state=seed).run()
            sa_best.append(sa.best_objective)
            rs_best.append(rs.best_objective)
        assert np.mean(sa_best) <= np.mean(rs_best) + 1.0

    def test_temperature_schedule(self):
        sa = SimulatedAnnealing(discrete_space(), bowl, max_evaluations=100,
                                t_initial=1.0, t_final=0.01, random_state=0)
        assert sa._temperature(0) == pytest.approx(1.0)
        assert sa._temperature(99) == pytest.approx(0.01)
        assert sa._temperature(50) < sa._temperature(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(discrete_space(), bowl, t_initial=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealing(discrete_space(), bowl,
                               t_initial=0.1, t_final=0.5)
        with pytest.raises(ValueError):
            HillClimbing(discrete_space(), bowl, max_evaluations=0)

    def test_ordinal_space(self):
        sp = SearchSpace([Ordinal("u", [1, 2, 4, 8, 16])], name="ord")
        r = SimulatedAnnealing(sp, lambda c: abs(c["u"] - 8) + 1.0,
                               max_evaluations=40, random_state=0).run()
        assert r.best_config["u"] == 8
