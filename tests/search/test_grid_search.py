"""Tests for the grid-search baseline."""

import pytest

from repro.search import GridSearch
from repro.space import ExpressionConstraint, Integer, Ordinal, Real, SearchSpace


def small_space():
    return SearchSpace([Integer("x", 0, 4), Integer("y", 0, 4)], name="gs")


class TestExhaustive:
    def test_finds_exact_optimum(self):
        gs = GridSearch(small_space(), lambda c: (c["x"] - 3) ** 2 + (c["y"] - 1) ** 2 + 1)
        r = gs.run()
        assert r.best_config["x"] == 3 and r.best_config["y"] == 1
        assert r.best_objective == 1
        assert r.n_evaluations == 25

    def test_grid_size(self):
        gs = GridSearch(small_space(), lambda c: 1.0)
        assert gs.grid_size() == 25

    def test_constraints_skipped_not_counted_as_best(self):
        sp = SearchSpace(
            [Integer("x", 0, 4), Integer("y", 0, 4)],
            [ExpressionConstraint("x + y >= 2")],
        )
        r = GridSearch(sp, lambda c: c["x"] + c["y"] + 0.5).run()
        assert r.best_objective == pytest.approx(2.5)

    def test_continuous_axes_discretized(self):
        sp = SearchSpace([Real("a", 0.0, 1.0)])
        gs = GridSearch(sp, lambda c: abs(c["a"] - 0.33) + 0.1, points_per_axis=4)
        assert gs.grid_size() == 4
        r = gs.run()
        assert r.best_config["a"] == pytest.approx(1 / 3, abs=0.01)


class TestBudgeted:
    def test_strided_subset(self):
        gs = GridSearch(small_space(), lambda c: c["x"] + c["y"] + 1, max_evaluations=10)
        r = gs.run()
        assert r.n_evaluations <= 10

    def test_hard_limit_guards_exhaustive_runs(self):
        sp = SearchSpace([Integer(f"p{i}", 0, 9) for i in range(8)])  # 10^8
        gs = GridSearch(sp, lambda c: 1.0, hard_limit=1000)
        with pytest.raises(RuntimeError, match="hard_limit"):
            gs.run()

    def test_infeasible_grid_raises(self):
        sp = SearchSpace(
            [Integer("x", 0, 4)], [ExpressionConstraint("x > 100")]
        )
        with pytest.raises(RuntimeError, match="no feasible"):
            GridSearch(sp, lambda c: 1.0).run()


class TestValidation:
    def test_points_per_axis(self):
        with pytest.raises(ValueError):
            GridSearch(small_space(), lambda c: 1.0, points_per_axis=1)

    def test_failures_recorded(self):
        def flaky(c):
            if c["x"] == 2:
                raise RuntimeError("boom")
            return float(c["x"] + c["y"] + 1)

        r = GridSearch(small_space(), flaky).run()
        assert r.best_config["x"] != 2
        assert any(not rec.ok for rec in r.database)

    def test_ordinal_axes_native_grid(self):
        sp = SearchSpace([Ordinal("u", [1, 2, 4, 8])])
        gs = GridSearch(sp, lambda c: 1.0 / c["u"])
        r = gs.run()
        assert r.best_config["u"] == 8
        assert r.n_evaluations == 4
