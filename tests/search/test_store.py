"""EvaluationStore: persistence, provenance gating, concurrency, repair."""

import json
import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.search import (
    EvaluationStore,
    MemoizingObjective,
    canonical_key,
    space_fingerprint,
)
from repro.space import SearchSpace
from repro.synthetic import SyntheticFunction

DET = {"noise": 0.0, "seed": 0}


def key(x):
    return canonical_key({"x": x})


class TestRoundTrip:
    def test_record_then_lookup(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 3.5, {"rt": 0.5}, provenance=DET)
        entry = store.lookup("fp", key(1), provenance=DET)
        assert entry.value == 3.5
        assert entry.meta == {"rt": 0.5}

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore(path).record("fp", key(1), 2.0, provenance=DET)
        assert EvaluationStore(path).lookup("fp", key(1), provenance=DET).value == 2.0

    def test_missing_file_is_empty_store(self, tmp_path):
        store = EvaluationStore(tmp_path / "missing.jsonl")
        assert len(store) == 0
        assert store.lookup("fp", key(1)) is None

    def test_header_line_written(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore(path).record("fp", key(1), 1.0)
        first = json.loads(open(path).readline())
        assert first["format"] == "repro-evaluation-store"

    def test_record_idempotent(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0)
        store.record("fp", key(1), 1.0)
        with open(store.path) as f:
            assert sum(1 for _ in f) == 2  # header + one record

    def test_non_finite_refused(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        assert store.record("fp", key(1), float("nan")) is None
        assert store.record("fp", key(2), float("inf")) is None
        assert store.lookup("fp", key(1)) is None

    def test_lookup_config_and_spaces_scoped(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp-a", key(1), 1.0, provenance=DET)
        assert store.lookup_config("fp-a", {"x": 1}, provenance=DET) is not None
        assert store.lookup_config("fp-b", {"x": 1}, provenance=DET) is None

    def test_pickle_drops_handles(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0, provenance=DET)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.lookup("fp", key(1), provenance=DET).value == 1.0
        clone.record("fp", key(2), 2.0, provenance=DET)  # still writable


class TestProvenanceGating:
    def test_noise_free_served_across_seeds(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0, provenance={"noise": 0.0, "seed": 7})
        assert store.lookup("fp", key(1), provenance={"noise": 0.0, "seed": 99}) is not None

    def test_noisy_needs_exact_noise_and_seed(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0, provenance={"noise": 0.1, "seed": 5})
        assert store.lookup("fp", key(1), provenance={"noise": 0.1, "seed": 5}) is not None
        assert store.lookup("fp", key(1), provenance={"noise": 0.1, "seed": 6}) is None
        assert store.lookup("fp", key(1), provenance={"noise": 0.2, "seed": 5}) is None

    def test_noisy_never_served_to_noise_free(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0, provenance={"noise": 0.1, "seed": 5})
        assert store.lookup("fp", key(1), provenance=DET) is None

    def test_noise_free_not_served_to_noisy(self, tmp_path):
        store = EvaluationStore(tmp_path / "s.jsonl")
        store.record("fp", key(1), 1.0, provenance=DET)
        assert store.lookup("fp", key(1), provenance={"noise": 0.1, "seed": 0}) is None


class TestRefreshAndRepair:
    def test_refresh_sees_other_writer(self, tmp_path):
        path = tmp_path / "s.jsonl"
        reader = EvaluationStore(path)
        writer = EvaluationStore(path)
        writer.record("fp", key(1), 1.0, provenance=DET)
        assert reader.lookup("fp", key(1), provenance=DET) is None
        reader.refresh()
        assert reader.lookup("fp", key(1), provenance=DET).value == 1.0

    def test_incomplete_tail_not_consumed_then_completed(self, tmp_path):
        path = tmp_path / "s.jsonl"
        writer = EvaluationStore(path)
        writer.record("fp", key(1), 1.0, provenance=DET)
        reader = EvaluationStore(path)
        line = json.dumps(
            {"space": "fp", "key": key(2), "value": 2.0,
             "meta": {}, "provenance": dict(DET)}
        )
        with open(path, "a") as f:  # a writer mid-append
            f.write(line[:10])
            f.flush()
            assert reader.refresh() == 0
            f.write(line[10:] + "\n")
        assert reader.refresh() == 1
        assert reader.lookup("fp", key(2), provenance=DET).value == 2.0

    def test_torn_tail_repaired_on_writer_open(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore(path).record("fp", key(1), 1.0, provenance=DET)
        with open(path, "a") as f:
            f.write('{"space": "fp", "key"')  # crash mid-write
        store = EvaluationStore(path)
        assert store.lookup("fp", key(1), provenance=DET) is not None
        store.record("fp", key(2), 2.0, provenance=DET)
        # Every line parses after the repair + append.
        reloaded = EvaluationStore(path)
        assert reloaded.lookup("fp", key(2), provenance=DET).value == 2.0
        for raw in open(path):
            json.loads(raw)

    def test_malformed_line_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore(path).record("fp", key(1), 1.0, provenance=DET)
        with open(path, "a") as f:
            f.write("not json\n")
            f.write('{"missing": "fields"}\n')
        store = EvaluationStore(path)
        assert store.lookup("fp", key(1), provenance=DET) is not None


def _append_worker(path, space, start, count):
    store = EvaluationStore(path)
    for i in range(start, start + count):
        store.record(space, key(i), float(i), provenance={"noise": 0.0, "seed": 0})


class TestConcurrentWriters:
    def test_racing_processes_interleave_whole_lines(self, tmp_path):
        path = str(tmp_path / "s.jsonl")
        EvaluationStore(path).record("warm", key(-1), 0.0, provenance=DET)
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_append_worker, args=(path, f"fp-{w}", w * 100, 25))
            for w in range(4)
        ]
        for p in workers:
            p.start()
        for p in workers:
            p.join()
            assert p.exitcode == 0
        store = EvaluationStore(path)
        for w in range(4):
            for i in range(w * 100, w * 100 + 25):
                entry = store.lookup(f"fp-{w}", key(i), provenance=DET)
                assert entry is not None and entry.value == float(i)
        for raw in open(path):  # no torn or interleaved bytes
            json.loads(raw)


class TestSpaceFingerprint:
    def test_deterministic(self):
        app = SyntheticFunction(case=1)
        extra = {"app": "synthetic", "case": 1}
        assert space_fingerprint(app.search_space(), extra=extra) == (
            space_fingerprint(SyntheticFunction(case=1).search_space(), extra=extra)
        )

    def test_extra_context_separates_cases(self):
        space = SyntheticFunction(case=1).search_space()
        assert space_fingerprint(space, extra={"case": 1}) != space_fingerprint(
            space, extra={"case": 2}
        )

    def test_pinned_values_separate_subspaces(self):
        space = SyntheticFunction(case=1).search_space()
        names = [p.name for p in space.parameters]
        keep = names[:2]
        pin_param = space.parameters[2]
        sub_lo = space.subspace(keep, pinned={pin_param.name: pin_param.low})
        sub_hi = space.subspace(keep, pinned={pin_param.name: pin_param.high})
        assert space_fingerprint(sub_lo) != space_fingerprint(sub_hi)

    def test_different_spaces_differ(self):
        assert space_fingerprint(
            SyntheticFunction(case=1).search_space()
        ) != space_fingerprint(SyntheticFunction(case=3).search_space())


class TestMemoizingObjectiveStore:
    def _objective(self, calls):
        def obj(config):
            calls.append(dict(config))
            return float(config["x"]) * 2.0, {"m": 1}
        return obj

    def test_write_through_and_cross_job_hit(self, tmp_path):
        path = tmp_path / "s.jsonl"
        calls = []
        first = MemoizingObjective(
            self._objective(calls), store=EvaluationStore(path),
            store_scope="fp", provenance=DET,
        )
        assert first({"x": 3})[0] == 6.0
        assert first.misses == 1 and first.cross_hits == 0

        second = MemoizingObjective(
            self._objective(calls), store=EvaluationStore(path),
            store_scope="fp", provenance=DET,
        )
        value, meta = second({"x": 3})
        assert value == 6.0
        assert meta["cache_hit"] is True
        assert meta["cache_scope"] == "cross_job"
        assert second.cross_hits == 1 and second.misses == 0
        assert len(calls) == 1  # the objective ran exactly once overall

    def test_miss_polls_store_for_concurrent_appends(self, tmp_path):
        path = tmp_path / "s.jsonl"
        calls = []
        memo = MemoizingObjective(
            self._objective(calls), store=EvaluationStore(path),
            store_scope="fp", provenance=DET,
        )
        # Another job's write lands after this memoizer opened the store.
        EvaluationStore(path).record("fp", key(5), 42.0, provenance=DET)
        value, meta = memo({"x": 5})
        assert value == 42.0 and not calls
        assert memo.cross_hits == 1

    def test_local_hits_do_not_touch_cross_counter(self, tmp_path):
        calls = []
        memo = MemoizingObjective(
            self._objective(calls), store=EvaluationStore(tmp_path / "s.jsonl"),
            store_scope="fp", provenance=DET,
        )
        memo({"x": 1})
        memo({"x": 1})
        assert memo.hits == 1 and memo.cross_hits == 0 and len(calls) == 1

    def test_incompatible_provenance_is_a_miss(self, tmp_path):
        path = tmp_path / "s.jsonl"
        EvaluationStore(path).record(
            "fp", key(1), 9.0, provenance={"noise": 0.5, "seed": 3}
        )
        calls = []
        memo = MemoizingObjective(
            self._objective(calls), store=EvaluationStore(path),
            store_scope="fp", provenance=DET,
        )
        value, _ = memo({"x": 1})
        assert value == 2.0 and len(calls) == 1  # evaluated, not served
