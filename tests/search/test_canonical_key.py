"""Float canonicalization of ``canonical_key``: equal configs, one key."""

import json

import numpy as np

from repro.search import canonical_key


class TestSignedZero:
    def test_negative_zero_matches_positive_zero(self):
        assert canonical_key({"x": -0.0}) == canonical_key({"x": 0.0})

    def test_numpy_negative_zero(self):
        assert canonical_key({"x": np.float64(-0.0)}) == canonical_key({"x": 0.0})
        assert canonical_key({"x": np.float32(-0.0)}) == canonical_key({"x": 0.0})

    def test_zero_in_array_value(self):
        assert canonical_key({"x": np.array([-0.0, 1.0])}) == canonical_key(
            {"x": [0.0, 1.0]}
        )


class TestNarrowFloats:
    def test_float32_matches_python_float(self):
        # float(np.float32(0.1)) widens to 0.10000000149011612; the key
        # must recover the intended 0.1 or equal configs miss the cache.
        assert canonical_key({"x": np.float32(0.1)}) == canonical_key({"x": 0.1})

    def test_float16_matches_its_shortest_decimal(self):
        assert canonical_key({"x": np.float16(0.5)}) == canonical_key({"x": 0.5})

    def test_float64_unchanged(self):
        assert canonical_key({"x": np.float64(0.1)}) == canonical_key({"x": 0.1})

    def test_distinct_float32_values_stay_distinct(self):
        grid = np.linspace(0.0, 1.0, 33, dtype=np.float32)
        keys = {canonical_key({"x": v}) for v in grid}
        assert len(keys) == len(grid)

    def test_float32_array_elements(self):
        a = np.array([0.1, 0.2], dtype=np.float32)
        assert canonical_key({"x": a}) == canonical_key({"x": [0.1, 0.2]})


class TestKeyStability:
    def test_key_order_independent(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_numpy_scalars_coerced(self):
        key = canonical_key(
            {"i": np.int64(3), "f": np.float64(2.5), "b": np.bool_(True)}
        )
        assert key == canonical_key({"i": 3, "f": 2.5, "b": True})

    def test_key_is_json(self):
        decoded = json.loads(canonical_key({"x": 1, "y": "cat"}))
        assert decoded == {"x": 1, "y": "cat"}
