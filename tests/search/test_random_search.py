"""Tests for the random-search baseline."""

import numpy as np
import pytest

from repro.bo import EvaluationStatus
from repro.search import RandomSearch
from repro.space import ExpressionConstraint, Integer, Real, SearchSpace


def space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="rs")


def objective(cfg):
    return (cfg["a"] - 0.5) ** 2 + cfg["b"] + 0.1


class TestBasics:
    def test_budget_and_best(self):
        r = RandomSearch(space(), objective, max_evaluations=50, random_state=0).run()
        assert r.n_evaluations == 50
        assert r.engine == "random"
        assert 0.1 <= r.best_objective < 0.5
        assert r.best_objective == pytest.approx(objective(r.best_config), rel=1e-12)

    def test_default_budget(self):
        rs = RandomSearch(space(), objective)
        assert rs.max_evaluations == 20

    def test_respects_constraints(self):
        sp = SearchSpace(
            [Integer("x", 0, 9), Integer("y", 0, 9)],
            [ExpressionConstraint("x + y <= 9")],
        )
        r = RandomSearch(sp, lambda c: c["x"] + c["y"] + 1, max_evaluations=30,
                         random_state=0).run()
        for rec in r.database:
            assert rec.config["x"] + rec.config["y"] <= 9

    def test_deterministic_given_seed(self):
        a = RandomSearch(space(), objective, max_evaluations=20, random_state=9).run()
        b = RandomSearch(space(), objective, max_evaluations=20, random_state=9).run()
        assert a.best_objective == b.best_objective

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(space(), objective, max_evaluations=0)
        with pytest.raises(ValueError):
            RandomSearch(space(), objective, parallelism=0)


class TestParallelAccounting:
    def test_fully_parallel_time_is_max_cost(self):
        r = RandomSearch(space(), objective, max_evaluations=40, random_state=0).run()
        costs = [rec.cost for rec in r.database]
        assert r.search_time == pytest.approx(max(costs))

    def test_limited_parallelism_interpolates(self):
        full = RandomSearch(space(), objective, max_evaluations=40, random_state=0).run()
        p4 = RandomSearch(
            space(), objective, max_evaluations=40, parallelism=4, random_state=0
        ).run()
        p1 = RandomSearch(
            space(), objective, max_evaluations=40, parallelism=1, random_state=0
        ).run()
        total = sum(rec.cost for rec in p1.database)
        assert p1.search_time == pytest.approx(total)
        assert full.search_time < p4.search_time < p1.search_time
        # Greedy scheduling is near sum/slots for uniform-ish costs.
        assert p4.search_time >= total / 4

    def test_random_much_faster_than_sequential_same_budget(self):
        """The Table III effect: parallel random search's wall-clock is a
        tiny fraction of the sequential sum."""
        r = RandomSearch(space(), objective, max_evaluations=100, random_state=1).run()
        total = sum(rec.cost for rec in r.database)
        assert r.search_time < 0.05 * total


class TestFailures:
    def test_failing_objective_recorded(self):
        def flaky(cfg):
            if cfg["a"] > 0.8:
                raise RuntimeError("boom")
            return cfg["a"] + 0.1

        r = RandomSearch(space(), flaky, max_evaluations=40, random_state=0).run()
        failed = [rec for rec in r.database if rec.status == EvaluationStatus.FAILED]
        assert failed
        assert r.best_config["a"] <= 0.8

    def test_timeout(self):
        def slow(cfg):
            return 1000.0 if cfg["a"] > 0.5 else 1.0

        r = RandomSearch(
            space(), slow, max_evaluations=20, evaluation_timeout=10.0, random_state=0
        ).run()
        tos = [rec for rec in r.database if rec.status == EvaluationStatus.TIMEOUT]
        assert tos
        assert all(rec.cost == 10.0 for rec in tos)
        assert r.best_objective == pytest.approx(1.0)
