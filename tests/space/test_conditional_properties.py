"""Property-based conditional-space invariants (seeded splitmix64).

Randomly composed conditional spaces — a categorical switch per case,
children of every parameter type, chained grandchild conditions in some
draws, optional expression constraints — built deterministically per
case id in the same style as ``tests/space/test_space_properties.py``.
Seeds 0-29 run everywhere; the long tail is marked ``slow``.

Invariants:

* sampled configurations are valid and fully masked: every inactive
  child sits exactly at its ``inactive_value``,
* ``decode(encode(c))`` recovers every sampled configuration *including*
  the masking — the unit-cube codec can never resurrect a dead branch,
* repair sampling (constraint-rejected redraws) never activates a dead
  branch: even adversarial raw configs come out of ``mask`` pinned,
* ``space_from_dict(space_to_dict(s))`` preserves conditions: the clone
  masks, activates, and samples identically.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.space import (
    Categorical,
    Condition,
    ConditionalSpace,
    ExpressionConstraint,
    Integer,
    Ordinal,
    Real,
    check_all,
    space_from_dict,
    space_to_dict,
)

from ..bo.harness.generators import SplitMix64

FAST_SEEDS = range(30)
SLOW_SEEDS = range(30, 150)

ALL_SEEDS = [pytest.param(s, id=f"case{s}") for s in FAST_SEEDS] + [
    pytest.param(s, id=f"case{s}", marks=pytest.mark.slow) for s in SLOW_SEEDS
]


def random_conditional_space(rng: SplitMix64) -> ConditionalSpace:
    """A random conditional space: switch, children, sometimes chains.

    The first parameter is always a categorical switch with 2-4 modes;
    each subsequent child activates under a random strict subset of the
    modes.  About a third of the draws add a *grandchild* conditioned on
    an Integer child's low values (chained activity), and a quarter add
    an always-satisfiable constraint so repair sampling runs too.
    """
    n_modes = rng.int_between(2, 4)
    modes = [f"m{j}" for j in range(n_modes)]
    params = [Categorical("switch", modes)]
    conditions: dict[str, Condition] = {}
    n_children = rng.int_between(1, 4)
    numeric: list[tuple[str, float, float]] = []
    int_child: str | None = None
    for i in range(n_children):
        name = f"c{i}"
        # A strict subset of modes keeps every child genuinely
        # conditional (active under some configs, dead under others).
        n_on = rng.int_between(1, n_modes - 1)
        on = tuple(modes[j] for j in range(n_on))
        kind = rng.int_between(0, 3)
        if kind == 0:
            low = rng.uniform(-4.0, 0.0)
            high = low + rng.uniform(0.5, 8.0)
            params.append(Real(name, low, high))
            numeric.append((name, low, high))
        elif kind == 1:
            low = rng.int_between(1, 4)
            high = low + rng.int_between(2, 30)
            params.append(Integer(name, low, high))
            numeric.append((name, float(low), float(high)))
            int_child = name
        elif kind == 2:
            params.append(Ordinal(name, [2**j for j in range(rng.int_between(2, 5))]))
        else:
            params.append(
                Categorical(name, [f"v{j}" for j in range(rng.int_between(2, 4))])
            )
        conditions[name] = Condition("switch", on)
    if int_child is not None and rng.uniform() < 0.35:
        # Chained condition: a grandchild active only when its Integer
        # parent (itself conditional) sits in the lower half of its range.
        parent = next(p for p in params if p.name == int_child)
        mid = (parent.low + parent.high) // 2
        params.append(Real("gc", 0.0, 1.0))
        conditions["gc"] = Condition(
            int_child, tuple(range(parent.low, mid + 1))
        )
    constraints = []
    if numeric and rng.uniform() < 0.25:
        name, low, high = numeric[0]
        threshold = low + 0.7 * (high - low)
        constraints.append(ExpressionConstraint(f"{name} <= {threshold!r}", name="cap"))
    return ConditionalSpace(
        params,
        constraints,
        conditions=conditions,
        name=f"cond-{rng.next_u64() % 10**6}",
    )


def assert_masked(space: ConditionalSpace, cfg: dict) -> None:
    for name in space.names:
        if not space.is_active(name, cfg):
            assert cfg[name] == space.inactive_value(name), (
                f"inactive {name!r} holds {cfg[name]!r}, expected "
                f"{space.inactive_value(name)!r} in {cfg}"
            )


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_samples_are_valid_and_masked(seed):
    space = random_conditional_space(SplitMix64(seed))
    rng = np.random.default_rng(seed)
    configs = space.sample_batch(16, rng)
    assert configs, "sample_batch returned nothing from a feasible space"
    for cfg in configs:
        assert space.is_valid(cfg), f"sampled config invalid: {cfg}"
        assert set(cfg) == set(space.names)
        assert_masked(space, cfg)


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_encode_decode_roundtrip_preserves_masking(seed):
    space = random_conditional_space(SplitMix64(seed))
    rng = np.random.default_rng(seed)
    for cfg in space.sample_batch(12, rng):
        back = space.decode(space.encode(cfg))
        assert_masked(space, back)
        assert space.is_valid(back)
        for name in space.names:
            a, b = cfg[name], back[name]
            if isinstance(a, float):
                assert math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12), (
                    f"{name}: {a!r} -> {b!r}"
                )
            else:
                assert a == b, f"{name}: {a!r} -> {b!r}"


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_repair_and_mask_never_activate_dead_branch(seed):
    """Adversarial raw configs come out of ``mask`` with dead branches
    pinned — the property repair sampling (which re-masks every redraw)
    rests on."""
    stream = SplitMix64(seed)
    space = random_conditional_space(stream)
    rng = np.random.default_rng(seed)
    for cfg in space.sample_batch(8, rng):
        # Corrupt every conditional child with a live in-domain value,
        # then flip nothing else: mask must re-pin exactly the dead ones.
        raw = dict(cfg)
        for name, cond in space.conditions.items():
            p = space._by_name[name]
            raw[name] = p.from_unit(stream.uniform())
        masked = space.mask(raw)
        assert_masked(space, masked)
        # Masking restores conditional validity; a corrupted *active*
        # child may still violate an expression constraint, which is
        # repair's job, not mask's — so only that failure is tolerated.
        assert space.is_valid(masked) or not check_all(
            space.constraints, masked
        )
        # Active children keep their (possibly corrupted) raw value:
        # masking pins dead branches only, it never touches live ones.
        for name in space.conditions:
            if space.is_active(name, masked):
                assert masked[name] == raw[name]


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_serialize_roundtrip_preserves_conditions(seed):
    space = random_conditional_space(SplitMix64(seed))
    d = space_to_dict(space)
    clone = space_from_dict(d)
    assert isinstance(clone, ConditionalSpace)
    assert clone.conditions == space.conditions
    assert space_to_dict(clone) == d
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    for a, b in zip(space.sample_batch(8, rng_a), clone.sample_batch(8, rng_b)):
        assert a == b
        for name in space.names:
            assert clone.is_active(name, a) == space.is_active(name, a)
