"""Unit tests for repro.space.parameters."""

import math

import numpy as np
import pytest

from repro.space import Categorical, Constant, Integer, Ordinal, Real, parameters_from_dict


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestReal:
    def test_sample_in_bounds(self, rng):
        p = Real("x", -50.0, 50.0)
        vals = [p.sample(rng) for _ in range(200)]
        assert all(-50.0 <= v <= 50.0 for v in vals)

    def test_unit_roundtrip(self):
        p = Real("x", -50.0, 50.0)
        for v in (-50.0, -12.5, 0.0, 37.1, 50.0):
            assert p.from_unit(p.to_unit(v)) == pytest.approx(v)

    def test_from_unit_clips(self):
        p = Real("x", 0.0, 1.0)
        assert p.from_unit(-0.5) == 0.0
        assert p.from_unit(1.5) == 1.0

    def test_log_scale(self):
        p = Real("lr", 1e-6, 1e-2, log=True)
        assert p.from_unit(0.0) == pytest.approx(1e-6)
        assert p.from_unit(1.0) == pytest.approx(1e-2)
        assert p.from_unit(0.5) == pytest.approx(1e-4)

    def test_log_requires_positive_low(self):
        with pytest.raises(ValueError):
            Real("x", 0.0, 1.0, log=True)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Real("x", 5.0, 5.0)
        with pytest.raises(ValueError):
            Real("x", 5.0, 1.0)
        with pytest.raises(ValueError):
            Real("x", 0.0, math.inf)

    def test_contains(self):
        p = Real("x", 0.0, 10.0)
        assert p.contains(0.0) and p.contains(10.0) and p.contains(5.5)
        assert not p.contains(-0.1)
        assert not p.contains("abc")

    def test_default_midpoint(self):
        assert Real("x", 0.0, 10.0).default == pytest.approx(5.0)

    def test_explicit_default_validated(self):
        assert Real("x", 0.0, 10.0, default=2.0).default == 2.0
        with pytest.raises(ValueError):
            Real("x", 0.0, 10.0, default=20.0)

    def test_neighbors_inside_domain(self):
        p = Real("x", 0.0, 10.0)
        for v in (0.0, 5.0, 10.0):
            for n in p.neighbors(v):
                assert p.contains(n)
        # Boundary values only get one neighbor.
        assert len(p.neighbors(0.0)) == 1
        assert len(p.neighbors(10.0)) == 1
        assert len(p.neighbors(5.0)) == 2

    def test_grid(self):
        g = Real("x", 0.0, 10.0).grid(5)
        assert g == pytest.approx([0.0, 2.5, 5.0, 7.5, 10.0])

    def test_perturb_changes_value(self, rng):
        p = Real("x", -50.0, 50.0)
        v = 10.0
        assert p.perturb(v, 0.1, rng) != v

    def test_name_required(self):
        with pytest.raises(ValueError):
            Real("", 0.0, 1.0)


class TestInteger:
    def test_sample_in_bounds(self, rng):
        p = Integer("n", 1, 32)
        vals = [p.sample(rng) for _ in range(200)]
        assert all(isinstance(v, int) and 1 <= v <= 32 for v in vals)

    def test_unit_roundtrip(self):
        p = Integer("n", 1, 32)
        for v in (1, 7, 16, 32):
            assert p.from_unit(p.to_unit(v)) == v

    def test_cardinality(self):
        assert Integer("n", 1, 32).cardinality == 32
        assert Integer("n", -3, 3).cardinality == 7

    def test_contains_rejects_non_integral(self):
        p = Integer("n", 1, 10)
        assert p.contains(5)
        assert not p.contains(5.5)
        assert not p.contains(0)

    def test_neighbors(self):
        p = Integer("n", 1, 10)
        assert p.neighbors(1) == [2]
        assert p.neighbors(10) == [9]
        assert sorted(p.neighbors(5)) == [4, 6]

    def test_log_scale(self):
        p = Integer("n", 1, 1024, log=True)
        assert p.from_unit(0.0) == 1
        assert p.from_unit(1.0) == 1024
        assert p.from_unit(0.5) == 32

    def test_grid_subsampling(self):
        g = Integer("n", 1, 100).grid(5)
        assert g[0] == 1 and g[-1] == 100
        assert len(g) <= 5

    def test_non_integral_bounds_rejected(self):
        with pytest.raises(ValueError):
            Integer("n", 1.5, 10)


class TestOrdinal:
    def test_basic(self, rng):
        p = Ordinal("tb", [32, 64, 128, 256])
        assert p.cardinality == 4
        assert p.sample(rng) in p.values
        assert p.to_unit(32) == 0.0
        assert p.to_unit(256) == 1.0
        assert p.from_unit(0.34) == 64

    def test_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            Ordinal("tb", [64, 32])
        with pytest.raises(ValueError):
            Ordinal("tb", [32, 32, 64])
        with pytest.raises(ValueError):
            Ordinal("tb", [32])

    def test_neighbors(self):
        p = Ordinal("tb", [32, 64, 128])
        assert p.neighbors(32) == [64]
        assert p.neighbors(128) == [64]
        assert p.neighbors(64) == [32, 128]

    def test_roundtrip(self):
        p = Ordinal("tb", [1, 2, 4, 8, 16])
        for v in p.values:
            assert p.from_unit(p.to_unit(v)) == v

    def test_default(self):
        assert Ordinal("tb", [32, 64, 128], default=64).default == 64
        with pytest.raises(ValueError):
            Ordinal("tb", [32, 64], default=999)


class TestCategorical:
    def test_basic(self, rng):
        p = Categorical("algo", ["fft", "dgemm", "sparse"])
        assert p.cardinality == 3
        assert p.sample(rng) in p.choices
        assert p.contains("fft")
        assert not p.contains("nope")

    def test_roundtrip(self):
        p = Categorical("algo", ["a", "b", "c"])
        for c in p.choices:
            assert p.from_unit(p.to_unit(c)) == c

    def test_neighbors_are_all_others(self):
        p = Categorical("algo", ["a", "b", "c"])
        assert sorted(p.neighbors("b")) == ["a", "c"]

    def test_perturb_never_returns_same(self, rng):
        p = Categorical("algo", ["a", "b", "c"])
        for _ in range(20):
            assert p.perturb("a", 0.1, rng) != "a"

    def test_unique_choices_required(self):
        with pytest.raises(ValueError):
            Categorical("algo", ["a", "a"])


class TestConstant:
    def test_behaviour(self, rng):
        p = Constant("nspb", 1)
        assert p.sample(rng) == 1
        assert p.default == 1
        assert p.cardinality == 1
        assert p.contains(1) and not p.contains(2)
        assert p.neighbors(1) == []
        assert p.from_unit(0.7) == 1
        assert p.perturb(1, 0.1, rng) == 1

    def test_to_unit_rejects_other_values(self):
        with pytest.raises(ValueError):
            Constant("nspb", 1).to_unit(2)


class TestParametersFromDict:
    def test_inference(self):
        params = parameters_from_dict(
            {
                "n": (1, 32),
                "x": (0.0, 1.0),
                "tb": [32, 64, 128],
                "algo": ["fft", "dgemm"],
                "p": Real("p", 0.0, 2.0),
            }
        )
        types = {p.name: type(p).__name__ for p in params}
        assert types == {
            "n": "Integer",
            "x": "Real",
            "tb": "Ordinal",
            "algo": "Categorical",
            "p": "Real",
        }

    def test_unsorted_numeric_list_is_categorical(self):
        (p,) = parameters_from_dict({"z": [3, 1, 2]})
        assert type(p).__name__ == "Categorical"

    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parameters_from_dict({"a": Real("b", 0.0, 1.0)})

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            parameters_from_dict({"a": 42})
