"""Tests for per-constraint repair sampling (the vectorized sampler's
fallback when whole-config rejection would be hopeless)."""

import numpy as np
import pytest

from repro.space import (
    Constraint,
    ExpressionConstraint,
    Integer,
    SearchSpace,
)


def occupancy_space(n_kernels=5):
    """n disjoint occupancy constraints: joint acceptance ~0.2^n."""
    params, cons = [], []
    for k in range(n_kernels):
        params += [
            Integer(f"tb{k}", 32, 1024, default=256),
            Integer(f"sm{k}", 1, 32, default=4),
        ]
        cons.append(ExpressionConstraint(f"tb{k} * sm{k} <= 2048"))
    return SearchSpace(params, cons, name="occ")


class TestFeasibility:
    def test_never_fails_on_low_acceptance_product_spaces(self):
        """Joint acceptance here is ~0.04%; repair makes sampling robust."""
        sp = occupancy_space(5)
        rng = np.random.default_rng(0)
        for _ in range(200):
            cfg = sp.sample(rng)
            assert sp.is_valid(cfg)

    def test_batch_size_honored(self):
        sp = occupancy_space(5)
        rng = np.random.default_rng(1)
        batch = sp.sample_batch(300, rng)
        assert len(batch) == 300
        assert all(sp.is_valid(c) for c in batch)

    def test_overlapping_constraints_converge(self):
        """Constraints sharing a parameter still reach a fixpoint."""
        sp = SearchSpace(
            [Integer("a", 0, 100), Integer("b", 0, 100), Integer("c", 0, 100)],
            [
                ExpressionConstraint("a + b <= 60"),
                ExpressionConstraint("b + c <= 60"),
            ],
        )
        rng = np.random.default_rng(2)
        for cfg in sp.sample_batch(150, rng):
            assert cfg["a"] + cfg["b"] <= 60
            assert cfg["b"] + cfg["c"] <= 60

    def test_unsatisfiable_constraint_still_raises(self):
        from repro.space import InfeasibleSpaceError

        sp = SearchSpace(
            [Integer("a", 0, 9)], [ExpressionConstraint("a > 100")]
        )
        rng = np.random.default_rng(0)
        with pytest.raises(InfeasibleSpaceError):
            sp.sample(rng, max_rejects=200)


class TestUniformity:
    def test_disjoint_groups_sample_uniformly(self):
        """For disjoint constraint groups the feasible set is a product of
        per-group feasible sets, and per-constraint repair samples it
        exactly uniformly.  Checked empirically on a small grid."""
        sp = SearchSpace(
            [Integer("x", 0, 3), Integer("y", 0, 3)],
            [ExpressionConstraint("x + y <= 3")],  # 10 feasible points
        )
        rng = np.random.default_rng(3)
        counts = {}
        n = 8000
        for cfg in sp.sample_batch(n, rng):
            counts[(cfg["x"], cfg["y"])] = counts.get((cfg["x"], cfg["y"]), 0) + 1
        assert len(counts) == 10
        expected = n / 10
        # One caveat: this constraint is a *single* group, so repair is
        # plain per-group rejection — exactly uniform; allow 5-sigma noise.
        sigma = (expected * (1 - 1 / 10)) ** 0.5
        for k, c in counts.items():
            assert abs(c - expected) < 5 * sigma, (k, c, expected)

    def test_product_structure_marginals(self):
        """Two disjoint constrained pairs: the marginal distribution of one
        pair is unaffected by the other's repair."""
        sp = SearchSpace(
            [
                Integer("a", 0, 3), Integer("b", 0, 3),
                Integer("c", 0, 3), Integer("d", 0, 3),
            ],
            [
                ExpressionConstraint("a + b <= 2"),   # 6 feasible pairs
                ExpressionConstraint("c + d <= 2"),
            ],
        )
        rng = np.random.default_rng(4)
        counts_ab = {}
        n = 6000
        for cfg in sp.sample_batch(n, rng):
            counts_ab[(cfg["a"], cfg["b"])] = counts_ab.get((cfg["a"], cfg["b"]), 0) + 1
        assert len(counts_ab) == 6
        expected = n / 6
        sigma = (expected * (1 - 1 / 6)) ** 0.5
        for k, c in counts_ab.items():
            assert abs(c - expected) < 5 * sigma, (k, c, expected)


class TestOpaqueConstraintRepair:
    def test_callable_constraints_repairable(self):
        sp = SearchSpace(
            [Integer("p", 1, 64), Integer("q", 1, 64)],
            [Constraint(lambda c: c["p"] % c["q"] == 0, names=("p", "q"))],
        )
        rng = np.random.default_rng(5)
        for cfg in sp.sample_batch(50, rng):
            assert cfg["p"] % cfg["q"] == 0
