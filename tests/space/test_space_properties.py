"""Property-based search-space invariants (seeded splitmix64 generators).

Randomly composed spaces — every parameter type, log scales, optional
expression constraints — drawn deterministically per case id from
``tests/bo/harness/generators.random_space``.  Seeds 0–39 run everywhere;
the long tail is marked ``slow`` (full in CI, ``-m "not slow"`` locally).

Invariants:

* every sampled configuration satisfies the space's constraints,
* ``decode(encode(c))`` recovers every sampled configuration (exactly
  for discrete values; to rounding for floats — log-scale parameters go
  through ``exp(log(x))``, which is not a bitwise identity),
* ``space_from_dict(space_to_dict(s))`` is an identity: parameters
  compare equal, the dict re-serializes byte-identically, and both
  spaces sample identical configurations from the same RNG state,
* Latin-hypercube designs are feasible and exactly the requested size.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.space import space_from_dict, space_to_dict

from ..bo.harness.generators import SplitMix64, random_space

FAST_SEEDS = range(40)
SLOW_SEEDS = range(40, 240)

ALL_SEEDS = [pytest.param(s, id=f"case{s}") for s in FAST_SEEDS] + [
    pytest.param(s, id=f"case{s}", marks=pytest.mark.slow) for s in SLOW_SEEDS
]


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_samples_are_valid_and_roundtrip(seed):
    space = random_space(SplitMix64(seed))
    rng = np.random.default_rng(seed)
    configs = space.sample_batch(16, rng)
    assert configs, "sample_batch returned nothing from a feasible space"
    for cfg in configs:
        assert space.is_valid(cfg), f"sampled config violates constraints: {cfg}"
        assert set(cfg) == set(space.names)
        back = space.decode(space.encode(cfg))
        for name in space.names:
            a, b = cfg[name], back[name]
            if isinstance(a, float):
                # Log-scale reals round-trip through exp(log(x)): exact
                # up to floating-point rounding, not bitwise.
                assert math.isclose(a, b, rel_tol=1e-12, abs_tol=1e-12), (
                    f"{name}: {a!r} -> {b!r}"
                )
            else:
                assert a == b, f"{name}: {a!r} -> {b!r}"


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_serialize_roundtrip_is_identity(seed):
    space = random_space(SplitMix64(seed))
    payload = space_to_dict(space)
    rebuilt = space_from_dict(payload)

    assert rebuilt.names == space.names
    assert rebuilt.parameters == space.parameters
    # Re-serializing the rebuilt space reproduces the payload exactly.
    assert space_to_dict(rebuilt) == payload
    # Behavioral identity: both spaces draw the same configurations from
    # the same RNG state (serialization preserved scales/choices/bounds).
    a = space.sample_batch(8, np.random.default_rng(seed))
    b = rebuilt.sample_batch(8, np.random.default_rng(seed))
    assert a == b


@pytest.mark.parametrize(
    "seed",
    [pytest.param(s, id=f"case{s}") for s in range(20)]
    + [pytest.param(s, id=f"case{s}", marks=pytest.mark.slow)
       for s in range(20, 60)],
)
def test_latin_hypercube_is_feasible(seed):
    space = random_space(SplitMix64(seed))
    design = space.latin_hypercube(9, np.random.default_rng(seed))
    assert len(design) == 9
    for cfg in design:
        assert space.is_valid(cfg)


@pytest.mark.parametrize(
    "seed", [pytest.param(s, id=f"case{s}") for s in range(30)]
)
def test_neighbors_are_valid(seed):
    space = random_space(SplitMix64(seed))
    cfg = space.sample(np.random.default_rng(seed))
    for neighbor in space.neighbors(cfg):
        assert space.is_valid(neighbor), f"invalid neighbor: {neighbor}"


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_encode_batch_bitwise_equals_stacked_scalar_encode(seed):
    """The vectorized codec is *bitwise* the scalar one, per element.

    The batched acquisition path scores ``space.encode_batch(configs)``;
    proposal identity with the per-candidate reference loop requires the
    two encoders to agree exactly, not just to tolerance (both use the
    same numpy ufunc graph — see ``Parameter.to_unit_batch``).
    """
    space = random_space(SplitMix64(seed))
    rng = np.random.default_rng(seed)
    configs = space.sample_batch(16, rng)
    batched = space.encode_batch(configs)
    stacked = np.stack([space.encode(c) for c in configs])
    np.testing.assert_array_equal(batched, stacked)


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_decode_batch_equals_scalar_decode(seed):
    space = random_space(SplitMix64(seed))
    rng = np.random.default_rng(seed)
    configs = space.sample_batch(16, rng)
    X = space.encode_batch(configs)
    batched = space.decode_batch(X)
    scalar = [space.decode(x) for x in X]
    assert batched == scalar
