"""Unit and property-based tests for repro.space.space."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    Categorical,
    Constant,
    ExpressionConstraint,
    InfeasibleSpaceError,
    Integer,
    Ordinal,
    Real,
    SearchSpace,
)


def make_space():
    return SearchSpace(
        [
            Integer("tb", 32, 1024, default=256),
            Integer("tb_sm", 1, 32, default=4),
            Real("x", -50.0, 50.0),
            Ordinal("u", [1, 2, 4, 8]),
        ],
        [ExpressionConstraint("tb * tb_sm <= 2048")],
        name="test",
    )


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBasics:
    def test_dimension_and_names(self):
        sp = make_space()
        assert sp.dimension == 4
        assert sp.names == ["tb", "tb_sm", "x", "u"]
        assert "tb" in sp and "nope" not in sp
        assert sp["u"].cardinality == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([Integer("a", 0, 1), Integer("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_cardinality(self):
        sp = SearchSpace([Integer("a", 1, 10), Ordinal("b", [1, 2])])
        assert sp.cardinality() == 20
        assert make_space().cardinality() == math.inf  # has a Real axis

    def test_defaults_valid_per_parameter(self):
        sp = make_space()
        d = sp.defaults()
        for p in sp.parameters:
            assert p.contains(d[p.name])


class TestValidity:
    def test_is_valid(self):
        sp = make_space()
        good = {"tb": 64, "tb_sm": 32, "x": 0.0, "u": 4}
        bad = {"tb": 128, "tb_sm": 32, "x": 0.0, "u": 4}
        assert sp.is_valid(good)
        assert not sp.is_valid(bad)

    def test_missing_parameter_invalid(self):
        sp = make_space()
        assert not sp.is_valid({"tb": 64, "tb_sm": 1, "x": 0.0})

    def test_validate_messages(self):
        sp = make_space()
        with pytest.raises(ValueError, match="missing parameter"):
            sp.validate({"tb": 64})
        with pytest.raises(ValueError, match="outside domain"):
            sp.validate({"tb": 5000, "tb_sm": 1, "x": 0.0, "u": 1})


class TestSampling:
    def test_samples_always_valid(self, rng):
        sp = make_space()
        for _ in range(100):
            assert sp.is_valid(sp.sample(rng))

    def test_sample_batch(self, rng):
        sp = make_space()
        batch = sp.sample_batch(25, rng)
        assert len(batch) == 25
        assert all(sp.is_valid(c) for c in batch)

    def test_sample_batch_unique(self, rng):
        sp = SearchSpace([Integer("a", 1, 4)])
        batch = sp.sample_batch(4, rng, unique=True)
        assert sorted(c["a"] for c in batch) == [1, 2, 3, 4]

    def test_infeasible_space_raises(self, rng):
        sp = SearchSpace(
            [Integer("a", 1, 4)],
            [ExpressionConstraint("a > 100")],
        )
        with pytest.raises(InfeasibleSpaceError):
            sp.sample(rng, max_rejects=50)

    def test_latin_hypercube_valid_and_sized(self, rng):
        sp = make_space()
        design = sp.latin_hypercube(16, rng)
        assert len(design) == 16
        assert all(sp.is_valid(c) for c in design)

    def test_latin_hypercube_stratifies(self, rng):
        sp = SearchSpace([Real("x", 0.0, 1.0)])
        design = sp.latin_hypercube(10, rng)
        xs = sorted(c["x"] for c in design)
        # One point per decile.
        for i, v in enumerate(xs):
            assert i / 10 <= v <= (i + 1) / 10


class TestEncoding:
    def test_roundtrip(self, rng):
        sp = make_space()
        for _ in range(50):
            cfg = sp.sample(rng)
            assert sp.decode(sp.encode(cfg)) == cfg

    def test_encode_batch_shape(self, rng):
        sp = make_space()
        X = sp.encode_batch(sp.sample_batch(7, rng))
        assert X.shape == (7, 4)
        assert np.all((X >= 0) & (X <= 1))

    def test_encode_batch_empty(self):
        sp = make_space()
        assert sp.encode_batch([]).shape == (0, 4)

    def test_decode_wrong_shape(self):
        with pytest.raises(ValueError):
            make_space().decode([0.5, 0.5])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_decode_always_in_domain(self, u):
        sp = make_space()
        cfg = sp.decode(np.array(u))
        for p in sp.parameters:
            assert p.contains(cfg[p.name])


class TestSubspace:
    def test_subspace_pins_and_completes(self, rng):
        sp = make_space()
        sub = sp.subspace(["x", "u"])
        assert sub.dimension == 2
        cfg = sub.sample(rng)
        full = sub.complete(cfg)
        assert set(full) == {"tb", "tb_sm", "x", "u"}
        assert sp.is_valid(full)

    def test_subspace_pinned_override(self):
        sp = make_space()
        sub = sp.subspace(["x"], pinned={"tb": 64, "tb_sm": 2, "u": 8})
        full = sub.complete({"x": 1.0})
        assert full["tb"] == 64 and full["u"] == 8

    def test_subspace_respects_straddling_constraints(self, rng):
        sp = make_space()
        # Pin tb high: the occupancy constraint must restrict tb_sm.
        sub = sp.subspace(["tb_sm", "x", "u"], pinned={"tb": 1024})
        for _ in range(50):
            cfg = sub.sample(rng)
            assert cfg["tb_sm"] <= 2  # 1024 * tb_sm <= 2048

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_space().subspace(["nope"])

    def test_kept_and_pinned_disjoint(self):
        sp = make_space()
        sub = sp.subspace(["x"])
        assert "x" not in sub.pinned
        assert set(sub.pinned) == {"tb", "tb_sm", "u"}


class TestNeighbors:
    def test_neighbors_valid_one_step(self):
        sp = make_space()
        cfg = {"tb": 64, "tb_sm": 32, "x": 0.0, "u": 4}
        for n in sp.neighbors(cfg):
            assert sp.is_valid(n)
            diff = [k for k in cfg if n[k] != cfg[k]]
            assert len(diff) == 1

    def test_neighbors_respect_constraints(self):
        sp = make_space()
        # tb=64, tb_sm=32 sits on the constraint boundary: tb=96 invalid.
        cfg = {"tb": 64, "tb_sm": 32, "x": 0.0, "u": 4}
        for n in sp.neighbors(cfg):
            assert n["tb"] * n["tb_sm"] <= 2048


class TestWithConstant:
    def test_constant_in_space(self, rng):
        sp = SearchSpace([Constant("nspb", 1), Integer("nstb", 1, 8)])
        cfg = sp.sample(rng)
        assert cfg["nspb"] == 1
        assert sp.is_valid(cfg)
        assert sp.cardinality() == 8


class TestPinnedSubspaceDesigns:
    def test_latin_hypercube_respects_straddling_constraints(self, rng):
        sp = make_space()
        sub = sp.subspace(["tb_sm", "x"], pinned={"tb": 1024, "u": 2})
        design = sub.latin_hypercube(12, rng)
        for cfg in design:
            assert cfg["tb_sm"] <= 2  # 1024 * tb_sm <= 2048
            assert sp.is_valid(sub.complete(cfg))

    def test_sample_batch_through_repair(self, rng):
        sp = make_space()
        sub = sp.subspace(["tb", "tb_sm"], pinned={"x": 0.0, "u": 4})
        for cfg in sub.sample_batch(50, rng):
            assert cfg["tb"] * cfg["tb_sm"] <= 2048
