"""Tests for search-space JSON serialization."""

import json

import numpy as np
import pytest

from repro.space import (
    Categorical,
    Constant,
    Constraint,
    ExpressionConstraint,
    Integer,
    Ordinal,
    Real,
    SearchSpace,
    UnserializableConstraintError,
    load_space,
    save_space,
    space_from_dict,
    space_to_dict,
)


def full_space():
    return SearchSpace(
        [
            Real("x", -50.0, 50.0, default=1.0),
            Real("lr", 1e-6, 1e-2, log=True),
            Integer("tb", 32, 1024, default=256),
            Integer("tb_sm", 1, 32, default=4),
            Ordinal("u", [1, 2, 4, 8], default=2),
            Categorical("algo", ["fft", "dgemm"]),
            Constant("nspb", 1),
        ],
        [ExpressionConstraint("tb * tb_sm <= 2048", "occupancy")],
        name="round-trip",
    )


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        sp = full_space()
        sp2 = space_from_dict(space_to_dict(sp))
        assert sp2.name == sp.name
        assert sp2.names == sp.names
        for p, q in zip(sp.parameters, sp2.parameters):
            assert type(p) is type(q)
            assert p.default == q.default
        # Constraint behaviour survives.
        cfg = sp.defaults()
        assert sp2.is_valid(cfg)
        cfg["tb"], cfg["tb_sm"] = 1024, 32
        assert not sp2.is_valid(cfg)

    def test_json_compatible(self):
        json.dumps(space_to_dict(full_space()))

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "space.json")
        save_space(full_space(), path)
        sp2 = load_space(path)
        assert sp2.dimension == 7

    def test_sampling_equivalence(self):
        """Original and deserialized spaces describe the same domain."""
        sp = full_space()
        sp2 = space_from_dict(space_to_dict(sp))
        rng = np.random.default_rng(0)
        for cfg in sp.sample_batch(25, rng):
            assert sp2.is_valid(cfg)

    def test_log_scale_preserved(self):
        sp2 = space_from_dict(space_to_dict(full_space()))
        assert sp2["lr"].from_unit(0.5) == pytest.approx(1e-4)


class TestOpaqueConstraints:
    def test_opaque_raises(self):
        sp = SearchSpace(
            [Integer("a", 0, 9)],
            [Constraint(lambda c: c["a"] < 5, names=("a",))],
        )
        with pytest.raises(UnserializableConstraintError):
            space_to_dict(sp)

    def test_opaque_skippable(self):
        sp = SearchSpace(
            [Integer("a", 0, 9)],
            [Constraint(lambda c: c["a"] < 5, names=("a",))],
        )
        d = space_to_dict(sp, skip_opaque_constraints=True)
        assert d["constraints"] == []


class TestErrors:
    def test_unknown_type(self):
        with pytest.raises(ValueError):
            space_from_dict({"parameters": [{"type": "spline", "name": "x"}]})
