"""Unit tests for repro.space.constraints."""

import pickle

import pytest

from repro.space import Constraint, ConstraintViolation, ExpressionConstraint, check_all


class TestConstraint:
    def test_satisfied(self):
        c = Constraint(lambda c: c["a"] + c["b"] <= 10, names=["a", "b"])
        assert c.is_satisfied({"a": 3, "b": 7})
        assert not c.is_satisfied({"a": 5, "b": 7})

    def test_not_applicable_passes(self):
        c = Constraint(lambda c: c["a"] <= 10, names=["a"])
        assert c.is_satisfied({"b": 100})  # 'a' absent -> constraint idle

    def test_exception_means_infeasible(self):
        c = Constraint(lambda c: 1 / c["a"] > 0, names=["a"])
        assert not c.is_satisfied({"a": 0})

    def test_requires_names(self):
        with pytest.raises(ValueError):
            Constraint(lambda c: True, names=[])

    def test_requires_callable(self):
        with pytest.raises(TypeError):
            Constraint("not callable", names=["a"])

    def test_applies_to(self):
        c = Constraint(lambda c: True, names=["a", "b"])
        assert c.applies_to(["a", "b", "c"])
        assert not c.applies_to(["a"])


class TestExpressionConstraint:
    def test_occupancy_rule(self):
        c = ExpressionConstraint("tb * tb_sm <= 2048")
        assert c.is_satisfied({"tb": 64, "tb_sm": 32})
        assert not c.is_satisfied({"tb": 128, "tb_sm": 32})
        assert set(c.names) == {"tb", "tb_sm"}

    def test_boolean_composition(self):
        c = ExpressionConstraint("a < b and b < c")
        assert c.is_satisfied({"a": 1, "b": 2, "c": 3})
        assert not c.is_satisfied({"a": 3, "b": 2, "c": 1})

    def test_allowed_functions(self):
        c = ExpressionConstraint("min(a, b) >= 0 and abs(a - b) <= 5")
        assert c.is_satisfied({"a": 2, "b": 4})
        assert not c.is_satisfied({"a": -1, "b": 4})

    def test_disallowed_syntax_rejected(self):
        for expr in (
            "__import__('os').system('true')",
            "a.bit_length() > 0",
            "[x for x in range(3)]",
            "lambda: 1",
        ):
            with pytest.raises(ValueError):
                ExpressionConstraint(expr)

    def test_no_free_variables_rejected(self):
        with pytest.raises(ValueError):
            ExpressionConstraint("1 < 2")

    def test_picklable(self):
        c = ExpressionConstraint("a <= 10")
        c2 = pickle.loads(pickle.dumps(c))
        assert c2.is_satisfied({"a": 5})
        assert not c2.is_satisfied({"a": 50})

    def test_missing_parameter_means_idle(self):
        c = ExpressionConstraint("tb * tb_sm <= 2048")
        assert c.is_satisfied({"tb": 9999})  # tb_sm absent -> not applicable


class TestCheckAll:
    def test_all_pass(self):
        cs = [ExpressionConstraint("a <= 10"), ExpressionConstraint("a >= 0")]
        assert check_all(cs, {"a": 5})
        assert not check_all(cs, {"a": 50})

    def test_strict_raises(self):
        cs = [ExpressionConstraint("a <= 10")]
        with pytest.raises(ConstraintViolation):
            check_all(cs, {"a": 50}, strict=True)

    def test_empty_constraints(self):
        assert check_all([], {"a": 1})
