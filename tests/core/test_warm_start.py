"""BO warm-start reuse of Phase-1 observations (issue tentpole, layer c):
projection into seed history, executor injection, accounting, and the
cold-path bit-identity guarantee."""

import numpy as np
import pytest

from repro.bo.history import Evaluation, EvaluationDatabase
from repro.core import Routine, RoutineSet, TuningMethodology
from repro.search.cache import MemoizingObjective, canonical_key
from repro.search.executor import run_search_spec
from repro.search.runner import SearchSpec
from repro.space import Real, SearchSpace


def _fa(c):
    return (c["x"] - 3.0) ** 2 + 1.0


def _fb(c):
    return (c["y"] - 7.0) ** 2 + 2.0


def _profiler(c):
    return {"A": _fa(c), "B": _fb(c)}


def methodology(seed=0, **kwargs):
    space = SearchSpace(
        [Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)], name="tiny"
    )
    routines = RoutineSet(
        [Routine("A", ("x",), _fa), Routine("B", ("y",), _fb)],
        profiler=_profiler,
    )
    kwargs.setdefault("engine", "bo")
    return TuningMethodology(
        space, routines, cutoff=0.25, n_variations=6,
        random_state=seed, **kwargs,
    )


class TestMethodologyWarmStart:
    def test_seeded_records_replace_cold_evaluations(self):
        cold = methodology().run()
        warm = methodology(warm_start=True).run()

        assert warm.warm_seeded > 0
        # The BO budget counts database records, so every seeded record
        # is one fresh evaluation the warm campaign did not pay for.
        assert (
            warm.campaign.n_evaluations
            == cold.campaign.n_evaluations - warm.warm_seeded
        )
        assert warm.analysis_evaluations == cold.analysis_evaluations
        assert f"seeded {warm.warm_seeded}" in warm.summary()

    def test_warm_run_reaches_seed_best(self):
        warm = methodology(warm_start=True).run()
        for s in warm.campaign.searches:
            seeded = [
                rec for rec in s.database if rec.meta.get("warm_start")
            ]
            assert seeded, f"search {s.name} got no seed history"
            assert all(rec.cost == 0.0 for rec in seeded)
            assert s.best_objective <= min(r.objective for r in seeded)
            assert s.meta["warm_seeded"] == len(seeded)

    def test_seeding_capped_at_n_initial(self):
        warm = methodology(warm_start=True, warm_start_max=2).run()
        assert all(
            s.meta.get("warm_seeded", 0) <= 2
            for s in warm.campaign.searches
        )
        default = methodology(warm_start=True).run()
        # Default cap = the engine's n_initial (5) per search.
        assert all(
            s.meta.get("warm_seeded", 0) <= 5
            for s in default.campaign.searches
        )

    def test_disabled_is_bit_identical_to_default(self):
        off = methodology(warm_start=False).run()
        default = methodology().run()
        assert off.best_config == default.best_config
        assert off.campaign.n_evaluations == default.campaign.n_evaluations
        assert off.warm_seeded == default.warm_seeded == 0
        assert "warm-start" not in default.summary()

    def test_non_bo_engine_ignores_warm_start(self):
        res = methodology(warm_start=True, engine="random").run()
        assert res.warm_seeded == 0


class TestExecutorInjection:
    def spec(self, warm=None):
        space = SearchSpace([Real("x", 0.0, 1.0)], name="m")
        return SearchSpec(
            space=space,
            objective=_square,
            engine="bo",
            max_evaluations=6,
            engine_options={"n_initial": 2},
            warm_start=warm,
        )

    def warm_records(self):
        return [
            Evaluation(
                config={"x": 0.5}, objective=0.25, cost=0.0,
                meta={"warm_start": True},
            ),
            Evaluation(
                config={"x": 0.25}, objective=0.0625, cost=0.0,
                meta={"warm_start": True},
            ),
        ]

    def test_seeds_only_an_empty_database(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        seed = np.random.SeedSequence(0)
        first = run_search_spec(
            self.spec(self.warm_records()), seed, checkpoint=path
        )
        assert first.meta["warm_seeded"] == 2
        assert first.n_evaluations == 6 - 2  # fresh evaluations only
        assert len(first.database) == 6

        # Resume: the checkpoint already holds the seeded records, so a
        # second injection would duplicate history.
        again = run_search_spec(
            self.spec(self.warm_records()), seed, checkpoint=path
        )
        assert again.meta["warm_seeded"] == 2
        assert again.n_evaluations == 0
        assert len(again.database) == 6
        assert (
            sum(1 for r in again.database if r.meta.get("warm_start")) == 2
        )

    def test_no_warm_records_means_no_meta(self):
        res = run_search_spec(self.spec(None), np.random.SeedSequence(0))
        assert "warm_seeded" not in res.meta


class TestMemoizationGuard:
    def test_inexact_records_never_prime_the_cache(self):
        db = EvaluationDatabase()
        db.extend([
            Evaluation(
                config={"x": 0.5}, objective=0.25, cost=0.0,
                meta={"warm_start": True},
            ),
            Evaluation(
                config={"x": 0.6}, objective=0.34, cost=0.0,
                meta={"warm_start": True, "warm_inexact": True},
            ),
        ])
        calls = []

        def objective(cfg):
            calls.append(dict(cfg))
            return cfg["x"] ** 2

        memo = MemoizingObjective(objective)
        assert memo.seed_from_database(db) == 1
        value, meta = memo({"x": 0.5})
        assert value == 0.25 and meta["cache_hit"] and not calls
        # The inexact record's observation came from a *nearby* config;
        # querying its exact key must re-evaluate.
        value, _ = memo({"x": 0.6})
        assert calls == [{"x": 0.6}]
        assert value == pytest.approx(0.36)


def _square(c):
    return c["x"] ** 2
