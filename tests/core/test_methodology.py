"""Integration tests: the methodology end-to-end on the synthetic suite.

These are the paper's central structural claims: cases 1-2 yield fully
independent plans, cases 3-5 merge Group 3 with Group 4, and the analysis
cost stays at ``1 + V x 20`` application evaluations regardless of how
many routines are scored.
"""

import numpy as np
import pytest

from repro.core import TuningMethodology
from repro.synthetic import SyntheticFunction


def methodology(case, seed=0, **kwargs):
    f = SyntheticFunction(case, random_state=seed)
    defaults = dict(
        cutoff=0.25,
        n_variations=20,
        random_state=seed,
        engine_options={"n_candidates": 128},
    )
    defaults.update(kwargs)
    return f, TuningMethodology(f.search_space(), f.routines(), **defaults)


class TestPartitionRecovery:
    @pytest.mark.parametrize("case", [1, 2])
    def test_low_influence_cases_stay_independent(self, case):
        _, tm = methodology(case)
        plan = tm.analyze().plan
        assert [s.name for s in plan.searches] == [
            "Group 1", "Group 2", "Group 3", "Group 4",
        ]

    @pytest.mark.parametrize("case", [3, 4, 5])
    def test_high_influence_cases_merge_g3_g4(self, case):
        _, tm = methodology(case)
        plan = tm.analyze().plan
        assert [s.name for s in plan.searches] == [
            "Group 1", "Group 2", "Group 3+Group 4",
        ]
        merged = plan.search_for("Group 3")
        assert merged.dimension == 10  # within the cap, nothing dropped
        assert merged.dropped == {}

    def test_partition_stable_across_seeds(self):
        for seed in (1, 2, 3):
            _, tm = methodology(4, seed=seed)
            names = [s.name for s in tm.analyze().plan.searches]
            assert "Group 3+Group 4" in names


class TestObservationAccounting:
    def test_analysis_cost_formula(self):
        _, tm = methodology(3, n_variations=15)
        res = tm.analyze()
        # 1 baseline + 15 variations x 20 parameters.
        assert res.analysis_evaluations == 1 + 15 * 20

    def test_insight_samples_added(self):
        _, tm = methodology(3, n_variations=10, insight_samples=50)
        res = tm.analyze()
        assert res.analysis_evaluations == 50 + 1 + 10 * 20
        assert res.insights is not None
        assert res.insights.n_samples == 50


class TestEndToEndRun:
    def test_run_executes_planned_searches(self):
        f, tm = methodology(3)
        # Small budgets: override the engine to random search for speed.
        tm.engine = "random"
        tm.engine_options = {}
        res = tm.run()
        assert res.campaign is not None
        assert len(res.campaign.searches) == res.plan.n_searches
        best = res.best_config
        assert set(best) >= {f"x{i}" for i in range(20)}
        # The combined configuration is valid and evaluable.
        val = f(best)
        assert np.isfinite(val)

    def test_run_improves_over_random_baseline_config(self):
        f, tm = methodology(4)
        tm.engine = "random"
        tm.engine_options = {}
        res = tm.run()
        rng = np.random.default_rng(0)
        random_vals = [f(f.search_space().sample(rng)) for _ in range(20)]
        assert f(res.best_config) < np.median(random_vals)

    def test_summary_renders(self):
        _, tm = methodology(3)
        res = tm.analyze()
        text = res.summary()
        assert "cut-off: 25%" in text
        assert "Group 3+Group 4" in text

    def test_best_config_requires_run(self):
        _, tm = methodology(3, n_variations=5)
        res = tm.analyze()
        with pytest.raises(RuntimeError):
            _ = res.best_config
