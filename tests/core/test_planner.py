"""Tests for the search planner: merging, the 10-dim cap, shared-kernel
priority, and hierarchical staging."""

import pytest

from repro.core import InfluenceMatrix, Routine, RoutineSet, SearchPlanner
from repro.space import Integer, Real, SearchSpace


def build(n_groups=3, params_per_group=4):
    routines = []
    names = []
    for g in range(n_groups):
        ps = tuple(f"g{g}p{j}" for j in range(params_per_group))
        names.extend(ps)
        routines.append(Routine(f"G{g}", ps, lambda c: 1.0, weight=float(g + 1)))
    rs = RoutineSet(routines)
    sp = SearchSpace([Real(n, 0.0, 1.0) for n in names], name="plan")
    return rs, sp


def uniform_scores(rs, internal=0.9, external=0.01):
    s = {}
    for r in rs.names:
        s[r] = {p: external for p in rs.all_parameters()}
        for p in rs[r].parameters:
            s[r][p] = internal
    return s


class TestIndependentPlan:
    def test_no_interdependence_gives_one_search_per_routine(self):
        rs, sp = build()
        im = InfluenceMatrix(rs, uniform_scores(rs))
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        assert plan.n_searches == 3
        assert all(not s.is_merged for s in plan.searches)
        assert all(s.stage == 0 for s in plan.searches)

    def test_budget_is_10x_dims(self):
        rs, sp = build()
        im = InfluenceMatrix(rs, uniform_scores(rs))
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        for s in plan.searches:
            assert s.budget == 10 * s.dimension == 40


class TestMerging:
    def test_interdependence_merges(self):
        rs, sp = build()
        scores = uniform_scores(rs)
        scores["G2"]["g1p0"] = 0.5  # G1's parameter moves G2
        im = InfluenceMatrix(rs, scores)
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        merged = plan.search_for("G1")
        assert merged is plan.search_for("G2")
        assert set(merged.routines) == {"G1", "G2"}
        assert merged.dimension == 8

    def test_cutoff_controls_merge(self):
        rs, sp = build()
        scores = uniform_scores(rs)
        scores["G2"]["g1p0"] = 0.5
        im = InfluenceMatrix(rs, scores)
        high = SearchPlanner(rs, im, sp, cutoff=0.60).plan()
        assert high.n_searches == 3  # 0.5 below 0.6 -> stays separate


class TestDimensionCap:
    def test_cap_drops_least_influential(self):
        rs, sp = build(n_groups=2, params_per_group=6)
        scores = uniform_scores(rs)
        scores["G1"]["g0p0"] = 0.5  # merge G0+G1 -> 12 params
        # Make g0p5 / g1p5 the weakest within their groups.
        scores["G0"]["g0p5"] = 0.05
        scores["G1"]["g1p5"] = 0.05
        im = InfluenceMatrix(rs, scores)
        plan = SearchPlanner(rs, im, sp, cutoff=0.10, dimension_cap=10).plan()
        (merged,) = plan.searches
        assert merged.dimension == 10
        assert set(merged.dropped) == {"g0p5", "g1p5"}
        assert all(v == "dimension-cap" for v in merged.dropped.values())
        # Dropped parameters are pinned in the plan.
        assert set(plan.pinned) == {"g0p5", "g1p5"}

    def test_tuned_sorted_by_influence(self):
        rs, sp = build(n_groups=1, params_per_group=4)
        scores = uniform_scores(rs)
        scores["G0"].update({"g0p0": 0.2, "g0p1": 0.9, "g0p2": 0.5, "g0p3": 0.7})
        im = InfluenceMatrix(rs, scores)
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        assert plan.searches[0].tuned == ("g0p1", "g0p3", "g0p2", "g0p0")

    def test_cap_validation(self):
        rs, sp = build()
        im = InfluenceMatrix(rs, uniform_scores(rs))
        with pytest.raises(ValueError):
            SearchPlanner(rs, im, sp, dimension_cap=0)
        with pytest.raises(ValueError):
            SearchPlanner(rs, im, sp, cutoff=-0.1)


class TestSharedKernelRule:
    def build_shared(self, impact_on_g1=0.2, impact_on_g3=0.6):
        """u_zcopy owned by both G1 and G3 (different components)."""
        rs = RoutineSet(
            [
                Routine("G1", ("u_vec", "u_zcopy"), lambda c: 1.0, weight=1.0),
                Routine("G3", ("u_dscal", "u_zcopy"), lambda c: 1.0, weight=2.0),
            ]
        )
        sp = SearchSpace(
            [Real(n, 0.0, 1.0) for n in ("u_vec", "u_zcopy", "u_dscal")]
        )
        scores = {
            "G1": {"u_vec": 0.9, "u_zcopy": impact_on_g1, "u_dscal": 0.01},
            "G3": {"u_vec": 0.01, "u_zcopy": impact_on_g3, "u_dscal": 0.9},
        }
        return rs, sp, InfluenceMatrix(rs, scores)

    def test_highest_impact_region_wins(self):
        rs, sp, im = self.build_shared()
        plan = SearchPlanner(rs, im, sp, cutoff=0.95).plan()
        g1 = plan.search_for("G1")
        g3 = plan.search_for("G3")
        assert "u_zcopy" in g3.tuned
        assert "u_zcopy" not in g1.tuned
        assert g1.dropped["u_zcopy"] == "owned-elsewhere"

    def test_shared_parameter_is_internal_to_both_owners(self):
        """Owning a parameter in two routines is NOT interdependence —
        that's the rule-5 case, not a DAG edge."""
        rs, sp, im = self.build_shared(impact_on_g1=0.5, impact_on_g3=0.6)
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        assert plan.n_searches == 2  # no merge from the shared parameter

    def test_merged_owners_need_no_resolution(self):
        rs = RoutineSet(
            [
                Routine("G1", ("u_vec", "u_zcopy"), lambda c: 1.0, weight=1.0),
                Routine("G3", ("u_dscal", "u_zcopy"), lambda c: 1.0, weight=2.0),
            ]
        )
        sp = SearchSpace(
            [Real(n, 0.0, 1.0) for n in ("u_vec", "u_zcopy", "u_dscal")]
        )
        # u_dscal (owned by G3) moves G1 -> genuine external edge -> merge.
        scores = {
            "G1": {"u_vec": 0.9, "u_zcopy": 0.3, "u_dscal": 0.5},
            "G3": {"u_vec": 0.01, "u_zcopy": 0.6, "u_dscal": 0.9},
        }
        plan = SearchPlanner(rs, InfluenceMatrix(rs, scores), sp, cutoff=0.10).plan()
        (merged,) = plan.searches
        assert merged.is_merged
        assert "u_zcopy" in merged.tuned
        assert "owned-elsewhere" not in merged.dropped.values()


class TestHierarchy:
    def build_staged(self):
        """Outer region's parameter moves the inner groups (nbatches-like)."""
        rs = RoutineSet(
            [
                Routine("Outer", ("nbatches",), lambda c: 1.0, weight=10.0),
                Routine("G1", ("a",), lambda c: 1.0),
                Routine("G2", ("b",), lambda c: 1.0),
            ]
        )
        sp = SearchSpace([Real(n, 0.0, 1.0) for n in ("nbatches", "a", "b")])
        scores = {
            "Outer": {"nbatches": 0.9, "a": 0.01, "b": 0.01},
            "G1": {"nbatches": 0.8, "a": 0.9, "b": 0.01},
            "G2": {"nbatches": 0.8, "a": 0.01, "b": 0.9},
        }
        return rs, sp, InfluenceMatrix(rs, scores)

    def test_hierarchical_edges_stage_instead_of_merge(self):
        rs, sp, im = self.build_staged()
        plan = SearchPlanner(
            rs, im, sp, cutoff=0.10, hierarchy={"Outer": ["G1", "G2"]}
        ).plan()
        assert plan.n_searches == 3
        assert plan.n_stages == 2
        assert plan.search_for("Outer").stage == 0
        assert plan.search_for("G1").stage == 1
        assert plan.search_for("G2").stage == 1

    def test_without_hierarchy_everything_merges(self):
        rs, sp, im = self.build_staged()
        plan = SearchPlanner(rs, im, sp, cutoff=0.10).plan()
        assert plan.n_searches == 1
        assert plan.searches[0].is_merged

    def test_transitive_hierarchy(self):
        rs = RoutineSet(
            [
                Routine("App", ("m",), lambda c: 1.0),
                Routine("Region", ("n",), lambda c: 1.0),
                Routine("Kernel", ("k",), lambda c: 1.0),
            ]
        )
        sp = SearchSpace([Real(x, 0.0, 1.0) for x in ("m", "n", "k")])
        scores = {
            "App": {"m": 0.9, "n": 0.01, "k": 0.01},
            "Region": {"m": 0.8, "n": 0.9, "k": 0.01},
            "Kernel": {"m": 0.8, "n": 0.8, "k": 0.9},  # m is transitive
        }
        im = InfluenceMatrix(rs, scores)
        plan = SearchPlanner(
            rs, im, sp, cutoff=0.10,
            hierarchy={"App": ["Region"], "Region": ["Kernel"]},
        ).plan()
        assert plan.search_for("App").stage == 0
        assert plan.search_for("Region").stage == 1
        assert plan.search_for("Kernel").stage == 2

    def test_cycle_rejected(self):
        rs, sp, im = self.build_staged()
        with pytest.raises(ValueError, match="cycle"):
            SearchPlanner(
                rs, im, sp,
                hierarchy={"Outer": ["G1"], "G1": ["Outer"]},
            )

    def test_unknown_routine_rejected(self):
        rs, sp, im = self.build_staged()
        with pytest.raises(KeyError):
            SearchPlanner(rs, im, sp, hierarchy={"Nope": ["G1"]})


class TestMaterialize:
    def test_objective_sums_member_routines(self):
        rs = RoutineSet(
            [
                Routine("A", ("a",), lambda c: c["a"], weight=1.0),
                Routine("B", ("b",), lambda c: c["b"], weight=2.0),
            ]
        )
        sp = SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)])
        scores = {
            "A": {"a": 0.9, "b": 0.5},
            "B": {"a": 0.5, "b": 0.9},
        }
        planner = SearchPlanner(rs, InfluenceMatrix(rs, scores), sp, cutoff=0.10)
        plan = planner.plan()
        ((search, sub, obj),) = planner.materialize(plan)
        assert search.is_merged
        assert obj({"a": 0.5, "b": 0.25}) == pytest.approx(0.5 + 2 * 0.25)
        assert sub.dimension == 2

    def test_stage_filter(self):
        rs = RoutineSet(
            [
                Routine("Outer", ("m",), lambda c: c["m"]),
                Routine("Inner", ("k",), lambda c: c["k"]),
            ]
        )
        sp = SearchSpace([Real("m", 0.0, 1.0), Real("k", 0.0, 1.0)])
        scores = {
            "Outer": {"m": 0.9, "k": 0.01},
            "Inner": {"m": 0.8, "k": 0.9},
        }
        planner = SearchPlanner(
            rs, InfluenceMatrix(rs, scores), sp, cutoff=0.10,
            hierarchy={"Outer": ["Inner"]},
        )
        plan = planner.plan()
        stage0 = planner.materialize(plan, stage=0)
        stage1 = planner.materialize(plan, stage=1, defaults={"m": 0.123})
        assert [s.name for s, _, _ in stage0] == ["Outer"]
        ((_, sub1, _),) = stage1
        assert sub1.pinned["m"] == 0.123  # earlier stage's optimum pinned
