"""Tests for the influence matrix (phase-1 output)."""

import numpy as np
import pytest

from repro.core import InfluenceMatrix, Routine, RoutineSet
from repro.insights import SensitivityAnalysis
from repro.space import Real, SearchSpace


def routines():
    return RoutineSet(
        [
            Routine("A", ("a1", "a2"), lambda c: c["a1"] + c["a2"]),
            Routine("B", ("b1",), lambda c: c["b1"] + 0.5 * c["a1"]),
        ]
    )


def scores(a1_on_B=0.3):
    return {
        "A": {"a1": 0.9, "a2": 0.8, "b1": 0.0},
        "B": {"a1": a1_on_B, "a2": 0.01, "b1": 0.7},
    }


class TestConstruction:
    def test_basic(self):
        im = InfluenceMatrix(routines(), scores())
        assert im.score("a1", "A") == 0.9
        assert im.score("a1", "B") == 0.3
        assert im.is_internal("a1", "A")
        assert not im.is_internal("a1", "B")

    def test_missing_routine_rejected(self):
        with pytest.raises(ValueError, match="missing for routines"):
            InfluenceMatrix(routines(), {"A": scores()["A"]})

    def test_missing_parameter_rejected(self):
        s = scores()
        del s["B"]["a2"]
        with pytest.raises(ValueError, match="missing parameters"):
            InfluenceMatrix(routines(), s)

    def test_invalid_scores_rejected(self):
        s = scores()
        s["A"]["a1"] = -0.5
        with pytest.raises(ValueError):
            InfluenceMatrix(routines(), s)
        s = scores()
        s["A"]["a1"] = float("nan")
        with pytest.raises(ValueError):
            InfluenceMatrix(routines(), s)


class TestExternalInfluences:
    def test_cutoff_filters(self):
        im = InfluenceMatrix(routines(), scores(a1_on_B=0.3))
        ext = im.external_influences(cutoff=0.25)
        assert len(ext) == 1
        e = ext[0]
        assert (e.parameter, e.source, e.target, e.score) == ("a1", "A", "B", 0.3)
        assert im.external_influences(cutoff=0.5) == []

    def test_internal_never_external(self):
        im = InfluenceMatrix(routines(), scores())
        ext = im.external_influences(cutoff=0.0)
        assert all(not im.is_internal(e.parameter, e.target) for e in ext)

    def test_shared_parameter_emits_per_owner(self):
        rs = RoutineSet(
            [
                Routine("A", ("p",), lambda c: 1.0),
                Routine("B", ("p",), lambda c: 1.0),
                Routine("C", ("q",), lambda c: 1.0),
            ]
        )
        s = {
            "A": {"p": 0.5, "q": 0.0},
            "B": {"p": 0.5, "q": 0.0},
            "C": {"p": 0.4, "q": 0.6},
        }
        ext = InfluenceMatrix(rs, s).external_influences(cutoff=0.1)
        pairs = {(e.source, e.target) for e in ext}
        assert pairs == {("A", "C"), ("B", "C")}

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            InfluenceMatrix(routines(), scores()).external_influences(cutoff=-0.1)


class TestArrayAndRanking:
    def test_as_array(self):
        im = InfluenceMatrix(routines(), scores())
        M, R, P = im.as_array()
        assert M.shape == (2, 3)
        assert R == ["A", "B"] and P == ["a1", "a2", "b1"]
        assert M[0, 0] == 0.9

    def test_max_influence(self):
        im = InfluenceMatrix(routines(), scores())
        assert im.max_influence("a1") == 0.9
        assert im.max_influence("b1") == 0.7

    def test_format_table_marks_external(self):
        text = InfluenceMatrix(routines(), scores()).format_table()
        assert "external" in text


class TestFromSensitivity:
    def test_pipeline_glue(self):
        rs = routines()
        sp = SearchSpace([Real(n, 0.1, 10.0) for n in ("a1", "a2", "b1")])
        sa = SensitivityAnalysis.from_routines(sp, rs, n_variations=5, random_state=0)
        im = InfluenceMatrix.from_sensitivity(rs, sa.run())
        # b1 has zero effect on A; a1 moves B (the designed coupling).
        assert im.score("b1", "A") == 0.0
        assert im.score("a1", "B") > 0.0
