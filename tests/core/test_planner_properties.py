"""Property-based tests: planner invariants over random influence data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InfluenceMatrix, Routine, RoutineSet, SearchPlanner
from repro.space import Real, SearchSpace

N_ROUTINES = 4
PARAMS_PER = 4


def build_problem(score_matrix):
    routines = []
    names = []
    for g in range(N_ROUTINES):
        ps = tuple(f"g{g}p{j}" for j in range(PARAMS_PER))
        names.extend(ps)
        routines.append(Routine(f"G{g}", ps, lambda c: 1.0))
    rs = RoutineSet(routines)
    sp = SearchSpace([Real(n, 0.0, 1.0) for n in names])
    scores = {
        r: {p: float(score_matrix[i][j]) for j, p in enumerate(names)}
        for i, r in enumerate(rs.names)
    }
    return rs, sp, InfluenceMatrix(rs, scores)


score_matrices = st.lists(
    st.lists(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        min_size=N_ROUTINES * PARAMS_PER,
        max_size=N_ROUTINES * PARAMS_PER,
    ),
    min_size=N_ROUTINES,
    max_size=N_ROUTINES,
)


@given(score_matrices, st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=60, deadline=None)
def test_plan_invariants(matrix, cutoff):
    rs, sp, im = build_problem(matrix)
    plan = SearchPlanner(rs, im, sp, cutoff=cutoff, dimension_cap=10).plan()

    # 1. The searches partition the routines: disjoint and complete.
    covered = [r for s in plan.searches for r in s.routines]
    assert sorted(covered) == sorted(rs.names)
    assert len(set(covered)) == len(covered)

    # 2. No search exceeds the dimension cap.
    assert all(s.dimension <= 10 for s in plan.searches)

    # 3. Tuned and dropped sets are disjoint and cover the component's
    #    owned parameters.
    for s in plan.searches:
        owned = {p for r in s.routines for p in rs[r].parameters}
        assert set(s.tuned).isdisjoint(s.dropped)
        assert set(s.tuned) | set(s.dropped) == owned

    # 4. Every parameter is tuned by at most one search.
    tuned = plan.all_tuned()
    assert len(tuned) == len(set(tuned))

    # 5. Budgets follow the 10x rule.
    assert all(s.budget == 10 * s.dimension for s in plan.searches)


@given(score_matrices)
@settings(max_examples=30, deadline=None)
def test_cutoff_monotonicity(matrix):
    """Raising the cut-off never merges more."""
    rs, sp, im = build_problem(matrix)
    sizes = []
    for cutoff in (0.1, 0.5, 1.0, 2.0):
        plan = SearchPlanner(rs, im, sp, cutoff=cutoff).plan()
        sizes.append(max(len(s.routines) for s in plan.searches))
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
