"""Tests for the interdependence DAG and its partition."""

import pytest

from repro.core import InfluenceMatrix, InterdependenceDAG, Routine, RoutineSet


def four_groups():
    return RoutineSet(
        [Routine(f"G{i}", (f"p{i}a", f"p{i}b"), lambda c: 1.0) for i in range(1, 5)]
    )


def influence(g4_on_g3=0.5, cutoff_noise=0.01):
    """G3 is influenced by G4's parameters (the synthetic-suite design)."""
    rs = four_groups()
    s = {}
    for r in rs.names:
        s[r] = {p: cutoff_noise for p in rs.all_parameters()}
        for p in rs[r].parameters:
            s[r][p] = 0.9
    s["G3"]["p4a"] = g4_on_g3
    s["G3"]["p4b"] = g4_on_g3
    return InfluenceMatrix(rs, s)


class TestConstruction:
    def test_from_influence_prunes(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        assert dag.dependent_pairs() == {frozenset({"G4", "G3"})}

    def test_below_cutoff_empty(self):
        dag = InterdependenceDAG.from_influence(influence(0.2), cutoff=0.25)
        assert dag.dependent_pairs() == set()
        assert all(dag.is_independent(g) for g in ("G1", "G2", "G3", "G4"))

    def test_add_dependence_validation(self):
        dag = InterdependenceDAG(four_groups())
        with pytest.raises(KeyError):
            dag.add_dependence("nope", "G1", "p", 0.5)
        with pytest.raises(ValueError):
            dag.add_dependence("G1", "G1", "p", 0.5)
        with pytest.raises(ValueError):
            dag.add_dependence("G1", "G2", "p", -0.5)

    def test_edge_accumulates_parameters(self):
        dag = InterdependenceDAG(four_groups())
        dag.add_dependence("G1", "G2", "p1a", 0.3)
        dag.add_dependence("G1", "G2", "p1b", 0.6)
        dag.add_dependence("G1", "G2", "p1a", 0.4)  # max wins
        ((src, dst, params),) = dag.edges()
        assert (src, dst) == ("G1", "G2")
        assert params == {"p1a": 0.4, "p1b": 0.6}


class TestPartition:
    def test_partition_is_a_partition(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        parts = dag.partition()
        flat = [r for comp in parts for r in comp]
        assert sorted(flat) == ["G1", "G2", "G3", "G4"]
        assert len(set(flat)) == len(flat)

    def test_merged_component(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        parts = dag.partition()
        assert ["G3", "G4"] in parts
        assert ["G1"] in parts and ["G2"] in parts

    def test_partition_order_deterministic(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        assert dag.partition() == [["G1"], ["G2"], ["G3", "G4"]]

    def test_transitive_merging(self):
        dag = InterdependenceDAG(four_groups())
        dag.add_dependence("G1", "G2", "p1a", 0.9)
        dag.add_dependence("G2", "G3", "p2a", 0.9)
        parts = dag.partition()
        assert ["G1", "G2", "G3"] in parts

    def test_direction_irrelevant_for_partition(self):
        a = InterdependenceDAG(four_groups())
        a.add_dependence("G1", "G2", "p1a", 0.9)
        b = InterdependenceDAG(four_groups())
        b.add_dependence("G2", "G1", "p2a", 0.9)
        assert a.partition() == b.partition()


class TestPrune:
    def test_prune_tightens(self):
        dag = InterdependenceDAG(four_groups())
        dag.add_dependence("G1", "G2", "p1a", 0.3)
        dag.add_dependence("G3", "G4", "p3a", 0.8)
        pruned = dag.prune(0.5)
        assert pruned.dependent_pairs() == {frozenset({"G3", "G4"})}
        # Original untouched.
        assert len(dag.dependent_pairs()) == 2

    def test_prune_drops_weak_parameters_from_edge(self):
        dag = InterdependenceDAG(four_groups())
        dag.add_dependence("G1", "G2", "weak", 0.3)
        dag.add_dependence("G1", "G2", "strong", 0.9)
        ((_, _, params),) = dag.prune(0.5).edges()
        assert params == {"strong": 0.9}


class TestExport:
    def test_to_networkx_is_copy(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        g = dag.to_networkx()
        g.remove_node("G1")
        assert "G1" in dag.graph

    def test_diagram_renders(self):
        dag = InterdependenceDAG.from_influence(influence(0.5), cutoff=0.25)
        text = dag.format_diagram()
        assert "(independent)" in text
        assert "(merged)" in text
        assert "G4" in text
