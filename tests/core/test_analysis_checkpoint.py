"""Tests for phase-1 analysis checkpointing."""

import json

import pytest

from repro.core import TuningMethodology
from repro.insights import SensitivityResult
from repro.synthetic import SyntheticFunction


def methodology(seed=0, **kwargs):
    f = SyntheticFunction(3, random_state=seed)
    return TuningMethodology(
        f.search_space(), f.routines(), cutoff=0.25, n_variations=20,
        random_state=seed, **kwargs,
    )


class TestSensitivityRoundTrip:
    def test_to_from_dict(self):
        tm = methodology()
        sens = tm.run_sensitivity()
        again = SensitivityResult.from_dict(sens.to_dict())
        assert again.scores == sens.scores
        assert again.n_evaluations == sens.n_evaluations
        assert again.baseline == sens.baseline

    def test_json_compatible(self):
        json.dumps(methodology().run_sensitivity().to_dict())


class TestCheckpointedAnalyze:
    def test_checkpoint_written_and_reused(self, tmp_path):
        path = str(tmp_path / "phase1.json")

        tm = methodology()
        first = tm.analyze(checkpoint=path)
        assert first.analysis_evaluations == 1 + 20 * 20

        # Second run (fresh methodology object) replays from the file:
        # zero new observations.
        tm2 = methodology(seed=1)
        second = tm2.analyze(checkpoint=path)
        assert second.analysis_evaluations == 0
        assert second.sensitivity.scores == first.sensitivity.scores
        assert [s.name for s in second.plan.searches] == [
            s.name for s in first.plan.searches
        ]

    def test_replan_with_new_cutoff_is_free(self, tmp_path):
        """Cached observations + a different cut-off: phase 2 re-runs
        without a single application evaluation."""
        path = str(tmp_path / "phase1.json")
        methodology().analyze(checkpoint=path)

        strict = methodology(seed=2)
        strict.cutoff = 5.0  # absurdly high: everything independent
        res = strict.analyze(checkpoint=path)
        assert res.analysis_evaluations == 0
        assert all(not s.is_merged for s in res.plan.searches)

    def test_corrupt_checkpoint_falls_back_to_fresh_analysis(self, tmp_path):
        path = str(tmp_path / "phase1.json")
        with open(path, "w") as f:
            f.write('{"baseline": {"x0"')  # torn mid-write

        res = methodology().analyze(checkpoint=path)
        assert res.analysis_evaluations == 1 + 20 * 20  # fresh, not poisoned
        # The fresh result replaced the corrupt file...
        with open(path) as f:
            SensitivityResult.from_dict(json.load(f))
        # ...and a third run replays it.
        assert methodology(seed=9).analyze(
            checkpoint=path
        ).analysis_evaluations == 0

    def test_wrong_schema_checkpoint_falls_back(self, tmp_path):
        path = str(tmp_path / "phase1.json")
        with open(path, "w") as f:
            json.dump({"unrelated": True}, f)  # valid JSON, wrong shape
        res = methodology().analyze(checkpoint=path)
        assert res.analysis_evaluations == 1 + 20 * 20

    def test_checkpoint_written_atomically(self, tmp_path):
        path = str(tmp_path / "phase1.json")
        methodology().analyze(checkpoint=path)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []  # temp file was renamed, not abandoned

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "phase1.json")

        def boom(src, dst):
            raise OSError("disk full")

        import os as _os
        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(OSError):
            methodology().analyze(checkpoint=path)
        assert list(tmp_path.iterdir()) == []  # tmp unlinked on failure
