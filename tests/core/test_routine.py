"""Tests for the Routine / RoutineSet abstractions."""

import pytest

from repro.core import Routine, RoutineSet


def r(name, params, weight=1.0):
    return Routine(name, tuple(params), lambda c: 1.0, weight=weight)


class TestRoutine:
    def test_evaluate(self):
        rt = Routine("A", ("p",), lambda c: 2.0 * c["p"])
        assert rt.evaluate({"p": 3.0}) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Routine("", ("p",), lambda c: 1.0)
        with pytest.raises(ValueError):
            Routine("A", (), lambda c: 1.0)
        with pytest.raises(ValueError):
            Routine("A", ("p", "p"), lambda c: 1.0)
        with pytest.raises(ValueError):
            Routine("A", ("p",), lambda c: 1.0, weight=-1.0)


class TestRoutineSet:
    def test_lookup(self):
        rs = RoutineSet([r("A", ["a1", "a2"]), r("B", ["b1"])])
        assert rs.names == ["A", "B"]
        assert "A" in rs and "C" not in rs
        assert rs["B"].parameters == ("b1",)
        assert len(rs) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RoutineSet([r("A", ["a"]), r("A", ["b"])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RoutineSet([])

    def test_all_parameters_order_and_dedup(self):
        rs = RoutineSet([r("A", ["p", "q"]), r("B", ["q", "z"])])
        assert rs.all_parameters() == ["p", "q", "z"]

    def test_owners_and_shared(self):
        rs = RoutineSet(
            [r("G1", ["u_zcopy", "u_vec"]), r("G3", ["u_zcopy", "u_dscal"])]
        )
        assert [o.name for o in rs.owners("u_zcopy")] == ["G1", "G3"]
        assert rs.shared_parameters() == {"u_zcopy": ["G1", "G3"]}
        assert rs.owners("nothing") == []


class TestProfiledRoutineSet:
    def routines(self):
        return [
            Routine("A", ("p",), lambda c: 2.0 * c["p"], weight=2.0),
            Routine("B", ("q",), lambda c: c["q"] + 1.0),
        ]

    def test_profiler_used_once_per_call(self):
        calls = []

        def profiler(cfg):
            calls.append(dict(cfg))
            return {"A": 10.0, "B": 20.0, "extra": 99.0}

        rs = RoutineSet(self.routines(), profiler=profiler)
        assert rs.has_profiler
        out = rs.profile({"p": 1.0, "q": 2.0})
        assert out == {"A": 10.0, "B": 20.0}  # extra keys ignored
        assert len(calls) == 1

    def test_missing_routine_raises(self):
        rs = RoutineSet(
            self.routines(), profiler=lambda cfg: {"A": 10.0}
        )
        with pytest.raises(KeyError, match="B"):
            rs.profile({"p": 1.0, "q": 2.0})

    def test_fallback_without_profiler(self):
        rs = RoutineSet(self.routines())
        assert not rs.has_profiler
        assert rs.profile({"p": 3.0, "q": 4.0}) == {"A": 6.0, "B": 5.0}

    def test_values_coerced_to_float(self):
        rs = RoutineSet(
            self.routines(), profiler=lambda cfg: {"A": 1, "B": "2.5"}
        )
        out = rs.profile({"p": 0.0, "q": 0.0})
        assert out == {"A": 1.0, "B": 2.5}
        assert all(isinstance(v, float) for v in out.values())
