"""Tests for the sensitivity analysis (methodology phase 1)."""

import numpy as np
import pytest

from repro.insights import SensitivityAnalysis
from repro.space import ExpressionConstraint, Integer, Ordinal, Real, SearchSpace


def space2d():
    return SearchSpace([Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)], name="s")


class TestScores:
    def test_detects_dominant_parameter(self):
        sp = space2d()
        # 'x' drives the output 100x harder than 'y'.
        targets = {"f": lambda c: 100.0 * c["x"] + 1.0 * c["y"] + 50.0}
        sa = SensitivityAnalysis(sp, targets, n_variations=10, random_state=0)
        res = sa.run()
        assert res.scores["f"]["x"] > 5 * res.scores["f"]["y"]
        assert res.top("f", 1)[0][0] == "x"

    def test_insensitive_parameter_scores_zero(self):
        sp = space2d()
        targets = {"f": lambda c: 3.0 * c["x"]}
        res = SensitivityAnalysis(sp, targets, n_variations=5, random_state=0).run()
        assert res.scores["f"]["y"] == 0.0

    def test_multiple_targets_one_pass(self):
        sp = space2d()
        targets = {
            "fx": lambda c: c["x"] * 10.0,
            "fy": lambda c: c["y"] * 10.0,
        }
        res = SensitivityAnalysis(sp, targets, n_variations=5, random_state=1).run()
        assert res.scores["fx"]["x"] > res.scores["fx"]["y"]
        assert res.scores["fy"]["y"] > res.scores["fy"]["x"]

    def test_scores_cover_all_parameters(self):
        sp = space2d()
        res = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=3, random_state=0
        ).run()
        assert set(res.scores["f"]) == {"x", "y"}
        assert res.parameters == ["x", "y"]
        assert res.targets == ["f"]


class TestObservationAccounting:
    def test_evaluation_count_is_one_plus_v_times_d(self):
        sp = space2d()
        res = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"] + c["y"]}, n_variations=7, random_state=0
        ).run()
        # 1 baseline + 7 variations x 2 parameters (none rejected here).
        assert res.n_evaluations == 1 + 7 * 2

    def test_cost_independent_of_target_count(self):
        """The whole point of the paper's design: adding routines costs no
        extra application runs."""
        sp = space2d()
        one = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=5, random_state=0
        ).run()
        many = SensitivityAnalysis(
            sp,
            {f"f{i}": (lambda c, i=i: c["x"] * i) for i in range(1, 6)},
            n_variations=5,
            random_state=0,
        ).run()
        assert one.n_evaluations == many.n_evaluations


class TestBaseline:
    def test_explicit_baseline_used(self):
        sp = space2d()
        base = {"x": 5.0, "y": 5.0}
        res = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=3, random_state=0
        ).run(baseline=base)
        assert res.baseline == base
        assert res.baseline_values["f"] == pytest.approx(5.0)

    def test_invalid_baseline_rejected(self):
        sp = SearchSpace(
            [Real("x", 0.0, 1.0), Real("y", 0.0, 1.0)],
            [ExpressionConstraint("x + y <= 1")],
        )
        sa = SensitivityAnalysis(sp, {"f": lambda c: c["x"]}, random_state=0)
        with pytest.raises(Exception):
            sa.run(baseline={"x": 0.9, "y": 0.9})


class TestVariationModes:
    def test_relative_mode_compounds(self):
        sp = SearchSpace([Real("x", 0.0, 1000.0)])
        sa = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=3, variation=0.10,
            mode="relative", random_state=0,
        )
        vals = sa._variation_values(sp["x"], 100.0)
        assert vals == pytest.approx([110.0, 121.0, 133.1])

    def test_relative_mode_clips_to_domain(self):
        sp = SearchSpace([Real("x", 0.0, 120.0)])
        sa = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=5, mode="relative",
            random_state=0,
        )
        vals = sa._variation_values(sp["x"], 100.0)
        assert max(vals) == 120.0

    def test_random_mode_values_in_domain(self):
        sp = SearchSpace([Integer("n", 1, 32)])
        sa = SensitivityAnalysis(
            sp, {"f": lambda c: c["n"]}, n_variations=10, mode="random",
            random_state=0,
        )
        vals = sa._variation_values(sp["n"], 4)
        assert all(1 <= v <= 32 for v in vals)

    def test_ordinal_walks_grid(self):
        sp = SearchSpace([Ordinal("u", [1, 2, 4, 8])])
        sa = SensitivityAnalysis(
            sp, {"f": lambda c: c["u"]}, n_variations=3, mode="relative",
            random_state=0,
        )
        vals = sa._variation_values(sp["u"], 2)
        assert vals == [4, 8, 1]  # wraps at the top

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SensitivityAnalysis(space2d(), {"f": lambda c: 1.0}, mode="nope")


class TestConstraints:
    def test_random_mode_retries_invalid_variations(self):
        sp = SearchSpace(
            [Integer("tb", 32, 1024, default=64), Integer("tb_sm", 1, 32, default=32)],
            [ExpressionConstraint("tb * tb_sm <= 2048")],
        )
        # Baseline at the constraint edge: most random tb draws are invalid
        # given tb_sm=32, but retries should still find valid ones.
        base = {"tb": 64, "tb_sm": 32}
        res = SensitivityAnalysis(
            sp, {"f": lambda c: float(c["tb"])}, n_variations=5, mode="random",
            random_state=0,
        ).run(baseline=base)
        assert res.scores["f"]["tb"] > 0.0


class TestResultFormatting:
    def test_format_table_and_matrix(self):
        sp = space2d()
        res = SensitivityAnalysis(
            sp, {"f": lambda c: c["x"]}, n_variations=3, random_state=0
        ).run()
        text = res.format_table()
        assert "== f ==" in text and "x" in text
        M, targets, params = res.as_matrix()
        assert M.shape == (1, 2)
        assert targets == ["f"] and params == ["x", "y"]


class TestValidation:
    def test_requires_targets(self):
        with pytest.raises(ValueError):
            SensitivityAnalysis(space2d(), {})

    def test_requires_positive_variations(self):
        with pytest.raises(ValueError):
            SensitivityAnalysis(space2d(), {"f": lambda c: 1.0}, n_variations=0)
        with pytest.raises(ValueError):
            SensitivityAnalysis(space2d(), {"f": lambda c: 1.0}, variation=0.0)
