"""Tests for the from-scratch decision tree and random forest."""

import numpy as np
import pytest

from repro.insights import DecisionTreeRegressor, RandomForestRegressor


def friedman_like(n=300, seed=0):
    """y depends strongly on x0, x1; x2, x3 are noise features."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 4))
    y = 10.0 * np.sin(np.pi * X[:, 0]) + 5.0 * X[:, 1] ** 2
    y = y + 0.1 * rng.normal(size=n)
    return X, y


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).random((20, 3))
        tree = DecisionTreeRegressor(random_state=0).fit(X, np.full(20, 7.0))
        assert tree.depth() == 0
        assert np.allclose(tree.predict(X), 7.0)

    def test_max_depth_respected(self):
        X, y = friedman_like()
        tree = DecisionTreeRegressor(max_depth=3, random_state=0).fit(X, y)
        assert tree.depth() <= 3

    def test_min_samples_leaf(self):
        X, y = friedman_like(50)
        # With a huge min leaf, the tree cannot split at all.
        tree = DecisionTreeRegressor(min_samples_leaf=30, random_state=0).fit(X, y)
        assert tree.depth() == 0

    def test_importances_normalized_and_informative(self):
        X, y = friedman_like()
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        imp = tree.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert imp[0] > imp[2] and imp[0] > imp[3]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.empty((0, 2)), np.empty(0))

    def test_reduces_training_error_vs_mean(self):
        X, y = friedman_like()
        tree = DecisionTreeRegressor(max_depth=6, random_state=0).fit(X, y)
        mse_tree = np.mean((tree.predict(X) - y) ** 2)
        mse_mean = np.mean((y.mean() - y) ** 2)
        assert mse_tree < 0.2 * mse_mean


class TestRandomForest:
    def test_importances_identify_drivers(self):
        X, y = friedman_like()
        rf = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
        imp = rf.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        # Real features dominate (max_features='third' forces occasional
        # noise-feature splits, so the split is not 100/0).
        assert imp[0] + imp[1] > 0.7
        assert imp[0] > imp[2] and imp[1] > imp[3]

    def test_oob_score_reasonable(self):
        X, y = friedman_like()
        rf = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
        assert rf.oob_score_ is not None
        assert rf.oob_score_ > 0.6

    def test_generalizes(self):
        X, y = friedman_like(seed=0)
        Xt, yt = friedman_like(seed=1)
        rf = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
        mse = np.mean((rf.predict(Xt) - yt) ** 2)
        mse_mean = np.mean((y.mean() - yt) ** 2)
        assert mse < 0.3 * mse_mean

    def test_no_bootstrap_mode(self):
        X, y = friedman_like(100)
        rf = RandomForestRegressor(
            n_estimators=5, bootstrap=False, random_state=0
        ).fit(X, y)
        assert rf.oob_score_ is None
        assert rf.predict(X).shape == (100,)

    def test_deterministic_given_seed(self):
        X, y = friedman_like(100)
        a = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
        assert np.allclose(a.feature_importances_, b.feature_importances_)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_max_features_modes(self):
        X, y = friedman_like(80)
        for mf in (None, "sqrt", "third", 2):
            rf = RandomForestRegressor(n_estimators=5, max_features=mf, random_state=0)
            rf.fit(X, y)
            assert rf.predict(X).shape == (80,)
