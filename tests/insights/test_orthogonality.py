"""Tests for the pairwise orthogonality baseline and its cost accounting."""

import math

import pytest

from repro.core import Routine, RoutineSet
from repro.insights import (
    PairwiseOrthogonalityAnalysis,
    observation_cost,
    sensitivity_observation_cost,
)
from repro.space import Real, SearchSpace


def space(n=4):
    return SearchSpace([Real(f"p{i}", 0.5, 5.0) for i in range(n)])


class TestCostFormulas:
    def test_paper_scale_gap(self):
        """d = 20, V = 5: the pairwise baseline needs ~48x the
        observations the sensitivity analysis needs."""
        pairwise = observation_cost(20, 5)
        sens = sensitivity_observation_cost(20, 5)
        assert pairwise == 1 + 100 + math.comb(20, 2) * 25  # 4851
        assert sens == 101
        assert pairwise / sens > 40

    def test_quadratic_growth(self):
        assert observation_cost(40, 5) / observation_cost(20, 5) > 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            observation_cost(0, 5)
        with pytest.raises(ValueError):
            sensitivity_observation_cost(5, 0)


class TestAnalysis:
    def test_detects_multiplicative_interaction(self):
        sp = space(3)
        # p0 * p1 interact; p2 is additive.
        f = lambda c: c["p0"] * c["p1"] + 3.0 * c["p2"] + 10.0  # noqa: E731
        res = PairwiseOrthogonalityAnalysis(
            sp, f, n_variations=3, random_state=0
        ).run()
        top_pair, top_score = res.top(1)[0]
        assert set(top_pair) == {"p0", "p1"}
        assert top_score > 10 * res.interaction("p0", "p2")
        assert res.interaction("p1", "p2") < 0.05

    def test_additive_function_has_zero_interactions(self):
        sp = space(3)
        f = lambda c: c["p0"] + 2 * c["p1"] + 3 * c["p2"]  # noqa: E731
        res = PairwiseOrthogonalityAnalysis(
            sp, f, n_variations=3, random_state=0
        ).run()
        assert all(v < 1e-9 for v in res.interactions.values())

    def test_observation_count_matches_formula(self):
        sp = space(4)
        f = lambda c: sum(c.values())  # noqa: E731
        res = PairwiseOrthogonalityAnalysis(
            sp, f, n_variations=3, random_state=0
        ).run()
        assert res.n_evaluations == observation_cost(4, 3)

    def test_routine_interdependence_rollup(self):
        sp = space(4)
        f = lambda c: c["p0"] * c["p2"] + c["p1"] + c["p3"]  # noqa: E731
        res = PairwiseOrthogonalityAnalysis(
            sp, f, n_variations=3, random_state=0
        ).run()
        routines = RoutineSet(
            [
                Routine("A", ("p0", "p1"), lambda c: 1.0),
                Routine("B", ("p2", "p3"), lambda c: 1.0),
            ]
        )
        inter = res.routine_interdependence(routines)
        assert inter[frozenset(("A", "B"))] > 0.01

    def test_explicit_baseline(self):
        sp = space(2)
        base = {"p0": 1.0, "p1": 1.0}
        res = PairwiseOrthogonalityAnalysis(
            sp, lambda c: c["p0"] * c["p1"], n_variations=2, random_state=0
        ).run(baseline=base)
        assert res.baseline == base

    def test_validation(self):
        with pytest.raises(ValueError):
            PairwiseOrthogonalityAnalysis(space(2), lambda c: 1.0, n_variations=0)
