"""Phase-1 evaluation engine: profiled cross-target measurement,
parallel fan-out, mid-run resume from the observation log, staleness
detection, and warm-start projection (issue tentpole)."""

import json

import numpy as np
import pytest

from repro.core import Routine, RoutineSet
from repro.insights import (
    MeasureTask,
    Phase1Evaluator,
    Phase1Observation,
    ProfiledMeasurer,
    SensitivityAnalysis,
    TargetMeasurer,
    project_observations,
)
from repro.space import Real, SearchSpace
from repro.synthetic import SyntheticFunction


def space2d():
    return SearchSpace([Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)], name="s")


def _fa(c):
    return 2.0 * c["x"] + c["y"]


def _fb(c):
    return c["y"] ** 2 + 0.5 * c["x"]


class CountingCalls:
    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        return self.fn(cfg)


def routines(fa=_fa, fb=_fb, profiler=None):
    return RoutineSet(
        [Routine("A", ("x",), fa), Routine("B", ("y",), fb)],
        profiler=profiler,
    )


class TestProfiledMeasurement:
    def test_one_run_per_configuration_bit_identical_scores(self):
        """Profiled phase 1 spends exactly ``1 + V x d`` application runs
        where the unprofiled path spends ``t x`` that — with identical
        scores."""
        V = 6
        prof = CountingCalls(lambda c: {"A": _fa(c), "B": _fb(c)})
        profiled = SensitivityAnalysis.from_routines(
            space2d(), routines(profiler=prof),
            n_variations=V, random_state=7,
        )
        res_p = profiled.run()

        fa, fb = CountingCalls(_fa), CountingCalls(_fb)
        unprofiled = SensitivityAnalysis.from_routines(
            space2d(), routines(fa, fb), n_variations=V, random_state=7
        )
        res_u = unprofiled.run()

        assert prof.calls == 1 + V * 2
        assert fa.calls == fb.calls == 1 + V * 2  # t x as many total calls
        assert res_p.scores == res_u.scores
        assert res_p.baseline_values == res_u.baseline_values
        assert res_p.n_evaluations == res_u.n_evaluations == 1 + V * 2

    def test_profiled_opt_out(self):
        prof = CountingCalls(lambda c: {"A": _fa(c), "B": _fb(c)})
        sa = SensitivityAnalysis.from_routines(
            space2d(), routines(profiler=prof),
            profiled=False, n_variations=3, random_state=0,
        )
        sa.run()
        assert prof.calls == 0  # legacy per-target path

    def test_retries_paid_per_run_not_per_target(self):
        """A flaky node costs one re-profile for *all* targets, vs one
        re-measure per target on the unprofiled path."""
        V = 4

        class FlakyProfiler:
            def __init__(self):
                self.seen = set()

            def __call__(self, c):
                key = (round(c["x"], 12), round(c["y"], 12))
                if key not in self.seen:
                    self.seen.add(key)
                    raise OSError("simulated node flake")
                return {"A": _fa(c), "B": _fb(c)}

        base = {"x": 1.0, "y": 1.0}  # away from bounds: no clipped dupes
        sa = SensitivityAnalysis.from_routines(
            space2d(), routines(profiler=FlakyProfiler()),
            n_variations=V, random_state=1,
        )
        res = sa.run(base)
        clean = SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=V, random_state=1
        ).run(base)
        assert res.scores == clean.scores
        assert res.n_evaluations == 2 * (1 + V * 2)  # +1 run per config

        class FlakyTarget(CountingCalls):
            def __init__(self, fn):
                super().__init__(fn)
                self.seen = set()

            def __call__(self, cfg):
                key = (round(cfg["x"], 12), round(cfg["y"], 12))
                if key not in self.seen:
                    self.seen.add(key)
                    raise OSError("simulated node flake")
                return super().__call__(cfg)

        unprof = SensitivityAnalysis.from_routines(
            space2d(), routines(FlakyTarget(_fa), FlakyTarget(_fb)),
            n_variations=V, random_state=1,
        ).run(base)
        assert unprof.n_evaluations == 3 * (1 + V * 2)  # +1 run per target

    def test_partial_profile_failure_keeps_per_target_semantics(self):
        """A profile whose one target goes non-finite twice leaves only
        that target imputed; the finite target is unaffected."""
        def bad_profiler(c):
            return {
                "A": _fa(c),
                "B": float("nan") if c["x"] > 5.0 else _fb(c),
            }

        sa = SensitivityAnalysis.from_routines(
            space2d(), routines(profiler=bad_profiler),
            n_variations=5, random_state=0,
        )
        base = {"x": 1.0, "y": 1.0}
        res = sa.run(base)
        assert all("B/" in w or "B]" in w for w in res.warnings)
        assert res.scores["A"]["x"] > 0.0  # A never degraded


class TestParallelAnalysis:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_identical_to_sequential(self, seed):
        f = SyntheticFunction(3, noise_scale=0.0, random_state=seed)
        seq = SensitivityAnalysis.from_routines(
            f.search_space(), f.routines(), n_variations=4, random_state=seed
        ).run()
        f2 = SyntheticFunction(3, noise_scale=0.0, random_state=seed)
        par = SensitivityAnalysis.from_routines(
            f2.search_space(), f2.routines(), n_variations=4, random_state=seed
        ).run(evaluator=Phase1Evaluator(parallel=True, n_workers=2))
        assert par.scores == seq.scores
        assert par.warnings == seq.warnings
        assert par.n_evaluations == seq.n_evaluations
        assert par.baseline == seq.baseline
        assert par.baseline_values == seq.baseline_values

    def test_unpicklable_measurer_falls_back_in_process(self):
        calls = CountingCalls(_fa)  # closure-free but local lambdas below
        sa = SensitivityAnalysis(
            space2d(),
            {"f": lambda c: calls(c)},  # lambda: cannot cross processes
            n_variations=3,
            random_state=2,
        )
        res = sa.run(evaluator=Phase1Evaluator(parallel=True, n_workers=2))
        ref = SensitivityAnalysis(
            space2d(), {"f": _fa}, n_variations=3, random_state=2
        ).run()
        assert res.scores == ref.scores


class TestResume:
    def test_kill_and_resume_measures_only_remaining(self, tmp_path):
        V = 5
        n_tasks = 1 + 2 * V
        fa, fb = CountingCalls(_fa), CountingCalls(_fb)
        full = SensitivityAnalysis.from_routines(
            space2d(), routines(fa, fb), n_variations=V, random_state=3
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        assert fa.calls == n_tasks

        # Simulate a crash after 4 observations: truncate the log to the
        # header + 4 records + one torn line.
        log = tmp_path / "sens.jsonl"
        lines = log.read_text().splitlines(True)
        log.write_text("".join(lines[:5]) + '{"index": 5, "ki')

        fa2, fb2 = CountingCalls(_fa), CountingCalls(_fb)
        resumed = SensitivityAnalysis.from_routines(
            space2d(), routines(fa2, fb2), n_variations=V, random_state=3
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        assert fa2.calls == n_tasks - 4  # only the unlogged tasks re-ran
        assert resumed.scores == full.scores
        assert resumed.n_evaluations == full.n_evaluations
        assert resumed.warnings == full.warnings

    def test_second_resume_after_torn_line_replays_everything(self, tmp_path):
        """Appending after a torn tail must not bury the fragment inside
        the file: the resumed run truncates it before appending, so a
        later run still sees a valid, complete log and replays it all."""
        V = 5
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=V, random_state=3
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        log = tmp_path / "sens.jsonl"
        lines = log.read_text().splitlines(True)
        log.write_text("".join(lines[:5]) + '{"index": 5, "ki')

        # First resume appends the re-measured tail after the torn line.
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=V, random_state=3
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        for line in log.read_text().splitlines():
            json.loads(line)  # the fragment was truncated, not buried

        # Second resume: the log is complete and valid -> full replay.
        fa = CountingCalls(_fa)
        SensitivityAnalysis.from_routines(
            space2d(), routines(fa), n_variations=V, random_state=3
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        assert fa.calls == 0

    def test_torn_header_line_removes_file_and_restarts(self, tmp_path):
        """A crash during the very first append leaves only a header
        fragment; the log is dropped and rebuilt with a fresh header."""
        log = tmp_path / "sens.jsonl"
        log.write_text('{"format": "repro-phase1-log", "lab')
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=3, random_state=0
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)),
              label="sens")
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert lines[0]["format"] == "repro-phase1-log"
        assert len(lines) == 1 + (1 + 2 * 3)

    def test_completed_log_replays_everything(self, tmp_path):
        ev = Phase1Evaluator(checkpoint_dir=str(tmp_path))
        first = SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=4, random_state=0
        ).run(evaluator=ev)
        fa = CountingCalls(_fa)
        again = SensitivityAnalysis.from_routines(
            space2d(), routines(fa), n_variations=4, random_state=0
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))
        assert fa.calls == 0
        assert again.scores == first.scores

    def test_stale_log_discarded_and_remeasured(self, tmp_path):
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=5, random_state=0
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))

        # Different plan (V changed): the log header no longer matches.
        fa = CountingCalls(_fa)
        SensitivityAnalysis.from_routines(
            space2d(), routines(fa), n_variations=4, random_state=0
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))
        assert fa.calls == 1 + 2 * 4  # full fresh measurement

    def test_diverging_record_discards_log(self, tmp_path):
        ev = Phase1Evaluator(checkpoint_dir=str(tmp_path))
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=4, random_state=0
        ).run(evaluator=ev)
        # Same plan shape, different baseline -> same header, diverging
        # configuration fingerprints.
        fa = CountingCalls(_fa)
        SensitivityAnalysis.from_routines(
            space2d(), routines(fa), n_variations=4, random_state=1
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))
        assert fa.calls == 1 + 2 * 4


class TestBaselineFailure:
    def test_aborts_before_fanout(self):
        calls = CountingCalls(lambda c: float("nan"))
        sa = SensitivityAnalysis(
            space2d(), {"f": calls}, n_variations=5, random_state=0
        )
        with pytest.raises(RuntimeError, match="baseline"):
            sa.run()
        assert calls.calls == 2  # two baseline attempts, zero variations

    def test_failed_baseline_not_persisted(self, tmp_path):
        sa = SensitivityAnalysis(
            space2d(), {"f": lambda c: float("nan")},
            n_variations=3, random_state=0,
        )
        with pytest.raises(RuntimeError):
            sa.run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))
        # The outage was transient: a re-run re-measures the baseline
        # instead of replaying the dead one from the log.
        res = SensitivityAnalysis(
            space2d(), {"f": _fa}, n_variations=3, random_state=0
        ).run(evaluator=Phase1Evaluator(checkpoint_dir=str(tmp_path)))
        assert res.warnings == []
        assert res.n_evaluations == 1 + 3 * 2


class TestObservationAccumulation:
    def test_evaluator_accumulates_in_plan_order(self):
        ev = Phase1Evaluator()
        SensitivityAnalysis.from_routines(
            space2d(), routines(), n_variations=3, random_state=0
        ).run(evaluator=ev)
        assert len(ev.observations) == 1 + 3 * 2
        assert ev.observations[0].kind == "baseline"
        assert [o.index for o in ev.observations] == list(range(7))


class TestProjection:
    def members(self):
        return [Routine("A", ("x",), _fa, weight=2.0),
                Routine("B", ("y",), _fb, weight=1.0)]

    def obs(self, index, config, values):
        return Phase1Observation(
            index=index, kind="variation", param="x",
            config=config, values=values,
        )

    def test_exact_pin_match_reconstructs_objective(self):
        sub = space2d().subspace(["x"], pinned={"y": 2.0}, name="m")
        records = project_observations(
            [self.obs(0, {"x": 1.0, "y": 2.0}, {"A": 4.0, "B": 4.5})],
            self.members(), sub,
        )
        assert len(records) == 1
        rec = records[0]
        assert rec.objective == 2.0 * 4.0 + 1.0 * 4.5
        assert rec.cost == 0.0
        assert rec.meta["warm_start"] is True
        assert "warm_inexact" not in rec.meta
        assert rec.config == {"x": 1.0, "y": 2.0}

    def test_pin_mismatch_skipped_and_tolerance_tagged(self):
        sub = space2d().subspace(["x"], pinned={"y": 2.0}, name="m")
        near = self.obs(0, {"x": 1.0, "y": 2.05}, {"A": 4.1, "B": 4.7})
        assert project_observations([near], self.members(), sub) == []
        recs = project_observations(
            [near], self.members(), sub, tolerance=0.05
        )
        assert len(recs) == 1
        assert recs[0].meta["warm_inexact"] is True

    def test_dedup_cap_and_ordering(self):
        sub = space2d().subspace(["x"], pinned={"y": 2.0}, name="m")
        obs = [
            self.obs(0, {"x": 3.0, "y": 2.0}, {"A": 9.0, "B": 1.0}),
            self.obs(1, {"x": 1.0, "y": 2.0}, {"A": 1.0, "B": 1.0}),
            self.obs(2, {"x": 1.0, "y": 2.0}, {"A": 5.0, "B": 5.0}),  # dup
            self.obs(3, {"x": 2.0, "y": 2.0}, {"A": 4.0, "B": 1.0}),
        ]
        recs = project_observations(obs, self.members(), sub, max_records=2)
        assert len(recs) == 2
        assert [r.config["x"] for r in recs] == [1.0, 2.0]  # best first
        assert recs[0].objective <= recs[1].objective

    def test_failed_and_nonfinite_values_skipped(self):
        sub = space2d().subspace(["x"], pinned={"y": 2.0}, name="m")
        obs = [
            self.obs(0, {"x": 1.0, "y": 2.0}, {"A": None, "B": 4.0}),
            self.obs(1, {"x": 2.0, "y": 2.0}, {"A": float("inf"), "B": 4.0}),
        ]
        assert project_observations(obs, self.members(), sub) == []

    def test_observation_missing_tuned_parameter_skipped(self):
        sub = space2d().subspace(["x"], pinned={"y": 2.0}, name="m")
        partial = Phase1Observation(
            index=0, kind="insight", param=None,
            config={"y": 2.0}, values={"A": 1.0, "B": 1.0},
        )
        assert project_observations([partial], self.members(), sub) == []


class TestObservationRoundTrip:
    def test_to_from_dict(self):
        obs = Phase1Observation(
            index=3, kind="variation", param="x",
            config={"x": 1.5, "y": 2.0},
            values={"A": 1.0, "B": None},
            errors={"B": "OSError('flake')"},
            extra_runs=1,
        )
        d = json.loads(json.dumps(obs.to_dict()))
        again = Phase1Observation.from_dict(d)
        assert again == obs
        assert not obs.ok
