"""Tests for multi-baseline sensitivity averaging."""

import numpy as np
import pytest

from repro.insights import SensitivityAnalysis
from repro.space import Real, SearchSpace


def space():
    return SearchSpace([Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)])


class TestRunAveraged:
    def test_cost_scales_with_baselines(self):
        sa = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=0
        )
        res = sa.run_averaged(3)
        assert res.n_evaluations == 3 * (1 + 4 * 2)

    def test_single_baseline_equivalent(self):
        sa1 = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=5
        )
        sa2 = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=5
        )
        assert sa1.run_averaged(1).scores == sa2.run().scores

    def test_variance_reduction(self):
        """Averaged scores are closer to the long-run mean than single-
        baseline scores, on a target whose sensitivity depends strongly on
        the baseline position."""

        def target(c):
            return c["x"] ** 3 + 0.1 * c["y"]

        singles, averaged = [], []
        for seed in range(12):
            sa = SensitivityAnalysis(
                space(), {"f": target}, n_variations=5, random_state=seed
            )
            singles.append(sa.run().scores["f"]["x"])
            sa2 = SensitivityAnalysis(
                space(), {"f": target}, n_variations=5, random_state=seed
            )
            averaged.append(sa2.run_averaged(4).scores["f"]["x"])
        assert np.std(averaged) < np.std(singles)

    def test_explicit_baselines(self):
        sa = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=3, random_state=0
        )
        bases = [{"x": 1.0, "y": 1.0}, {"x": 5.0, "y": 5.0}]
        res = sa.run_averaged(2, baselines=bases)
        assert res.baseline == bases[0]

    def test_validation(self):
        sa = SensitivityAnalysis(space(), {"f": lambda c: 1.0}, random_state=0)
        with pytest.raises(ValueError):
            sa.run_averaged(0)
        with pytest.raises(ValueError):
            sa.run_averaged(2, baselines=[{"x": 1.0, "y": 1.0}])
