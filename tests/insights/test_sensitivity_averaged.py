"""Tests for multi-baseline sensitivity averaging."""

import numpy as np
import pytest

from repro.insights import SensitivityAnalysis
from repro.space import Real, SearchSpace


def space():
    return SearchSpace([Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)])


class TestRunAveraged:
    def test_cost_scales_with_baselines(self):
        sa = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=0
        )
        res = sa.run_averaged(3)
        assert res.n_evaluations == 3 * (1 + 4 * 2)

    def test_single_baseline_equivalent(self):
        sa1 = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=5
        )
        sa2 = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=4, random_state=5
        )
        assert sa1.run_averaged(1).scores == sa2.run().scores

    def test_variance_reduction(self):
        """Averaged scores are closer to the long-run mean than single-
        baseline scores, on a target whose sensitivity depends strongly on
        the baseline position."""

        def target(c):
            return c["x"] ** 3 + 0.1 * c["y"]

        singles, averaged = [], []
        for seed in range(12):
            sa = SensitivityAnalysis(
                space(), {"f": target}, n_variations=5, random_state=seed
            )
            singles.append(sa.run().scores["f"]["x"])
            sa2 = SensitivityAnalysis(
                space(), {"f": target}, n_variations=5, random_state=seed
            )
            averaged.append(sa2.run_averaged(4).scores["f"]["x"])
        assert np.std(averaged) < np.std(singles)

    def test_explicit_baselines(self):
        sa = SensitivityAnalysis(
            space(), {"f": lambda c: c["x"]}, n_variations=3, random_state=0
        )
        bases = [{"x": 1.0, "y": 1.0}, {"x": 5.0, "y": 5.0}]
        res = sa.run_averaged(2, baselines=bases)
        assert res.baseline == bases[0]

    def test_validation(self):
        sa = SensitivityAnalysis(space(), {"f": lambda c: 1.0}, random_state=0)
        with pytest.raises(ValueError):
            sa.run_averaged(0)
        with pytest.raises(ValueError):
            sa.run_averaged(2, baselines=[{"x": 1.0, "y": 1.0}])


class TestAveragedDegradation:
    """A target failing on exactly one baseline degrades only that
    baseline's contribution (issue satellite)."""

    BASES = [{"x": 1.0, "y": 1.0}, {"x": 1.0, "y": 9.0}]

    @staticmethod
    def target(c):
        # Every x-variation of baseline 1 (y pinned at 9.0) fails twice;
        # baseline 0 and all y-variations are clean.
        if c["y"] == 9.0 and c["x"] != 1.0:
            return float("nan")
        return 100.0 * c["x"] + c["y"]

    def run(self, V=4):
        sa = SensitivityAnalysis(
            space(), {"f": self.target}, n_variations=V, random_state=0
        )
        return sa.run_averaged(2, baselines=self.BASES)

    def test_warnings_prefixed_with_baseline_index(self):
        res = self.run()
        assert res.warnings  # baseline 1's x-variations all failed
        assert all(w.startswith("baseline 1: ") for w in res.warnings)
        assert any("score set to 0" in w for w in res.warnings)

    def test_n_evaluations_sums_baselines_and_retries(self):
        V = 4
        res = self.run(V)
        # Baseline 0: 1 + 2V clean runs.  Baseline 1: same configs, but
        # the V failed x-variations are each re-measured once.
        assert res.n_evaluations == (1 + 2 * V) + (1 + 2 * V + V)

    def test_scores_average_with_zeroed_baseline(self):
        V = 4
        res = self.run(V)
        solo = SensitivityAnalysis(
            space(), {"f": self.target}, n_variations=V, random_state=0
        ).run(self.BASES[0])
        # Baseline 1 contributes 0 for x (all variations failed), so the
        # average halves baseline 0's x-score.
        assert res.scores["f"]["x"] == pytest.approx(
            solo.scores["f"]["x"] / 2.0
        )
        assert res.scores["f"]["y"] > 0.0
