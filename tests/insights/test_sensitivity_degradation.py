"""Graceful degradation of the sensitivity analysis under failed or
non-finite variation measurements (issue satellite: flaky HPC runs must
not NaN or abort the ``1 + V x d``-observation analysis)."""

import math

import pytest

from repro.insights import SensitivityAnalysis
from repro.insights.sensitivity import SensitivityResult
from repro.space import Real, SearchSpace


def space2d():
    return SearchSpace([Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)], name="s")


class FlakyOnce:
    """Fails each configuration's first measurement, succeeds on the
    re-measure — the degradation path should fully recover."""

    def __init__(self, fn):
        self.fn = fn
        self.seen = set()
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        key = (round(cfg["x"], 12), round(cfg["y"], 12))
        if key not in self.seen:
            self.seen.add(key)
            raise OSError("simulated node flake")
        return self.fn(cfg)


class FailsAbove:
    """Deterministically returns NaN above a threshold of x — the
    re-measure cannot help, so those slots must be imputed."""

    def __init__(self, fn, cut):
        self.fn = fn
        self.cut = cut

    def __call__(self, cfg):
        if cfg["x"] > self.cut:
            return float("nan")
        return self.fn(cfg)


def linear(c):
    return 100.0 * c["x"] + 1.0 * c["y"] + 50.0


class TestReMeasure:
    def test_single_flake_fully_recovers(self):
        sa_clean = SensitivityAnalysis(
            space2d(), {"f": linear}, n_variations=6, random_state=0
        )
        clean = sa_clean.run()

        flaky = FlakyOnce(linear)
        sa = SensitivityAnalysis(
            space2d(), {"f": flaky}, n_variations=6, random_state=0
        )
        res = sa.run()
        # The re-measure recovered every slot: identical scores, no
        # imputation warnings...
        assert res.scores == clean.scores
        assert not any("imputed" in w for w in res.warnings)
        # ...at up to double the evaluation cost (each distinct
        # configuration re-measured once; clipped variations repeat).
        assert clean.n_evaluations < res.n_evaluations <= 2 * clean.n_evaluations

    def test_persistent_failure_imputed_at_mean(self):
        fn = FailsAbove(linear, cut=5.0)
        sa = SensitivityAnalysis(
            space2d(), {"f": fn}, n_variations=8, random_state=3
        )
        res = sa.run(baseline={"x": 4.0, "y": 4.0})
        # Compounding +10% variations push x past the cutoff eventually,
        # so some x-slots failed — but the score stays finite and the
        # degradation is recorded.
        assert math.isfinite(res.scores["f"]["x"])
        assert res.scores["f"]["x"] > 0.0
        assert any("imputed" in w and "f/x" in w for w in res.warnings)
        assert any("measurement failed twice" in w for w in res.warnings)

    def test_all_variations_failed_scores_zero_with_warning(self):
        def always_nan(cfg):
            return float("nan") if cfg["x"] != 4.0 else linear(cfg)

        sa = SensitivityAnalysis(
            space2d(), {"f": always_nan}, n_variations=4, random_state=0
        )
        res = sa.run(baseline={"x": 4.0, "y": 4.0})
        assert res.scores["f"]["x"] == 0.0
        assert any("all" in w and "f/x" in w for w in res.warnings)

    def test_baseline_failure_raises(self):
        def broken(cfg):
            raise ValueError("baseline cannot be measured")

        sa = SensitivityAnalysis(
            space2d(), {"f": broken}, n_variations=4, random_state=0
        )
        with pytest.raises(RuntimeError, match="baseline measurement"):
            sa.run()

    def test_clean_run_has_no_warnings(self):
        res = SensitivityAnalysis(
            space2d(), {"f": linear}, n_variations=5, random_state=0
        ).run()
        assert res.warnings == []


class TestWarningsSerialization:
    def test_roundtrip_with_warnings(self):
        res = SensitivityResult(
            baseline={"x": 1.0},
            baseline_values={"f": 2.0},
            scores={"f": {"x": 0.5}},
            n_evaluations=7,
            warnings=["f/x: imputed 1 of 5 variations"],
        )
        back = SensitivityResult.from_dict(res.to_dict())
        assert back.warnings == res.warnings

    def test_legacy_checkpoint_without_warnings_loads(self):
        d = {
            "baseline": {"x": 1.0},
            "baseline_values": {"f": 2.0},
            "scores": {"f": {"x": 0.5}},
            "n_evaluations": 7,
        }
        back = SensitivityResult.from_dict(d)
        assert back.warnings == []

    def test_clean_to_dict_omits_warnings_key(self):
        res = SensitivityResult(
            baseline={}, baseline_values={}, scores={"f": {}}, n_evaluations=1
        )
        assert "warnings" not in res.to_dict()

    def test_run_averaged_merges_warnings(self):
        fn = FailsAbove(linear, cut=5.0)
        sa = SensitivityAnalysis(
            space2d(), {"f": fn}, n_variations=8, random_state=3
        )
        res = sa.run_averaged(
            2,
            baselines=[{"x": 4.0, "y": 4.0}, {"x": 4.5, "y": 4.0}],
        )
        assert any(w.startswith("baseline 0:") for w in res.warnings)
