"""Tests for feature-importance aggregation and the one-in-ten rule."""

import numpy as np
import pytest

from repro.insights import (
    analyze_parameters,
    one_in_ten_ok,
    required_samples,
)
from repro.space import Integer, Real, SearchSpace


def space():
    return SearchSpace(
        [Real("x", 0.0, 1.0), Real("y", 0.0, 1.0), Integer("n", 1, 32)],
        name="imp",
    )


def sample_data(n=60, seed=0):
    sp = space()
    rng = np.random.default_rng(seed)
    configs = sp.sample_batch(n, rng)
    objectives = [10.0 * c["x"] + 0.1 * c["n"] for c in configs]
    return sp, configs, objectives


class TestOneInTen:
    def test_rule(self):
        assert required_samples(3) == 30
        assert one_in_ten_ok(30, 3)
        assert not one_in_ten_ok(29, 3)

    def test_custom_per_feature(self):
        assert required_samples(2, per_feature=20) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            required_samples(0)


class TestAnalyzeParameters:
    def test_top_importance_is_driver(self):
        sp, configs, objectives = sample_data()
        ins = analyze_parameters(sp, configs, objectives, random_state=0)
        assert ins.top_important(1)[0][0] == "x"
        assert ins.importance_rank()[0] == "x"
        assert sum(ins.importances.values()) == pytest.approx(1.0)

    def test_least_important_is_noise(self):
        sp, configs, objectives = sample_data()
        ins = analyze_parameters(sp, configs, objectives, random_state=0)
        assert ins.least_important(1)[0][0] == "y"

    def test_target_correlations(self):
        sp, configs, objectives = sample_data()
        ins = analyze_parameters(sp, configs, objectives, random_state=0)
        assert ins.target_correlations["x"] > 0.8
        assert abs(ins.target_correlations["y"]) < 0.3

    def test_one_in_ten_flag(self):
        sp, configs, objectives = sample_data(n=60)
        ok = analyze_parameters(sp, configs, objectives, random_state=0)
        assert ok.one_in_ten_satisfied  # 60 >= 10 * 3
        small = analyze_parameters(
            sp, configs[:20], objectives[:20], random_state=0
        )
        assert not small.one_in_ten_satisfied

    def test_report_renders(self):
        sp, configs, objectives = sample_data()
        text = analyze_parameters(sp, configs, objectives, random_state=0).format_report()
        assert "Importance" in text and "x" in text

    def test_validation(self):
        sp, configs, objectives = sample_data()
        with pytest.raises(ValueError):
            analyze_parameters(sp, configs, objectives[:-1])
        with pytest.raises(ValueError):
            analyze_parameters(sp, configs[:1], objectives[:1])

    def test_correlated_pair_detection(self):
        """A constraint-induced coupling (the paper's tb~tb_sm case)."""
        sp = SearchSpace([Integer("tb", 32, 1024), Integer("tb_sm", 1, 32)])
        rng = np.random.default_rng(0)
        configs = []
        while len(configs) < 120:
            c = sp.sample(rng)
            if c["tb"] * c["tb_sm"] <= 2048:  # constraint filter
                configs.append(c)
        objectives = [1.0 / (c["tb"] * c["tb_sm"]) for c in configs]
        ins = analyze_parameters(
            sp, configs, objectives, correlation_threshold=0.3, random_state=0
        )
        pair_names = {frozenset(p[:2]) for p in ins.correlated_parameter_pairs}
        assert frozenset({"tb", "tb_sm"}) in pair_names
