"""Tests for Pearson / partial correlation analyses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.insights import (
    correlated_pairs,
    design_matrix,
    partial_correlation_matrix,
    pearson_matrix,
    pearson_with_target,
)
from repro.space import Integer, Real, SearchSpace


def data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=n)
    b = 0.8 * a + 0.2 * rng.normal(size=n)  # strongly correlated with a
    c = rng.normal(size=n)  # independent
    return np.column_stack([a, b, c])


class TestPearsonMatrix:
    def test_diagonal_ones_and_symmetry(self):
        C = pearson_matrix(data())
        assert np.allclose(np.diag(C), 1.0)
        assert np.allclose(C, C.T)
        assert np.all(np.abs(C) <= 1.0)

    def test_detects_linear_coupling(self):
        C = pearson_matrix(data())
        assert C[0, 1] > 0.9
        assert abs(C[0, 2]) < 0.2

    def test_perfect_anticorrelation(self):
        x = np.linspace(0, 1, 50)
        C = pearson_matrix(np.column_stack([x, -x]))
        assert C[0, 1] == pytest.approx(-1.0)

    def test_constant_column_gives_zero(self):
        X = np.column_stack([np.ones(30), np.linspace(0, 1, 30)])
        C = pearson_matrix(X)
        assert C[0, 1] == 0.0
        assert C[0, 0] == 1.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.ones((1, 3)))

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_bounds_property(self, n):
        X = np.random.default_rng(n).normal(size=(n, 4))
        C = pearson_matrix(X)
        assert np.all(C <= 1.0 + 1e-12) and np.all(C >= -1.0 - 1e-12)


class TestPearsonWithTarget:
    def test_identifies_driver(self):
        X = data()
        y = 3.0 * X[:, 0] + 0.1 * np.random.default_rng(1).normal(size=X.shape[0])
        r = pearson_with_target(X, y)
        assert r[0] > 0.9
        assert abs(r[2]) < 0.2

    def test_constant_target(self):
        X = data()
        assert np.allclose(pearson_with_target(X, np.ones(X.shape[0])), 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_with_target(data(), np.ones(3))


class TestPartialCorrelation:
    def test_removes_mediated_correlation(self):
        # c = a + b with independent a, b: a and c correlate strongly,
        # but partial correlation of a,b given c turns negative.
        rng = np.random.default_rng(0)
        a = rng.normal(size=500)
        b = rng.normal(size=500)
        c = a + b + 0.01 * rng.normal(size=500)
        P = partial_correlation_matrix(np.column_stack([a, b, c]))
        assert P[0, 2] > 0.5  # direct link survives
        assert P[0, 1] < -0.5  # conditioning on the sum induces negative

    def test_diagonal(self):
        P = partial_correlation_matrix(data())
        assert np.allclose(np.diag(P), 1.0)


class TestCorrelatedPairs:
    def test_finds_tb_like_pair(self):
        X = data()
        pairs = correlated_pairs(X, ["tb", "tb_sm", "u"], threshold=0.5)
        assert pairs and pairs[0][:2] == ("tb", "tb_sm")

    def test_threshold_filters(self):
        X = data()
        assert correlated_pairs(X, ["a", "b", "c"], threshold=0.99) == []

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            correlated_pairs(data(), ["a", "b"])


class TestDesignMatrix:
    def test_encodes_space(self):
        sp = SearchSpace([Integer("n", 1, 10), Real("x", 0.0, 1.0)])
        rng = np.random.default_rng(0)
        configs = sp.sample_batch(12, rng)
        X, names = design_matrix(sp, configs)
        assert X.shape == (12, 2)
        assert names == ["n", "x"]
        assert np.all((X >= 0) & (X <= 1))

    def test_empty_rejected(self):
        sp = SearchSpace([Real("x", 0.0, 1.0)])
        with pytest.raises(ValueError):
            design_matrix(sp, [])
