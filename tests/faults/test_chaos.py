"""Chaos suite: the headline robustness property — campaigns under
injected transient faults are bit-identical to fault-free campaigns —
plus kill-and-resume under faults and pool worker-loss recovery.

The chaos seed is taken from ``REPRO_CHAOS_SEED`` (default 0) so CI can
sweep seeds without code changes.
"""

import multiprocessing
import os
import time

import pytest

from repro.bo import EvaluationDatabase
from repro.core import TuningMethodology
from repro.faults import FaultPlan
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace
from repro.synthetic import SyntheticFunction

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Every configuration faults once, then succeeds — fully absorbed by
#: retry capacity >= the burst, which is what makes the runs comparable.
TRANSIENT_PLAN = FaultPlan(
    seed=CHAOS_SEED, transient_rate=1.0, transient_burst=1
)


def space(names, label):
    return SearchSpace([Real(n, 0.0, 1.0) for n in names], name=label)


class Quad:
    def __init__(self, center):
        self.center = center

    def __call__(self, cfg):
        return sum((v - self.center) ** 2 for v in cfg.values()) + 0.05


def specs(fault_plan=None, max_retries=0, n=10):
    return [
        SearchSpec(space(["a", "b"], "S1"), Quad(0.3), max_evaluations=n,
                   fault_plan=fault_plan, max_retries=max_retries),
        SearchSpec(space(["c"], "S2"), Quad(0.7), engine="random",
                   max_evaluations=n, fault_plan=fault_plan,
                   max_retries=max_retries),
        SearchSpec(space(["d", "e"], "S3"), Quad(0.5), max_evaluations=n,
                   fault_plan=fault_plan, max_retries=max_retries),
    ]


def fingerprint(campaign):
    return [
        (s.name, s.best_config, s.best_objective, s.n_evaluations)
        for s in campaign.searches
    ]


class TestChaosDeterminism:
    def test_transient_faults_bit_identical_sequential(self):
        clean = SearchCampaign(specs(), random_state=CHAOS_SEED).run()
        chaos = SearchCampaign(
            specs(TRANSIENT_PLAN, max_retries=2), random_state=CHAOS_SEED
        ).run()
        assert fingerprint(chaos) == fingerprint(clean)
        # And nothing leaked into the databases: same record-for-record
        # objectives (the retries absorbed every injected fault).
        for a, b in zip(clean.searches, chaos.searches):
            assert [r.objective for r in a.database] == [
                r.objective for r in b.database
            ]

    def test_transient_faults_bit_identical_parallel(self):
        clean = SearchCampaign(
            specs(), random_state=CHAOS_SEED, parallel=True, n_workers=3
        ).run()
        chaos = SearchCampaign(
            specs(TRANSIENT_PLAN, max_retries=2),
            random_state=CHAOS_SEED, parallel=True, n_workers=3,
        ).run()
        assert clean.executed_parallel and chaos.executed_parallel
        assert fingerprint(chaos) == fingerprint(clean)

    def test_sequential_and_parallel_chaos_agree(self):
        seq = SearchCampaign(
            specs(TRANSIENT_PLAN, max_retries=2), random_state=CHAOS_SEED
        ).run()
        par = SearchCampaign(
            specs(TRANSIENT_PLAN, max_retries=2),
            random_state=CHAOS_SEED, parallel=True, n_workers=3,
        ).run()
        assert fingerprint(seq) == fingerprint(par)


class Killer:
    """In-process objective that dies mid-campaign (simulated crash)."""

    def __init__(self, center, die_after):
        self.center = center
        self.calls = 0
        self.die_after = die_after

    def __call__(self, cfg):
        self.calls += 1
        if self.calls > self.die_after:
            raise KeyboardInterrupt
        return Quad(self.center)(cfg)


class TestKillAndResumeUnderFaults:
    def test_resume_under_faults_matches_uninterrupted(self, tmp_path):
        sp = space(["a", "b"], "K")
        plan = FaultPlan(seed=CHAOS_SEED, transient_rate=1.0, transient_burst=1)
        uninterrupted = SearchCampaign(
            [SearchSpec(sp, Quad(0.4), max_evaluations=14,
                        fault_plan=plan, max_retries=2)],
            random_state=CHAOS_SEED,
        ).run()

        ck = tmp_path / "ck"
        with pytest.raises(KeyboardInterrupt):
            SearchCampaign(
                [SearchSpec(sp, Killer(0.4, die_after=9), max_evaluations=14,
                            fault_plan=plan, max_retries=2)],
                random_state=CHAOS_SEED, checkpoint_dir=str(ck),
            ).run()
        db = EvaluationDatabase(ck / "K-0.jsonl")
        assert 0 < len(db) < 14

        resumed = SearchCampaign(
            [SearchSpec(sp, Quad(0.4), max_evaluations=14,
                        fault_plan=plan, max_retries=2)],
            random_state=CHAOS_SEED, checkpoint_dir=str(ck),
        ).run()
        s = resumed.searches[0]
        u = uninterrupted.searches[0]
        assert s.n_evaluations == 14 - len(db)
        assert len(s.database) == 14
        assert s.best_config == u.best_config
        assert s.best_objective == u.best_objective


class DiesInWorker:
    """Kills its hosting pool worker; completes fine in the main process.

    Exercises BrokenProcessPool recovery: both pool rounds lose their
    workers, so the executor must fall back to the deterministic
    in-process path.
    """

    def __init__(self, center):
        self.center = center

    def __call__(self, cfg):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return Quad(self.center)(cfg)


class SleepsInWorker:
    """Hangs inside pool workers only (main-process calls are instant)."""

    def __call__(self, cfg):
        if multiprocessing.parent_process() is not None:
            time.sleep(600)
        return float(cfg["a"]) + 0.05


class TestPoolResilience:
    def test_worker_loss_falls_back_in_process_bit_identical(self):
        def make():
            return [
                SearchSpec(space(["a"], "L1"), DiesInWorker(0.3),
                           engine="random", max_evaluations=8),
                SearchSpec(space(["b"], "L2"), DiesInWorker(0.6),
                           engine="random", max_evaluations=8),
            ]

        reference = SearchCampaign(make(), random_state=CHAOS_SEED).run()
        recovered = SearchCampaign(
            make(), random_state=CHAOS_SEED, parallel=True, n_workers=2
        ).run()
        assert recovered.executed_parallel
        assert fingerprint(recovered) == fingerprint(reference)
        for s in recovered.searches:
            assert s.meta.get("worker_lost") is True
            assert s.meta["recovery"]["fallback"] == "in-process"
            assert "worker_lost" in s.meta["recovery"]["events"]

    def test_member_timeout_raises_after_pool_rounds(self):
        specs_ = [
            SearchSpec(space(["a"], "T1"), SleepsInWorker(),
                       engine="random", max_evaluations=4),
            SearchSpec(space(["b"], "T2"), Quad(0.5),
                       engine="random", max_evaluations=4),
        ]
        campaign = SearchCampaign(
            specs_, random_state=CHAOS_SEED, parallel=True, n_workers=2,
            member_timeout=0.5,
        )
        t0 = time.perf_counter()
        with pytest.raises(TimeoutError, match="member_timeout"):
            campaign.run()
        # Two pool rounds at ~0.5s each, not the 600s hang.
        assert time.perf_counter() - t0 < 30.0


class TestMethodologyChaos:
    def test_methodology_under_transient_faults_matches_clean(self):
        def run(fault_plan, retries):
            f = SyntheticFunction(3, random_state=CHAOS_SEED)
            tm = TuningMethodology(
                f.search_space(),
                f.routines(),
                cutoff=0.25,
                n_variations=10,
                random_state=CHAOS_SEED,
                engine="random",
                fault_plan=fault_plan,
                max_retries=retries,
            )
            return tm.run()

        clean = run(None, 0)
        chaos = run(TRANSIENT_PLAN, 2)
        assert chaos.best_config == clean.best_config
        # Fault injection applies only to the search stage, so the
        # analysis accounting is untouched and total evaluations agree.
        assert chaos.analysis_evaluations == clean.analysis_evaluations
        assert chaos.total_evaluations == clean.total_evaluations
        assert (
            chaos.campaign.n_evaluations == clean.campaign.n_evaluations
        )
