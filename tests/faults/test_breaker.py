"""Circuit breaker: cell mapping, trip semantics, and end-to-end
quarantine of a poison region (zero evaluations after the trip)."""

import pytest

from repro.faults import (
    CircuitBreaker,
    FailureKind,
    FaultPlan,
    PoisonRegion,
)
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace


def space_1d(name="B"):
    return SearchSpace([Real("x", 0.0, 1.0)], name=name)


class TestBreakerUnit:
    def test_trips_after_threshold_permanent_failures(self):
        br = CircuitBreaker(space_1d(), threshold=3, resolution=4)
        cfg = {"x": 0.1}
        assert br.record(cfg, FailureKind.PERMANENT) is False
        assert br.record(cfg, FailureKind.PERMANENT) is False
        assert br.allows(cfg)
        assert br.record(cfg, FailureKind.PERMANENT) is True  # trip
        assert not br.allows(cfg)
        assert br.is_quarantined({"x": 0.2})  # same cell [0, 0.25)
        assert br.allows({"x": 0.3})  # next cell untouched
        assert br.n_tripped == 1

    def test_transient_and_timeout_do_not_count(self):
        br = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        cfg = {"x": 0.1}
        assert br.record(cfg, FailureKind.TRANSIENT) is False
        assert br.record(cfg, FailureKind.TIMEOUT) is False
        assert br.record(cfg, FailureKind.WORKER_LOST) is False
        assert br.record(cfg, None) is False
        assert br.allows(cfg)
        assert br.record(cfg, FailureKind.NUMERIC) is True  # counted kind

    def test_accepts_string_kinds_from_checkpoints(self):
        br = CircuitBreaker(space_1d(), threshold=1)
        assert br.record({"x": 0.1}, "permanent") is True

    def test_cell_resolution(self):
        br = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        assert br.cell({"x": 0.0}) == (0,)
        assert br.cell({"x": 0.26}) == (1,)
        assert br.cell({"x": 1.0}) == (3,)  # clipped into the top cell

    def test_summary_is_jsonl_safe(self):
        import json

        br = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        s = br.summary()
        assert json.loads(json.dumps(s)) == s
        assert s["cells"] == [[0]]
        assert s["failures_counted"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(space_1d(), threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(space_1d(), resolution=0)


class PoisonAware:
    """Picklable objective; the fault plan provides the poison."""

    def __call__(self, cfg):
        return float(cfg["x"]) + 0.05


class TestQuarantineEndToEnd:
    def test_poison_region_gets_zero_evaluations_after_trip(self):
        # Poison the first breaker cell [0, 0.25); after `threshold`
        # permanent failures there, the engine must never sample it again.
        threshold = 3
        spec = SearchSpec(
            space_1d("Q"),
            PoisonAware(),
            engine="random",
            max_evaluations=60,
            fault_plan=FaultPlan(poison=(PoisonRegion({"x": [0.0, 0.2499]}),)),
            quarantine_threshold=threshold,
            quarantine_resolution=4,
        )
        result = SearchCampaign([spec], random_state=0).run()
        search = result.searches[0]

        failed = [r for r in search.database if not r.ok]
        assert all(r.meta["failure_kind"] == "permanent" for r in failed)
        # Exactly `threshold` failures were paid before the trip; every
        # evaluation after it stays out of the quarantined cell.
        assert len(failed) == threshold
        tripped_at = max(
            i for i, r in enumerate(search.database) if not r.ok
        )
        for rec in list(search.database)[tripped_at + 1:]:
            assert rec.config["x"] >= 0.25

        assert search.meta["quarantined"]["cells"] == [[0]]
        assert search.meta["quarantine_skipped"] > 0

    def test_bo_engine_quarantines_too(self):
        spec = SearchSpec(
            space_1d("QB"),
            PoisonAware(),
            engine="bo",
            max_evaluations=15,
            fault_plan=FaultPlan(poison=(PoisonRegion({"x": [0.0, 0.2499]}),)),
            quarantine_threshold=2,
            quarantine_resolution=4,
            engine_options={"n_initial": 5, "n_candidates": 64},
        )
        result = SearchCampaign([spec], random_state=3).run()
        search = result.searches[0]
        failed_idx = [i for i, r in enumerate(search.database) if not r.ok]
        if search.meta.get("quarantined"):
            trip = failed_idx[1]  # threshold=2 -> second failure trips
            for rec in list(search.database)[trip + 1:]:
                assert rec.config["x"] >= 0.25

    def test_quarantine_state_survives_resume(self, tmp_path):
        plan = FaultPlan(poison=(PoisonRegion({"x": [0.0, 0.2499]}),))

        def spec(n):
            return SearchSpec(
                space_1d("R"),
                PoisonAware(),
                engine="random",
                max_evaluations=n,
                fault_plan=plan,
                quarantine_threshold=2,
                quarantine_resolution=4,
            )

        # First leg: enough samples to trip the breaker.
        first = SearchCampaign(
            [spec(30)], random_state=1, checkpoint_dir=str(tmp_path)
        ).run()
        assert first.searches[0].meta.get("quarantined")

        # Resumed leg: the breaker is replayed from the checkpointed
        # failure kinds, so the extension never re-enters the cell.
        second = SearchCampaign(
            [spec(50)], random_state=1, checkpoint_dir=str(tmp_path)
        ).run()
        db = second.searches[0].database
        fresh = list(db)[30:]
        assert fresh  # the resume actually extended the search
        for rec in fresh:
            assert rec.config["x"] >= 0.25


class TestBreakerPersistence:
    """Breaker state rides in the checkpoint scope (sidecar file) and is
    restored exactly on resume — partial counts included."""

    def test_state_dict_roundtrip(self):
        br = CircuitBreaker(space_1d(), threshold=3, resolution=4)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        br.record({"x": 0.9}, FailureKind.NUMERIC)
        clone = CircuitBreaker(space_1d(), threshold=3, resolution=4)
        clone.load_state(br.state_dict())
        assert clone.state_dict() == br.state_dict()
        assert clone.total_counted == 3
        # One more failure in the partially-counted cell trips it — the
        # pre-crash partial count was preserved, not re-derived.
        assert clone.record({"x": 0.2}, FailureKind.PERMANENT) is True

    def test_tripped_cells_restored(self):
        br = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        clone = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        clone.load_state(br.state_dict())
        assert not clone.allows({"x": 0.2})
        assert clone.allows({"x": 0.3})

    def test_geometry_mismatch_ignored(self):
        br = CircuitBreaker(space_1d(), threshold=1, resolution=4)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        other = CircuitBreaker(space_1d(), threshold=1, resolution=8)
        other.load_state(br.state_dict())
        assert other.total_counted == 0  # snapshot rejected, state clean
        assert other.allows({"x": 0.1})

    def test_persist_and_restore_sidecar(self, tmp_path):
        from repro.faults.breaker import (
            breaker_sidecar_path,
            persist_breaker,
            restore_breaker,
        )

        ckpt = tmp_path / "S-0.jsonl"
        br = CircuitBreaker(space_1d(), threshold=2, resolution=4)
        br.record({"x": 0.1}, FailureKind.PERMANENT)
        persist_breaker(br, ckpt)
        assert (tmp_path / "S-0.jsonl.breaker.json").exists()
        assert breaker_sidecar_path(ckpt).endswith(".breaker.json")

        fresh = CircuitBreaker(space_1d(), threshold=2, resolution=4)
        assert restore_breaker(fresh, ckpt) is True
        assert fresh.total_counted == 1

    def test_restore_missing_or_corrupt_returns_false(self, tmp_path):
        from repro.faults.breaker import persist_breaker, restore_breaker

        br = CircuitBreaker(space_1d(), threshold=2, resolution=4)
        assert restore_breaker(br, tmp_path / "absent.jsonl") is False
        assert restore_breaker(br, None) is False
        bad = tmp_path / "bad.jsonl"
        (tmp_path / "bad.jsonl.breaker.json").write_text("{not json")
        assert restore_breaker(br, bad) is False
        # Empty (no counts) sidecar also reports False: nothing restored.
        empty = CircuitBreaker(space_1d(), threshold=2, resolution=4)
        persist_breaker(empty, tmp_path / "empty.jsonl")
        assert restore_breaker(br, tmp_path / "empty.jsonl") is False


class TestBreakerKillAndResume:
    def test_sidecar_restored_without_double_counting(self, tmp_path):
        import os

        from repro.bo import EvaluationDatabase
        from repro.faults.breaker import breaker_sidecar_path
        from repro.faults.injection import FaultyObjective
        from repro.search.random_search import RandomSearch

        plan = FaultPlan(poison=(PoisonRegion({"x": [0.0, 0.2499]}),))
        ckpt = tmp_path / "KR.jsonl"

        def search():
            # Threshold high enough never to trip: the state at stake is
            # the *partial* per-cell counts only the sidecar preserves
            # exactly.
            return RandomSearch(
                space_1d("KR"),
                FaultyObjective(PoisonAware(), plan),
                max_evaluations=20,
                quarantine_threshold=50,
                quarantine_resolution=4,
                database=EvaluationDatabase(path=ckpt),
                random_state=7,
            )

        first = search()
        first.run()
        c1 = first.breaker.total_counted
        assert c1 > 0  # the poison region was actually hit
        assert os.path.exists(breaker_sidecar_path(ckpt))

        # "Crash" + resume: a fresh search on the same checkpoint restores
        # the sidecar and must NOT also replay the checkpointed failures
        # (which would double every count).
        second = search()
        second.run()
        assert second.breaker.total_counted == c1
        assert second.breaker.state_dict() == first.breaker.state_dict()

        # Fallback path: without the sidecar the breaker is rebuilt from
        # the records and (with no partial retry state) agrees exactly.
        os.unlink(breaker_sidecar_path(ckpt))
        third = search()
        third.run()
        assert third.breaker.state_dict() == first.breaker.state_dict()

    def test_bo_restore_prefers_sidecar_over_replay(self, tmp_path):
        from repro.bo import BayesianOptimizer, EvaluationDatabase
        from repro.faults.breaker import persist_breaker

        ckpt = tmp_path / "BO.jsonl"

        def optimizer():
            return BayesianOptimizer(
                space_1d("BO"),
                PoisonAware(),
                max_evaluations=8,
                quarantine_threshold=5,
                quarantine_resolution=4,
                database=EvaluationDatabase(path=ckpt),
                resume=True,
                random_state=7,
            )

        first = optimizer()
        # Simulate pre-crash breaker state with *partial* counts that no
        # record replay could reconstruct (e.g. counts from evaluations
        # whose records were lost with an unsynced trace).
        first.breaker.record({"x": 0.1}, FailureKind.PERMANENT)
        first.breaker.record({"x": 0.1}, FailureKind.PERMANENT)
        persist_breaker(first.breaker, ckpt)

        second = optimizer()
        assert second._restore_breaker_state() is True
        assert second.breaker.total_counted == 2
        assert second.breaker.state_dict() == first.breaker.state_dict()
