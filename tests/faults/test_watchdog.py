"""Watchdog: real wall-clock deadlines on genuinely hanging objectives,
in-process and through the campaign executor's checkpoint path."""

import time

import pytest

from repro.bo import EvaluationDatabase
from repro.faults import EvaluationTimeoutError, FailureKind, WatchdogObjective
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace


def hang_forever(cfg):
    time.sleep(3600)


class HangAbove:
    """Picklable objective that genuinely hangs for part of the space."""

    def __init__(self, cut=0.5):
        self.cut = cut

    def __call__(self, cfg):
        if cfg["a"] > self.cut:
            time.sleep(3600)
        return float(cfg["a"]) + 0.1


class TestWatchdogObjective:
    def test_hanging_objective_terminated_within_twice_timeout(self):
        wd = WatchdogObjective(hang_forever, timeout=0.4)
        t0 = time.perf_counter()
        with pytest.raises(EvaluationTimeoutError):
            wd({"a": 1.0})
        elapsed = time.perf_counter() - t0
        assert elapsed < 2 * 0.4  # the issue's acceptance bound
        assert wd.timeouts == 1

    def test_fast_objective_passes_through(self):
        wd = WatchdogObjective(lambda cfg: cfg["a"] * 2, timeout=5.0)
        assert wd({"a": 2.0}) == 4.0
        assert wd.timeouts == 0

    def test_objective_exception_reraised_with_original_type(self):
        def bad(cfg):
            raise ValueError("permanent")

        wd = WatchdogObjective(bad, timeout=5.0)
        with pytest.raises(ValueError):
            wd({"a": 1.0})

    def test_timeout_error_is_classified_timeout(self):
        exc = EvaluationTimeoutError("deadline")
        assert exc.failure_kind is FailureKind.TIMEOUT

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            WatchdogObjective(hang_forever, timeout=0.0)


class TestWatchdogInCampaign:
    def test_hangs_recorded_as_wallclock_timeouts_in_checkpoint(self, tmp_path):
        space = SearchSpace([Real("a", 0.0, 1.0)], name="W")
        spec = SearchSpec(
            space,
            HangAbove(0.5),
            engine="random",
            max_evaluations=6,
            wall_timeout=0.3,
        )
        t0 = time.perf_counter()
        result = SearchCampaign(
            [spec], random_state=0, checkpoint_dir=str(tmp_path)
        ).run()
        elapsed = time.perf_counter() - t0
        # Every evaluation bounded by the deadline (+ generous slack).
        assert elapsed < 6 * 2 * 0.3 + 1.0

        search = result.searches[0]
        timeouts = [r for r in search.database if r.status == "timeout"]
        oks = [r for r in search.database if r.ok]
        assert timeouts and oks  # both halves of the space sampled
        for rec in timeouts:
            assert rec.config["a"] > 0.5
            assert rec.meta["failure_kind"] == FailureKind.TIMEOUT.value
            assert rec.meta["timeout_kind"] == "wallclock"

        # And the classification is persisted through the JSONL checkpoint.
        db = EvaluationDatabase(tmp_path / "W-0.jsonl")
        persisted = [r for r in db if r.status == "timeout"]
        assert len(persisted) == len(timeouts)
        for rec in persisted:
            assert rec.meta["failure_kind"] == "timeout"
            assert rec.meta["timeout_kind"] == "wallclock"

    def test_simulated_timeout_distinguished_from_wallclock(self):
        # Returned-value cap (simulated) vs watchdog (wallclock): the two
        # TIMEOUT flavors documented in search/result.py.
        space = SearchSpace([Real("a", 0.0, 1.0)], name="S")
        spec = SearchSpec(
            space,
            lambda cfg: cfg["a"] * 10.0 + 0.01,  # values above ~5 time out
            engine="random",
            max_evaluations=20,
            engine_options={"evaluation_timeout": 5.0},
        )
        result = SearchCampaign([spec], random_state=0).run()
        timeouts = [
            r for r in result.searches[0].database if r.status == "timeout"
        ]
        assert timeouts
        for rec in timeouts:
            assert rec.meta["timeout_kind"] == "simulated"
            assert rec.meta["failure_kind"] == FailureKind.TIMEOUT.value
            assert rec.cost == 5.0  # charged the cap, not the value


class SlowThenFast:
    """First configuration overruns the deadline but then *succeeds*;
    the zombie-writer hazard is its late result leaking into state."""

    def __call__(self, cfg):
        if cfg["a"] == 1.0:
            time.sleep(0.5)
            return 111.0
        return 222.0


class TestZombieWriterFence:
    def test_late_result_of_abandoned_thread_discarded(self):
        # Regression: before the generation fence, the abandoned thread's
        # eventual 111.0 could be published into the shared result box
        # and race a later evaluation of the same wrapper.
        wd = WatchdogObjective(SlowThenFast(), timeout=0.1)
        with pytest.raises(EvaluationTimeoutError):
            wd({"a": 1.0})
        # A later evaluation runs while the zombie still sleeps...
        assert wd({"a": 2.0}) == 222.0
        # ...and when the zombie finally completes, its result is fenced
        # off and counted, not published.
        deadline = time.perf_counter() + 5.0
        while wd.stale_completions == 0 and time.perf_counter() < deadline:
            time.sleep(0.02)
        assert wd.stale_completions == 1
        assert wd.timeouts == 1
        assert wd({"a": 3.0}) == 222.0  # wrapper state still clean

    def test_zombie_exception_also_fenced(self):
        def bad_late(cfg):
            time.sleep(0.3)
            raise ValueError("late failure from abandoned thread")

        wd = WatchdogObjective(bad_late, timeout=0.1)
        with pytest.raises(EvaluationTimeoutError):
            wd({"a": 1.0})
        deadline = time.perf_counter() + 5.0
        while wd.stale_completions == 0 and time.perf_counter() < deadline:
            time.sleep(0.02)
        # The stale ValueError was discarded, not raised anywhere.
        assert wd.stale_completions == 1

    def test_fence_state_survives_pickling(self):
        import pickle

        wd = WatchdogObjective(SlowThenFast(), timeout=0.1)
        with pytest.raises(EvaluationTimeoutError):
            wd({"a": 1.0})
        deadline = time.perf_counter() + 5.0
        while wd.stale_completions == 0 and time.perf_counter() < deadline:
            time.sleep(0.02)
        clone = pickle.loads(pickle.dumps(wd))
        assert clone.stale_completions == 1
        assert clone.timeouts == 1
        assert clone({"a": 2.0}) == 222.0  # fresh lock/generation work
