"""Watchdog: real wall-clock deadlines on genuinely hanging objectives,
in-process and through the campaign executor's checkpoint path."""

import time

import pytest

from repro.bo import EvaluationDatabase
from repro.faults import EvaluationTimeoutError, FailureKind, WatchdogObjective
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace


def hang_forever(cfg):
    time.sleep(3600)


class HangAbove:
    """Picklable objective that genuinely hangs for part of the space."""

    def __init__(self, cut=0.5):
        self.cut = cut

    def __call__(self, cfg):
        if cfg["a"] > self.cut:
            time.sleep(3600)
        return float(cfg["a"]) + 0.1


class TestWatchdogObjective:
    def test_hanging_objective_terminated_within_twice_timeout(self):
        wd = WatchdogObjective(hang_forever, timeout=0.4)
        t0 = time.perf_counter()
        with pytest.raises(EvaluationTimeoutError):
            wd({"a": 1.0})
        elapsed = time.perf_counter() - t0
        assert elapsed < 2 * 0.4  # the issue's acceptance bound
        assert wd.timeouts == 1

    def test_fast_objective_passes_through(self):
        wd = WatchdogObjective(lambda cfg: cfg["a"] * 2, timeout=5.0)
        assert wd({"a": 2.0}) == 4.0
        assert wd.timeouts == 0

    def test_objective_exception_reraised_with_original_type(self):
        def bad(cfg):
            raise ValueError("permanent")

        wd = WatchdogObjective(bad, timeout=5.0)
        with pytest.raises(ValueError):
            wd({"a": 1.0})

    def test_timeout_error_is_classified_timeout(self):
        exc = EvaluationTimeoutError("deadline")
        assert exc.failure_kind is FailureKind.TIMEOUT

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            WatchdogObjective(hang_forever, timeout=0.0)


class TestWatchdogInCampaign:
    def test_hangs_recorded_as_wallclock_timeouts_in_checkpoint(self, tmp_path):
        space = SearchSpace([Real("a", 0.0, 1.0)], name="W")
        spec = SearchSpec(
            space,
            HangAbove(0.5),
            engine="random",
            max_evaluations=6,
            wall_timeout=0.3,
        )
        t0 = time.perf_counter()
        result = SearchCampaign(
            [spec], random_state=0, checkpoint_dir=str(tmp_path)
        ).run()
        elapsed = time.perf_counter() - t0
        # Every evaluation bounded by the deadline (+ generous slack).
        assert elapsed < 6 * 2 * 0.3 + 1.0

        search = result.searches[0]
        timeouts = [r for r in search.database if r.status == "timeout"]
        oks = [r for r in search.database if r.ok]
        assert timeouts and oks  # both halves of the space sampled
        for rec in timeouts:
            assert rec.config["a"] > 0.5
            assert rec.meta["failure_kind"] == FailureKind.TIMEOUT.value
            assert rec.meta["timeout_kind"] == "wallclock"

        # And the classification is persisted through the JSONL checkpoint.
        db = EvaluationDatabase(tmp_path / "W-0.jsonl")
        persisted = [r for r in db if r.status == "timeout"]
        assert len(persisted) == len(timeouts)
        for rec in persisted:
            assert rec.meta["failure_kind"] == "timeout"
            assert rec.meta["timeout_kind"] == "wallclock"

    def test_simulated_timeout_distinguished_from_wallclock(self):
        # Returned-value cap (simulated) vs watchdog (wallclock): the two
        # TIMEOUT flavors documented in search/result.py.
        space = SearchSpace([Real("a", 0.0, 1.0)], name="S")
        spec = SearchSpec(
            space,
            lambda cfg: cfg["a"] * 10.0 + 0.01,  # values above ~5 time out
            engine="random",
            max_evaluations=20,
            engine_options={"evaluation_timeout": 5.0},
        )
        result = SearchCampaign([spec], random_state=0).run()
        timeouts = [
            r for r in result.searches[0].database if r.status == "timeout"
        ]
        assert timeouts
        for rec in timeouts:
            assert rec.meta["timeout_kind"] == "simulated"
            assert rec.meta["failure_kind"] == FailureKind.TIMEOUT.value
            assert rec.cost == 5.0  # charged the cap, not the value
