"""Deterministic fault injection: plan serialization, per-channel
behavior, and the (seed, config, attempt) determinism guarantee."""

import math
import pickle

import pytest

from repro.faults import (
    FaultPlan,
    FaultyObjective,
    PermanentFault,
    PoisonRegion,
    TransientFault,
)


def base_objective(cfg):
    return float(cfg["x"]) + 1.0


def decisions(obj, configs):
    """Outcome label per config: 'transient'/'nan'/value."""
    out = []
    for cfg in configs:
        try:
            v = obj(cfg)
        except TransientFault:
            out.append("transient")
        except PermanentFault:
            out.append("permanent")
        else:
            out.append("nan" if isinstance(v, float) and math.isnan(v) else v)
    return out


CONFIGS = [{"x": i / 10.0, "y": i} for i in range(30)]


class TestPlanSerialization:
    def test_roundtrip_via_json_file(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            transient_rate=0.3,
            transient_burst=2,
            numeric_rate=0.1,
            noise_scale=0.05,
            poison=(PoisonRegion({"x": [0.0, 0.2]}),),
        )
        path = tmp_path / "plan.json"
        plan.save_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"seed": 0, "typo_rate": 0.5})

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(numeric_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(transient_burst=0)
        with pytest.raises(ValueError):
            FaultPlan(noise_scale=-1.0)

    def test_active_property(self):
        assert not FaultPlan().active
        assert FaultPlan(transient_rate=0.1).active
        assert FaultPlan(poison=(PoisonRegion({"x": [0, 1]}),)).active


class TestPoisonRegion:
    def test_interval_and_value_list_and_scalar(self):
        region = PoisonRegion({"x": [0.2, 0.4], "mode": ["a", "b"], "k": 3})
        assert region.contains({"x": 0.3, "mode": "a", "k": 3})
        assert not region.contains({"x": 0.5, "mode": "a", "k": 3})
        assert not region.contains({"x": 0.3, "mode": "c", "k": 3})
        assert not region.contains({"x": 0.3, "mode": "a", "k": 4})

    def test_missing_parameter_never_matches(self):
        region = PoisonRegion({"x": [0.0, 1.0]})
        assert not region.contains({"y": 0.5})

    def test_empty_region_matches_nothing(self):
        assert not PoisonRegion().contains({"x": 0.5})

    def test_poisoned_configs_raise_permanent(self):
        plan = FaultPlan(poison=(PoisonRegion({"x": [0.0, 0.55]}),))
        obj = FaultyObjective(base_objective, plan)
        with pytest.raises(PermanentFault):
            obj({"x": 0.5})
        assert obj({"x": 0.9}) == 1.9
        assert obj.injected["permanent"] == 1


class TestDeterminism:
    def test_fresh_instances_agree(self):
        plan = FaultPlan(seed=3, transient_rate=0.4, numeric_rate=0.2)
        a = decisions(FaultyObjective(base_objective, plan), CONFIGS)
        b = decisions(FaultyObjective(base_objective, plan), CONFIGS)
        assert a == b
        assert "transient" in a and "nan" in a  # both channels exercised

    def test_pickled_copy_agrees(self):
        plan = FaultPlan(seed=3, transient_rate=0.4, numeric_rate=0.2)
        obj = FaultyObjective(base_objective, plan)
        clone = pickle.loads(pickle.dumps(obj))
        assert decisions(obj, CONFIGS) == decisions(clone, CONFIGS)

    def test_different_seeds_differ(self):
        a = decisions(
            FaultyObjective(base_objective, FaultPlan(seed=0, transient_rate=0.5)),
            CONFIGS,
        )
        b = decisions(
            FaultyObjective(base_objective, FaultPlan(seed=1, transient_rate=0.5)),
            CONFIGS,
        )
        assert a != b

    def test_decision_keyed_on_config_not_call_order(self):
        plan = FaultPlan(seed=5, numeric_rate=0.5)
        obj = FaultyObjective(base_objective, plan)
        forward = decisions(obj, CONFIGS)
        backward = decisions(
            FaultyObjective(base_objective, plan), list(reversed(CONFIGS))
        )
        assert forward == list(reversed(backward))


class TestTransientBurst:
    def test_burst_then_success(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, transient_burst=2)
        obj = FaultyObjective(base_objective, plan)
        cfg = {"x": 0.5}
        for _ in range(2):
            with pytest.raises(TransientFault):
                obj(cfg)
        assert obj(cfg) == 1.5  # third attempt succeeds
        assert obj.injected["transient"] == 2

    def test_bursts_counted_per_config(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, transient_burst=1)
        obj = FaultyObjective(base_objective, plan)
        with pytest.raises(TransientFault):
            obj({"x": 0.1})
        with pytest.raises(TransientFault):
            obj({"x": 0.2})  # separate config: its own burst
        assert obj({"x": 0.1}) == 1.1
        assert obj({"x": 0.2}) == 1.2


class TestNoise:
    def test_noise_deterministic_per_config(self):
        plan = FaultPlan(seed=2, noise_scale=0.1)
        obj = FaultyObjective(base_objective, plan)
        v1 = obj({"x": 0.5})
        v2 = obj({"x": 0.5})
        assert v1 == v2  # repeated evaluation agrees
        assert v1 != 1.5 and v1 == pytest.approx(1.5, rel=0.6)

    def test_noise_preserves_meta_tuple(self):
        plan = FaultPlan(seed=2, noise_scale=0.1)
        obj = FaultyObjective(lambda cfg: (2.0, {"tag": 1}), plan)
        value, meta = obj({"x": 0.0})
        assert meta == {"tag": 1}
        assert value == pytest.approx(2.0, rel=0.6)
