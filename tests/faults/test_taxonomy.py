"""Failure taxonomy: classifier behavior, JSONL persistence, and the
retry short-circuit on permanently-classified exceptions."""

import pytest

from repro.bo import EvaluationDatabase
from repro.bo.history import Evaluation, EvaluationStatus
from repro.faults import (
    FAILURE_KIND_KEY,
    RETRYABLE_KINDS,
    EvaluationTimeoutError,
    FailureKind,
    NumericFault,
    PermanentFault,
    TransientFault,
    WorkerLostError,
    classify_exception,
    failure_kind_of,
)
from repro.search import MemoizingObjective, RetryingObjective


class TestClassifier:
    def test_self_classifying_fault_errors(self):
        assert classify_exception(TransientFault()) is FailureKind.TRANSIENT
        assert classify_exception(PermanentFault()) is FailureKind.PERMANENT
        assert classify_exception(NumericFault()) is FailureKind.NUMERIC
        assert classify_exception(EvaluationTimeoutError()) is FailureKind.TIMEOUT
        assert classify_exception(WorkerLostError()) is FailureKind.WORKER_LOST

    def test_failure_kind_attribute_wins(self):
        exc = ValueError("would be permanent")
        exc.failure_kind = FailureKind.TRANSIENT
        assert classify_exception(exc) is FailureKind.TRANSIENT
        exc.failure_kind = "numeric"  # string form also accepted
        assert classify_exception(exc) is FailureKind.NUMERIC

    def test_stdlib_families(self):
        assert classify_exception(TimeoutError()) is FailureKind.TIMEOUT
        assert classify_exception(BrokenPipeError()) is FailureKind.WORKER_LOST
        assert classify_exception(ZeroDivisionError()) is FailureKind.NUMERIC
        assert classify_exception(OverflowError()) is FailureKind.NUMERIC
        assert classify_exception(ValueError()) is FailureKind.PERMANENT
        assert classify_exception(KeyError()) is FailureKind.PERMANENT
        assert classify_exception(MemoryError()) is FailureKind.PERMANENT
        assert classify_exception(ConnectionError()) is FailureKind.TRANSIENT
        assert classify_exception(OSError()) is FailureKind.TRANSIENT

    def test_unknown_defaults_to_transient(self):
        # Generic RuntimeErrors keep the historical retry-friendly default.
        assert classify_exception(RuntimeError("transient")) is FailureKind.TRANSIENT

    def test_retryable_kinds(self):
        assert FailureKind.TRANSIENT in RETRYABLE_KINDS
        assert FailureKind.WORKER_LOST in RETRYABLE_KINDS
        assert FailureKind.PERMANENT not in RETRYABLE_KINDS
        assert FailureKind.TIMEOUT not in RETRYABLE_KINDS
        assert FailureKind.NUMERIC not in RETRYABLE_KINDS


class TestPersistence:
    def test_failure_kind_roundtrips_through_jsonl(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(
            Evaluation(
                config={"x": 1.0},
                objective=float("nan"),
                status=EvaluationStatus.FAILED,
                meta={FAILURE_KIND_KEY: FailureKind.PERMANENT.value},
            )
        )
        db.append(Evaluation(config={"x": 2.0}, objective=3.0))
        reloaded = EvaluationDatabase(path)
        assert failure_kind_of(reloaded[0]) is FailureKind.PERMANENT
        assert failure_kind_of(reloaded[1]) is None

    def test_failure_kind_of_accepts_meta_mapping(self):
        assert failure_kind_of({FAILURE_KIND_KEY: "timeout"}) is FailureKind.TIMEOUT
        assert failure_kind_of({FAILURE_KIND_KEY: "garbage"}) is None
        assert failure_kind_of({}) is None
        assert failure_kind_of(None) is None


class AlwaysRaise:
    def __init__(self, exc):
        self.exc = exc
        self.calls = 0

    def __call__(self, cfg):
        self.calls += 1
        raise self.exc


class TestRetryShortCircuit:
    def test_permanent_reraised_immediately(self):
        inner = AlwaysRaise(PermanentFault("bad config"))
        obj = RetryingObjective(inner, max_retries=5, backoff=0.0)
        with pytest.raises(PermanentFault):
            obj({"x": 1.0})
        assert inner.calls == 1  # no retries burnt
        assert obj.retries == 0
        assert obj.short_circuits == 1

    def test_timeout_and_numeric_not_retried(self):
        for exc in (EvaluationTimeoutError(), NumericFault(), ValueError("x")):
            inner = AlwaysRaise(exc)
            obj = RetryingObjective(inner, max_retries=3, backoff=0.0)
            with pytest.raises(type(exc)):
                obj({"x": 1.0})
            assert inner.calls == 1

    def test_transient_still_retried(self):
        inner = AlwaysRaise(TransientFault())
        obj = RetryingObjective(inner, max_retries=2, backoff=0.0)
        with pytest.raises(TransientFault):
            obj({"x": 1.0})
        assert inner.calls == 3  # initial + 2 retries

    def test_classifier_none_restores_legacy_retry_everything(self):
        inner = AlwaysRaise(ValueError("x"))
        obj = RetryingObjective(
            inner, max_retries=2, backoff=0.0, classifier=None
        )
        with pytest.raises(ValueError):
            obj({"x": 1.0})
        assert inner.calls == 3


class TestMemoizedPoisonKeys:
    def _failed(self, config, kind):
        return Evaluation(
            config=config,
            objective=float("nan"),
            status=EvaluationStatus.FAILED,
            meta={FAILURE_KIND_KEY: kind.value, "error": "boom"},
        )

    def test_permanent_failure_becomes_poison_key(self):
        db = EvaluationDatabase()
        db.append(self._failed({"x": 1.0}, FailureKind.PERMANENT))
        inner = AlwaysRaise(PermanentFault())
        memo = MemoizingObjective(inner)
        memo.seed_from_database(db)
        with pytest.raises(PermanentFault):
            memo({"x": 1.0})
        assert inner.calls == 0  # never re-paid
        assert memo.permanent_hits == 1

    def test_transient_failure_is_retried_after_resume(self):
        db = EvaluationDatabase()
        db.append(self._failed({"x": 1.0}, FailureKind.TRANSIENT))

        memo = MemoizingObjective(lambda cfg: cfg["x"] * 2)
        memo.seed_from_database(db)
        value, _ = memo({"x": 1.0})
        assert value == 2.0  # transient records do not poison
