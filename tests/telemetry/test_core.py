"""Tests for the tracer / Telemetry facade."""

import numpy as np
import pytest

from repro.telemetry import (
    NULL_TRACER,
    MemorySink,
    MetricsRegistry,
    NullClock,
    Telemetry,
    TickClock,
    config_hash,
)


def make(clock=None):
    sink = MemorySink()
    tel = Telemetry([sink], clock=clock if clock is not None else NullClock())
    return tel, sink


class TestSpans:
    def test_nesting_and_parent_links(self):
        tel, sink = make()
        tr = tel.tracer("campaign")
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = sink.events  # inner closes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["seq"] == 0 and outer["seq"] == 1

    def test_span_attrs_updatable_until_close(self):
        tel, sink = make()
        with tel.tracer().span("work", fixed=1) as sp:
            sp.attrs["late"] = 2
        assert sink.events[0]["attrs"] == {"fixed": 1, "late": 2}

    def test_error_flag_on_exception(self):
        tel, sink = make()
        with pytest.raises(RuntimeError):
            with tel.tracer().span("risky"):
                raise RuntimeError
        assert sink.events[0]["error"] is True

    def test_timestamps_from_injected_clock(self):
        tel, sink = make(clock=TickClock(step=1.0))
        with tel.tracer().span("t"):
            pass
        ev = sink.events[0]
        assert ev["t1"] > ev["t0"]

    def test_null_clock_pins_time(self):
        tel, sink = make(clock=NullClock())
        with tel.tracer().span("t"):
            pass
        assert sink.events[0]["t0"] == 0.0 and sink.events[0]["t1"] == 0.0

    def test_scopes_are_independent(self):
        tel, sink = make()
        with tel.tracer("a").span("x"):
            pass
        with tel.tracer("b").span("y"):
            pass
        a, b = sink.events
        # Each scope numbers its own spans and sequence from zero.
        assert a["id"] == b["id"] == 0
        assert a["seq"] == b["seq"] == 0

    def test_two_tracers_same_scope_share_state(self):
        tel, sink = make()
        with tel.tracer("s").span("outer"):
            with tel.tracer("s").span("inner"):
                pass
        inner, outer = sink.events
        assert inner["parent"] == outer["id"]


class TestEvents:
    def test_eval_event_keyed_by_index(self):
        tel, sink = make()
        tel.tracer("m").eval_event(
            7, objective=1.5, cost=0.1, status="ok", best=1.5,
            cfg_hash=42, cache_hit=True,
        )
        ev = sink.events[0]
        assert ev["kind"] == "eval" and ev["seq"] == 7
        assert ev["config_hash"] == 42
        assert ev["attrs"] == {"cache_hit": True}
        assert "failure_kind" not in ev

    def test_metrics_event_embeds_snapshot(self):
        tel, sink = make()
        reg = MetricsRegistry()
        reg.counter("n").inc()
        tel.tracer().metrics_event(reg)
        ev = sink.events[0]
        assert ev["kind"] == "metrics"
        assert ev["counters"] == {"n": 1.0}


class TestForwarding:
    def test_member_buffer_forwarded_in_order(self):
        tel, sink = make()
        child, buffer = tel.member(live=False)
        child.tracer("m").event("one")
        child.tracer("m").event("two")
        assert sink.events == []  # buffered, not yet in parent sinks
        tel.forward(buffer.events)
        assert [e["name"] for e in sink.events] == ["one", "two"]

    def test_member_shares_clock_not_metrics(self):
        tel, _ = make(clock=TickClock())
        child, _ = tel.member()
        assert child.clock is tel.clock
        assert child.metrics is not tel.metrics

    def test_live_flag_controls_progress_feed(self):
        class Spy:
            def __init__(self):
                self.n = 0

            def emit(self, event):
                self.n += 1

        spy = Spy()
        tel = Telemetry([MemorySink()], clock=NullClock(), progress=spy)
        tel.emit({"kind": "event"}, live=False)
        assert spy.n == 0
        tel.emit({"kind": "event"})
        assert spy.n == 1
        # Sequential members feed progress live; their buffer is then
        # forwarded live=False so each event reaches progress exactly once.
        child, buffer = tel.member(live=True)
        child.tracer("m").event("e")
        assert spy.n == 2
        tel.forward(buffer.events, live=False)
        assert spy.n == 2
        # Pool members do the opposite.
        child2, buffer2 = tel.member(live=False)
        child2.tracer("m").event("e")
        assert spy.n == 2
        tel.forward(buffer2.events, live=True)
        assert spy.n == 3


class TestConfigHash:
    def test_insensitive_to_key_order_and_numpy(self):
        assert config_hash({"a": 1, "b": 2.5}) == config_hash(
            {"b": np.float64(2.5), "a": np.int64(1)}
        )

    def test_distinguishes_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestNullTracer:
    def test_span_attrs_are_discarded_fresh_dicts(self):
        with NULL_TRACER.span("x") as sp:
            sp.attrs["k"] = 1
        with NULL_TRACER.span("y") as sp2:
            assert sp2.attrs == {}

    def test_all_methods_noop(self):
        NULL_TRACER.event("e", a=1)
        NULL_TRACER.eval_event(0, objective=1.0, cost=0.0, status="ok", best=None)
        NULL_TRACER.metrics_event(MetricsRegistry())
