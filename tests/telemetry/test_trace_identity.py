"""Campaign-level telemetry guarantees.

* traces are byte-identical between sequential and ``parallel=True``
  campaigns (with a pinned clock),
* the persisted evaluation stream of a kill/resume cycle is
  byte-identical to an uninterrupted run,
* search results are bit-identical with telemetry off, on, and on under
  ``--parallel`` — telemetry is a pure observer,
* the trace progression reproduces ``database.best_so_far()`` exactly.
"""

import numpy as np
import pytest

from repro.bo import EvaluationDatabase
from repro.core import TuningMethodology
from repro.search import SearchCampaign, SearchSpec
from repro.space import Real, SearchSpace
from repro.synthetic import SyntheticFunction
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    NullClock,
    Telemetry,
    TraceReport,
    encode_event,
)

SEED = 0


def space(names, label):
    return SearchSpace([Real(n, 0.0, 1.0) for n in names], name=label)


class Quad:
    def __init__(self, center):
        self.center = center

    def __call__(self, cfg):
        return sum((v - self.center) ** 2 for v in cfg.values()) + 0.05


def specs(n=8):
    return [
        SearchSpec(space(["a", "b"], "S1"), Quad(0.3), max_evaluations=n),
        SearchSpec(space(["c"], "S2"), Quad(0.7), engine="random",
                   max_evaluations=n),
        SearchSpec(space(["d"], "S3"), Quad(0.5), engine="grid",
                   max_evaluations=n),
    ]


def fingerprint(campaign):
    return [
        (s.name, s.best_config, s.best_objective, s.n_evaluations)
        for s in campaign.searches
    ]


def traced_run(**campaign_kwargs):
    sink = MemorySink()
    tel = Telemetry([sink], clock=NullClock())
    result = SearchCampaign(
        specs(), random_state=SEED, telemetry=tel, **campaign_kwargs
    ).run()
    return result, sink


class TestSequentialParallelByteIdentity:
    def test_traces_byte_identical(self):
        seq_result, seq_sink = traced_run()
        par_result, par_sink = traced_run(parallel=True, n_workers=3)
        assert par_result.executed_parallel
        seq_lines = [encode_event(e) for e in seq_sink.events]
        par_lines = [encode_event(e) for e in par_sink.events]
        assert seq_lines == par_lines

    def test_metrics_aggregate_identically(self):
        seq_result, _ = traced_run()
        # Recreate to compare the registries, not the event streams.
        tel_seq = Telemetry([], clock=NullClock())
        SearchCampaign(specs(), random_state=SEED, telemetry=tel_seq).run()
        tel_par = Telemetry([], clock=NullClock())
        SearchCampaign(
            specs(), random_state=SEED, telemetry=tel_par,
            parallel=True, n_workers=3,
        ).run()
        assert tel_seq.metrics.snapshot() == tel_par.metrics.snapshot()
        evals = tel_seq.metrics.snapshot()["counters"]
        assert sum(
            v for k, v in evals.items() if k.startswith("evaluations")
        ) == sum(s.n_evaluations for s in seq_result.searches)


class TestPureObserver:
    def test_results_identical_off_on_parallel(self):
        bare = SearchCampaign(specs(), random_state=SEED).run()
        on, _ = traced_run()
        par, _ = traced_run(parallel=True, n_workers=3)
        assert fingerprint(on) == fingerprint(bare)
        assert fingerprint(par) == fingerprint(bare)
        for a, b in zip(bare.searches, on.searches):
            assert [r.objective for r in a.database] == [
                r.objective for r in b.database
            ]


class Killer:
    """Objective that dies mid-campaign (simulated crash)."""

    def __init__(self, center, die_after):
        self.center = center
        self.calls = 0
        self.die_after = die_after

    def __call__(self, cfg):
        self.calls += 1
        if self.calls > self.die_after:
            raise KeyboardInterrupt
        return Quad(self.center)(cfg)


class TestKillResumeTraceIdentity:
    def test_eval_channel_byte_identical_after_resume(self, tmp_path):
        sp = space(["a", "b"], "K")

        def run(objective, trace, checkpoint=None):
            tel = Telemetry([JsonlSink(trace)], clock=NullClock())
            try:
                return SearchCampaign(
                    [SearchSpec(sp, objective, max_evaluations=14)],
                    random_state=SEED, telemetry=tel,
                    checkpoint_dir=(
                        str(checkpoint) if checkpoint is not None else None
                    ),
                ).run()
            finally:
                tel.close()

        clean_trace = tmp_path / "clean.trace.jsonl"
        run(Quad(0.4), clean_trace)

        ck = tmp_path / "ck"
        crash_trace = tmp_path / "crash.trace.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run(Killer(0.4, die_after=9), crash_trace, checkpoint=ck)
        db = EvaluationDatabase(ck / "K-0.jsonl")
        assert 0 < len(db) < 14

        # Resume with the same (partially written) trace file: replayed
        # records re-emit their eval events, the sink dedups them, and
        # the persisted eval stream converges to the uninterrupted one.
        run(Quad(0.4), crash_trace, checkpoint=ck)

        def eval_lines(path):
            return [
                encode_event(e)
                for e in TraceReport.from_file(path).eval_events()
            ]

        assert eval_lines(crash_trace) == eval_lines(clean_trace)


class TestProgressionMatchesDatabase:
    def test_trace_progression_equals_best_so_far(self):
        result, sink = traced_run()
        report = TraceReport(sink.events)
        scopes = report.scopes()
        assert len(scopes) == len(result.searches)
        for scope, search in zip(scopes, result.searches):
            expected = search.database.best_so_far()
            got = report.progression(scope)
            assert got == pytest.approx(list(expected), abs=0)
            assert sum(
                report.evaluation_counts(scope).values()
            ) == len(search.database)


class TestMethodologySpans:
    def test_full_pipeline_span_taxonomy(self):
        sink = MemorySink()
        tel = Telemetry([sink], clock=NullClock())
        f = SyntheticFunction(3, random_state=SEED)
        TuningMethodology(
            f.search_space(), f.routines(), cutoff=0.25, n_variations=10,
            random_state=SEED, engine="random", telemetry=tel,
        ).run()
        names = {e["name"] for e in sink.events if e["kind"] == "span"}
        assert {"campaign", "sensitivity", "dag_partition", "search"} <= names
        campaign_spans = [
            e for e in sink.events
            if e["kind"] == "span" and e["name"] == "campaign"
        ]
        assert len(campaign_spans) == 1
        assert campaign_spans[0]["scope"] == "campaign"
        # Every member search emitted eval events under its own scope.
        scopes = TraceReport(sink.events).scopes()
        assert scopes and all("/" in s for s in scopes)
