"""Tests for the JSONL trace sink: encoding, rotation, resume dedup."""

import json

import numpy as np
import pytest

from repro.telemetry import JsonlSink, encode_event, load_trace


class TestEncodeEvent:
    def test_sorted_keys_compact(self):
        assert encode_event({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_nan_and_inf_become_null(self):
        line = encode_event({"x": float("nan"), "y": float("inf"), "z": 1.0})
        assert json.loads(line) == {"x": None, "y": None, "z": 1.0}

    def test_numpy_coerced(self):
        line = encode_event(
            {"i": np.int64(3), "f": np.float64(0.5), "a": np.array([1, 2])}
        )
        assert json.loads(line) == {"a": [1, 2], "f": 0.5, "i": 3}

    def test_nested_structures(self):
        line = encode_event({"attrs": {"v": float("nan"), "t": (1, 2)}})
        assert json.loads(line) == {"attrs": {"t": [1, 2], "v": None}}


class TestJsonlSink:
    def test_writes_header_then_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "event", "scope": "s", "seq": 0})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert json.loads(lines[1])["kind"] == "event"

    def test_resume_skips_persisted_eval_seqs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ev = {"kind": "eval", "scope": "m", "seq": 0, "objective": 1.0}
        with JsonlSink(path) as sink:
            sink.emit(ev)
            sink.emit({**ev, "seq": 1})
        # Re-open (resume): replayed evals 0-1 are deduplicated, new
        # ones and non-eval events still append; no second header.
        with JsonlSink(path) as sink:
            sink.emit(ev)
            sink.emit({**ev, "seq": 1})
            sink.emit({**ev, "seq": 2})
            sink.emit({"kind": "span", "scope": "m", "seq": 9, "name": "x"})
        events = load_trace(path)
        assert [e["seq"] for e in events if e["kind"] == "eval"] == [0, 1, 2]
        assert sum(1 for line in path.read_text().splitlines()
                   if json.loads(line)["kind"] == "header") == 1

    def test_dedup_is_per_scope(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "eval", "scope": "a", "seq": 0})
        with JsonlSink(path) as sink:
            sink.emit({"kind": "eval", "scope": "b", "seq": 0})
        events = load_trace(path)
        assert {(e["scope"], e["seq"]) for e in events} == {("a", 0), ("b", 0)}

    def test_rotation_keeps_all_events_readable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, max_bytes=200, max_files=20) as sink:
            for i in range(50):
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        assert (tmp_path / "t.jsonl.1").exists()
        events = load_trace(path)
        assert [e["seq"] for e in events] == list(range(50))

    def test_rotation_drops_oldest_beyond_max_files(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, max_bytes=120, max_files=2) as sink:
            for i in range(60):
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        assert (path.parent / "t.jsonl.2").exists()
        assert not (path.parent / "t.jsonl.3").exists()
        events = load_trace(path)
        # Oldest events were dropped but the retained tail is contiguous.
        seqs = [e["seq"] for e in events]
        assert seqs == list(range(seqs[0], 60))

    def test_dedup_survives_rotation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, max_bytes=150, max_files=20) as sink:
            for i in range(20):
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        with JsonlSink(path, max_bytes=150, max_files=20) as sink:
            for i in range(22):  # 0-19 replayed, 20-21 new
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        events = load_trace(path)
        assert [e["seq"] for e in events] == list(range(22))

    def test_invalid_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "t.jsonl", max_bytes=0)


class TestLoadTrace:
    def test_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "event", "scope": "s", "seq": 0, "name": "a"})
        with open(path, "a") as f:
            f.write('{"kind": "event", "scope": "s", "se')  # crash mid-append
        events = load_trace(path)
        assert len(events) == 1 and events[0]["name"] == "a"

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"kind": "header", "format": "not-ours"}\n')
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)


class TestFsyncPolicy:
    def test_policies_exported_and_validated(self):
        from repro.telemetry.sinks import FSYNC_POLICIES

        assert FSYNC_POLICIES == ("always", "rotate", "close")
        with pytest.raises(ValueError, match="fsync"):
            JsonlSink("/tmp/never-created.jsonl", fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "rotate", "close"])
    def test_all_policies_produce_identical_traces(self, tmp_path, policy):
        path = tmp_path / f"{policy}.jsonl"
        with JsonlSink(path, fsync=policy) as sink:
            for i in range(5):
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        events = load_trace(path)
        assert [e["seq"] for e in events] == list(range(5))

    def test_always_policy_durable_per_line_without_close(self, tmp_path):
        # With fsync="always" every line is on disk the moment emit
        # returns — readable by another process even if this one is
        # SIGKILLed before close().
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, fsync="always")
        sink.emit({"kind": "eval", "scope": "m", "seq": 0})
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + the eval, no buffering
        sink.close()

    def test_rotation_respects_policy(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path, max_bytes=120, max_files=4, fsync="rotate") as sink:
            for i in range(20):
                sink.emit({"kind": "eval", "scope": "m", "seq": i})
        assert (tmp_path / "t.jsonl.1").exists()
        assert [e["seq"] for e in load_trace(path)][-1] == 19


class TestIdempotentClose:
    def test_double_close_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.emit({"kind": "event", "scope": "s", "seq": 0, "name": "a"})
        sink.close()
        sink.close()  # must not raise on the already-released handle
        assert len(load_trace(tmp_path / "t.jsonl")) == 1

    def test_close_after_external_handle_close(self, tmp_path):
        # A failed rotation can leave the handle closed but not None;
        # close() must tolerate that half-state instead of raising
        # ValueError on flushing a closed file.
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink._file.close()
        sink.close()
        assert sink._file is None
