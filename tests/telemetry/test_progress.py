"""Tests for the live progress reporter and its EWMA ETA."""

import io

import pytest

from repro.telemetry import EWMA, ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def search_start(scope, budget, strategy="stage-0"):
    return {
        "kind": "event", "scope": scope, "seq": 0, "name": "search_start",
        "attrs": {"budget": budget, "strategy": strategy},
    }


def eval_event(scope, seq, best=None):
    return {"kind": "eval", "scope": scope, "seq": seq, "best": best}


def search_close(scope):
    return {"kind": "span", "scope": scope, "seq": 99, "name": "search"}


class TestEWMA:
    def test_first_update_sets_value(self):
        e = EWMA(alpha=0.5)
        assert e.value is None
        assert e.update(4.0) == 4.0

    def test_smoothing(self):
        e = EWMA(alpha=0.5)
        e.update(4.0)
        assert e.update(2.0) == pytest.approx(3.0)
        assert e.update(3.0) == pytest.approx(3.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)


class TestEta:
    def make(self, interval=0.0):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(
            stream, interval=interval, clock=clock, ewma_alpha=1.0
        )
        return rep, clock, stream

    def test_eta_tracks_observed_rate(self):
        rep, clock, _ = self.make()
        rep.emit(search_start("m", budget=10))
        assert rep.eta_seconds() is None  # no rate estimate yet
        rep.emit(eval_event("m", 0, best=5.0))
        clock.t = 2.0
        rep.emit(eval_event("m", 1, best=4.0))
        # alpha=1: rate = last gap = 2s/eval; 8 evals remain.
        assert rep.eta_seconds() == pytest.approx(16.0)

    def test_eta_adapts_to_cost_drift(self):
        clock = FakeClock()
        rep = ProgressReporter(
            io.StringIO(), interval=0.0, clock=clock, ewma_alpha=0.5
        )
        rep.emit(search_start("m", budget=100))
        for gap in (1.0, 1.0, 3.0):
            clock.t += gap
            rep.emit(eval_event("m", int(clock.t)))
        # EWMA leans toward the recent 3s gap: 0.5*3 + 0.5*1 = 2.
        assert rep._rate.value == pytest.approx(2.0)

    def test_finished_searches_excluded_from_eta(self):
        rep, clock, _ = self.make()
        rep.emit(search_start("a", budget=10))
        rep.emit(search_start("b", budget=10))
        rep.emit(eval_event("a", 0))
        clock.t = 1.0
        rep.emit(eval_event("a", 1))
        rep.emit(search_close("a"))
        # Only b's full budget remains (a is finished despite 8 unseen).
        assert rep.eta_seconds() == pytest.approx(10.0)


class TestRendering:
    def test_render_line_contents(self):
        rep = ProgressReporter(io.StringIO(), interval=0.0, clock=FakeClock())
        rep.emit(search_start("m1", budget=50))
        rep.emit(search_start("m2", budget=50))
        rep.emit(eval_event("m1", 24, best=0.1234))
        rep.emit(search_close("m1"))
        line = rep.render_line()
        assert "[stage-0]" in line
        assert "1/2 searches" in line
        assert "evals 25/100 (25%)" in line
        assert "best 0.1234" in line

    def test_throttle_limits_renders(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(stream, interval=10.0, clock=clock)
        rep.emit(search_start("m", budget=100))
        for i in range(50):
            clock.t += 0.01
            rep.emit(eval_event("m", i))
        # One render at t=0; everything after is inside the interval.
        assert stream.getvalue().count("\n") == 1

    def test_close_forces_final_render(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(stream, interval=10.0, clock=clock)
        rep.emit(search_start("m", budget=10))
        for i in range(10):
            rep.emit(eval_event("m", i))
        rep.emit(search_close("m"))
        rep.close()
        last = stream.getvalue().splitlines()[-1]
        assert "1/1 searches" in last
        assert "evals 10/10 (100%)" in last

    def test_non_tty_writes_newlines(self):
        stream = io.StringIO()  # not a TTY
        rep = ProgressReporter(stream, interval=0.0, clock=FakeClock())
        rep.emit(search_start("m", budget=10))
        assert "\r" not in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            ProgressReporter(io.StringIO(), interval=-1.0)
