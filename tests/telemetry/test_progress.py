"""Tests for the live progress reporter and its EWMA ETA."""

import io

import pytest

from repro.telemetry import EWMA, ProgressReporter


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def search_start(scope, budget, strategy="stage-0"):
    return {
        "kind": "event", "scope": scope, "seq": 0, "name": "search_start",
        "attrs": {"budget": budget, "strategy": strategy},
    }


def eval_event(scope, seq, best=None):
    return {"kind": "eval", "scope": scope, "seq": seq, "best": best}


def search_close(scope):
    return {"kind": "span", "scope": scope, "seq": 99, "name": "search"}


class TestEWMA:
    def test_first_update_sets_value(self):
        e = EWMA(alpha=0.5)
        assert e.value is None
        assert e.update(4.0) == 4.0

    def test_smoothing(self):
        e = EWMA(alpha=0.5)
        e.update(4.0)
        assert e.update(2.0) == pytest.approx(3.0)
        assert e.update(3.0) == pytest.approx(3.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)


class TestEta:
    def make(self, interval=0.0):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(
            stream, interval=interval, clock=clock, ewma_alpha=1.0
        )
        return rep, clock, stream

    def test_eta_tracks_observed_rate(self):
        rep, clock, _ = self.make()
        rep.emit(search_start("m", budget=10))
        assert rep.eta_seconds() is None  # no rate estimate yet
        rep.emit(eval_event("m", 0, best=5.0))
        clock.t = 2.0
        rep.emit(eval_event("m", 1, best=4.0))
        # alpha=1: rate = last gap = 2s/eval; 8 evals remain.
        assert rep.eta_seconds() == pytest.approx(16.0)

    def test_eta_adapts_to_cost_drift(self):
        clock = FakeClock()
        rep = ProgressReporter(
            io.StringIO(), interval=0.0, clock=clock, ewma_alpha=0.5
        )
        rep.emit(search_start("m", budget=100))
        for gap in (1.0, 1.0, 3.0):
            clock.t += gap
            rep.emit(eval_event("m", int(clock.t)))
        # EWMA leans toward the recent 3s gap: 0.5*3 + 0.5*1 = 2.
        assert rep._rate.value == pytest.approx(2.0)

    def test_finished_searches_excluded_from_eta(self):
        rep, clock, _ = self.make()
        rep.emit(search_start("a", budget=10))
        rep.emit(search_start("b", budget=10))
        rep.emit(eval_event("a", 0))
        clock.t = 1.0
        rep.emit(eval_event("a", 1))
        rep.emit(search_close("a"))
        # Only b's full budget remains (a is finished despite 8 unseen).
        assert rep.eta_seconds() == pytest.approx(10.0)


class TestRendering:
    def test_render_line_contents(self):
        rep = ProgressReporter(io.StringIO(), interval=0.0, clock=FakeClock())
        rep.emit(search_start("m1", budget=50))
        rep.emit(search_start("m2", budget=50))
        rep.emit(eval_event("m1", 24, best=0.1234))
        rep.emit(search_close("m1"))
        line = rep.render_line()
        assert "[stage-0]" in line
        assert "1/2 searches" in line
        assert "evals 25/100 (25%)" in line
        assert "best 0.1234" in line

    def test_throttle_limits_renders(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(stream, interval=10.0, clock=clock)
        rep.emit(search_start("m", budget=100))
        for i in range(50):
            clock.t += 0.01
            rep.emit(eval_event("m", i))
        # One render at t=0; everything after is inside the interval.
        assert stream.getvalue().count("\n") == 1

    def test_close_forces_final_render(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(stream, interval=10.0, clock=clock)
        rep.emit(search_start("m", budget=10))
        for i in range(10):
            rep.emit(eval_event("m", i))
        rep.emit(search_close("m"))
        rep.close()
        last = stream.getvalue().splitlines()[-1]
        assert "1/1 searches" in last
        assert "evals 10/10 (100%)" in last

    def test_non_tty_writes_newlines(self):
        stream = io.StringIO()  # not a TTY
        rep = ProgressReporter(stream, interval=0.0, clock=FakeClock())
        rep.emit(search_start("m", budget=10))
        assert "\r" not in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            ProgressReporter(io.StringIO(), interval=-1.0)


class TestEtaEdgeCases:
    """Regression tests for division guards and resume resets."""

    def make(self, **kw):
        clock = FakeClock()
        rep = ProgressReporter(
            io.StringIO(), interval=0.0, clock=clock, ewma_alpha=1.0, **kw
        )
        return rep, clock

    def test_throughput_none_before_first_gap(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        assert rep.throughput() is None
        rep.emit(eval_event("m", 0))
        # One eval = zero measured gaps: still no throughput, no crash.
        assert rep.throughput() is None

    def test_throughput_none_on_zero_gap(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        rep.emit(eval_event("m", 0))
        rep.emit(eval_event("m", 1))  # same clock tick: gap == 0
        assert rep._rate.value == 0.0
        assert rep.throughput() is None  # never divides by zero

    def test_throughput_inverse_of_gap(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        rep.emit(eval_event("m", 0))
        clock.t = 0.5
        rep.emit(eval_event("m", 1))
        assert rep.throughput() == pytest.approx(2.0)

    def test_startup_latency_not_counted_as_gap(self):
        rep, clock = self.make()
        clock.t = 100.0  # search starts late
        rep.emit(search_start("m", budget=10))
        clock.t = 200.0  # 100s engine warm-up before the first eval
        rep.emit(eval_event("m", 0))
        # The 100s to the first eval is startup, not an inter-eval gap.
        assert rep._rate.value is None
        clock.t = 201.0
        rep.emit(eval_event("m", 1))
        assert rep._rate.value == pytest.approx(1.0)

    def test_resume_resets_rate_estimate(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        rep.emit(eval_event("m", 0))
        clock.t = 5.0
        rep.emit(eval_event("m", 1))
        assert rep._rate.value == pytest.approx(5.0)
        # Kill/restart: a second search_start on a scope with progress.
        clock.t = 1000.0  # outage gap must not poison the estimate
        rep.emit(search_start("m", budget=10))
        assert rep._rate.value is None
        clock.t = 1001.0
        rep.emit(eval_event("m", 2))
        assert rep._rate.value is None  # first post-resume eval: no gap yet
        clock.t = 1003.0
        rep.emit(eval_event("m", 3))
        assert rep._rate.value == pytest.approx(2.0)

    def test_replayed_evals_do_not_drive_rate_to_zero(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        for i in range(4):
            clock.t += 1.0
            rep.emit(eval_event("m", i))
        rep.emit(search_start("m", budget=10))  # resume
        # Replay burst: duplicate seqs arrive back-to-back at one tick.
        clock.t += 0.001
        for i in range(4):
            rep.emit(eval_event("m", i))
        assert rep._rate.value is None  # ignored: nothing advanced
        assert rep._state("m").done == 4  # and progress did not regress

    def test_snapshot_shape(self):
        rep, clock = self.make()
        rep.emit(search_start("m", budget=10))
        rep.emit(eval_event("m", 0, best=3.0))
        clock.t = 1.0
        rep.emit(eval_event("m", 1, best=2.0))
        snap = rep.snapshot()
        assert snap["done"] == 2
        assert snap["budget"] == 10
        assert snap["best"] == 2.0
        assert snap["searches_total"] == 1
        assert snap["searches_done"] == 0
        assert snap["throughput"] == pytest.approx(1.0)
        assert snap["eta_seconds"] == pytest.approx(8.0)
        assert snap["stage"] == "stage-0"

    def test_snapshot_empty(self):
        rep, _ = self.make()
        snap = rep.snapshot()
        assert snap["done"] == 0
        assert snap["budget"] is None
        assert snap["best"] is None
        assert snap["eta_seconds"] is None
        assert snap["throughput"] is None

    def test_headless_mode_never_writes(self):
        clock = FakeClock()
        stream = io.StringIO()
        rep = ProgressReporter(
            stream, interval=0.0, clock=clock, render=False
        )
        rep.emit(search_start("m", budget=10))
        for i in range(10):
            clock.t += 1.0
            rep.emit(eval_event("m", i, best=1.0))
        rep.emit(search_close("m"))
        rep.close()
        assert stream.getvalue() == ""
        # ... while the model still tracks everything.
        assert rep.snapshot()["done"] == 10
        assert rep.snapshot()["searches_done"] == 1
