"""Tests for the metrics registry: counters, gauges, histograms."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        assert g.value is None
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogramBucketing:
    def test_boundary_is_inclusive_upper_bound(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # exactly on a bound -> that bucket
        h.observe(0.5)   # below first bound -> first bucket
        h.observe(3.0)   # between bounds -> next bucket up
        assert h.counts == [2, 0, 1]
        assert h.overflow == 0

    def test_overflow_bin(self):
        h = Histogram(buckets=(1.0,))
        h.observe(100.0)
        assert h.counts == [0]
        assert h.overflow == 1
        assert h.count == 1
        assert h.mean == pytest.approx(100.0)

    def test_mean_and_total(self):
        h = Histogram(buckets=(10.0,))
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.total == pytest.approx(6.0)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("evals", engine="bo").inc()
        reg.counter("evals", engine="bo").inc()
        reg.counter("evals", engine="random").inc()
        snap = reg.snapshot()
        assert snap["counters"]["evals{engine=bo}"] == 2.0
        assert snap["counters"]["evals{engine=random}"] == 1.0

    def test_snapshot_sorted_and_deterministic(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        # Insertion in different orders must serialize identically.
        a.counter("z").inc()
        a.counter("a", x="1").inc()
        b.counter("a", x="1").inc()
        b.counter("z").inc()
        assert a.snapshot() == b.snapshot()
        assert list(a.snapshot()["counters"]) == ["a{x=1}", "z"]

    def test_merge_in_process(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.gauge("best", search="S").set(0.5)
        b.histogram("cost", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["n"] == 5.0
        assert snap["gauges"]["best{search=S}"] == 0.5
        assert snap["histograms"]["cost"]["counts"] == [0, 1]

    def test_merge_snapshot_roundtrip(self):
        worker = MetricsRegistry()
        worker.counter("faults", kind="transient").inc(4)
        worker.gauge("best", search="G1").set(0.25)
        worker.histogram("cost", buckets=(0.5, 1.0)).observe(0.7)
        parent = MetricsRegistry()
        parent.counter("faults", kind="transient").inc(1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["faults{kind=transient}"] == 5.0
        assert snap["gauges"]["best{search=G1}"] == 0.25
        assert snap["histograms"]["cost"]["count"] == 1

    def test_merge_mismatched_buckets_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_equals_merge_snapshot(self):
        """Pool workers (snapshot dicts) and in-process children (live
        registries) must aggregate identically."""
        def member():
            r = MetricsRegistry()
            r.counter("evals", engine="bo").inc(7)
            r.histogram("cost").observe(0.02)
            r.gauge("best", search="S").set(1.25)
            return r

        via_merge, via_snap = MetricsRegistry(), MetricsRegistry()
        via_merge.merge(member())
        via_snap.merge_snapshot(member().snapshot())
        assert via_merge.snapshot() == via_snap.snapshot()
