"""Tests for the live-tailing primitives (tailer, bus, latency sink).

The rotation-race tests are the satellite-4 coverage: a JsonlTailer
following a JsonlSink that rotates mid-stream must yield every complete
line exactly once — no drops, no duplicates — and account for torn
final lines instead of parsing garbage.
"""

import json
import os
import threading

import pytest

from repro.telemetry import (
    EventBus,
    JsonlSink,
    JsonlTailer,
    MetricsRegistry,
    SpanLatencySink,
)


def write_lines(path, events, *, torn_suffix=None):
    with open(path, "a") as f:
        for ev in events:
            f.write(json.dumps(ev) + "\n")
        if torn_suffix is not None:
            f.write(torn_suffix)  # no newline: a torn tail


class TestJsonlTailer:
    def test_replays_existing_file_once(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"i": i} for i in range(5)])
        tailer = JsonlTailer(path)
        assert [e["i"] for e in tailer.poll()] == list(range(5))
        assert tailer.poll() == []

    def test_missing_file_then_created(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tailer = JsonlTailer(path)
        assert tailer.poll() == []
        write_lines(path, [{"i": 0}])
        assert [e["i"] for e in tailer.poll()] == [0]

    def test_skips_header_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"kind": "header"}, {"event": "header"}, {"i": 1}])
        assert [e for e in JsonlTailer(path).poll()] == [{"i": 1}]

    def test_keeps_header_when_asked(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"kind": "header"}, {"i": 1}])
        tailer = JsonlTailer(path, skip_header=False)
        assert len(tailer.poll()) == 2

    def test_torn_live_tail_held_until_completed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"i": 0}], torn_suffix='{"i": 1')
        tailer = JsonlTailer(path)
        assert [e["i"] for e in tailer.poll()] == [0]
        assert tailer.torn_lines == 0  # live tail may still complete
        with open(path, "a") as f:
            f.write('}\n')  # writer finishes the line
        assert [e["i"] for e in tailer.poll()] == [1]

    def test_incremental_polls_no_dup(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tailer = JsonlTailer(path)
        seen = []
        for batch in range(10):
            write_lines(path, [{"i": batch * 3 + k} for k in range(3)])
            seen += [e["i"] for e in tailer.poll()]
        assert seen == list(range(30))

    # -- rotation races (satellite 4) -----------------------------------
    def test_follow_across_sink_rotation(self, tmp_path):
        """A tailer racing a rotating JsonlSink misses nothing."""
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=256, max_files=8)
        tailer = JsonlTailer(path)
        seen = []
        for i in range(100):
            sink.emit({"kind": "eval", "scope": "m", "seq": i, "best": 1.0})
            if i % 7 == 0:  # poll mid-stream, often straddling a rotation
                seen += [e["seq"] for e in tailer.poll()]
        sink.close()
        seen += [e["seq"] for e in tailer.poll()]
        assert seen == list(range(100))
        assert os.path.exists(f"{path}.1")  # rotation actually happened
        assert tailer.torn_lines == 0
        assert tailer.lost_segments == 0

    def test_rotation_between_polls(self, tmp_path):
        """Rotation while the tailer sleeps: old segments finished first
        (retention is wide enough that nothing is unlinked)."""
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=128, max_files=64)
        tailer = JsonlTailer(path)
        for i in range(3):
            sink.emit({"kind": "eval", "scope": "m", "seq": i})
        first = [e["seq"] for e in tailer.poll()]
        # Force several rotations before the next poll.
        for i in range(3, 40):
            sink.emit({"kind": "eval", "scope": "m", "seq": i})
        sink.close()
        rest = [e["seq"] for e in tailer.poll()]
        assert first + rest == list(range(40))
        assert tailer.lost_segments == 0

    def test_retention_loss_flagged_not_silent(self, tmp_path):
        """When rotation outruns retention between polls, the unlinked
        lines are unrecoverable — but the tailer says so."""
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=128, max_files=2)
        tailer = JsonlTailer(path)
        sink.emit({"kind": "eval", "scope": "m", "seq": 0})
        assert [e["seq"] for e in tailer.poll()] == [0]
        for i in range(1, 40):  # far past max_files=2 retention
            sink.emit({"kind": "eval", "scope": "m", "seq": i})
        sink.close()
        rest = [e["seq"] for e in tailer.poll()]
        assert tailer.lost_segments == 1  # the hole is flagged
        assert rest == list(range(rest[0], 40))  # suffix intact, in order
        assert rest[-1] == 39

    def test_concurrent_writer_and_tailer_threads(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, max_bytes=512, max_files=128)
        tailer = JsonlTailer(path)
        seen, stop = [], threading.Event()

        def consume():
            while not stop.is_set():
                seen.extend(e["seq"] for e in tailer.poll())
            seen.extend(e["seq"] for e in tailer.poll())

        t = threading.Thread(target=consume)
        t.start()
        for i in range(500):
            sink.emit({"kind": "eval", "scope": "m", "seq": i})
        sink.close()
        stop.set()
        t.join()
        assert seen == list(range(500))  # exactly once, in order

    def test_torn_final_line_in_rotated_segment_counted(self, tmp_path):
        """A rotated-away segment ending mid-line can never be completed:
        the fragment is dropped, counted, and the stream continues."""
        path = tmp_path / "t.jsonl"
        write_lines(f"{path}.1", [{"i": 0}], torn_suffix='{"i": 1, "x"')
        write_lines(path, [{"i": 2}])
        tailer = JsonlTailer(path)
        assert [e["i"] for e in tailer.poll()] == [0, 2]
        assert tailer.torn_lines == 1

    def test_torn_line_discovered_after_rotation(self, tmp_path):
        """The live torn tail is held; if the file then rotates away the
        held fragment is accounted as torn, not silently skipped."""
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"i": 0}], torn_suffix='{"i": 1')
        tailer = JsonlTailer(path)
        assert [e["i"] for e in tailer.poll()] == [0]
        os.replace(path, f"{path}.1")  # crash + external rotation
        write_lines(path, [{"i": 2}])
        assert [e["i"] for e in tailer.poll()] == [2]
        assert tailer.torn_lines == 1

    def test_lost_segment_detected_on_replacement(self, tmp_path):
        """Wholesale replacement (WAL compaction) resumes at the new file
        and flags the discontinuity."""
        path = tmp_path / "t.jsonl"
        write_lines(path, [{"i": 0}])
        tailer = JsonlTailer(path)
        tailer.poll()
        os.unlink(path)
        write_lines(path, [{"i": 10}])
        assert [e["i"] for e in tailer.poll()] == [10]
        assert tailer.lost_segments == 1

    def test_garbage_interior_line_counted_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as f:
            f.write('{"i": 0}\nnot json at all\n{"i": 1}\n')
        tailer = JsonlTailer(path)
        assert [e["i"] for e in tailer.poll()] == [0, 1]
        assert tailer.torn_lines == 1


class TestJsonlSinkTornTailRepair:
    def test_reopen_after_torn_tail_does_not_glue(self, tmp_path):
        """Appending after a crash's torn tail must not weld the next
        event onto the fragment (corrupting a recoverable trace)."""
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"kind": "eval", "scope": "m", "seq": 0})
        sink.close()
        with open(path, "a") as f:
            f.write('{"kind": "eval", "scope": "m", "seq": 1')  # torn
        sink = JsonlSink(path)
        sink.emit({"kind": "eval", "scope": "m", "seq": 1})
        sink.close()
        events = [json.loads(l) for l in open(path)]
        assert [e.get("seq") for e in events if e.get("kind") == "eval"] == [0, 1]


class TestEventBus:
    def test_cursors_monotonic_from_one(self):
        bus = EventBus()
        assert bus.cursor == 0
        assert bus.publish({"a": 1}) == 1
        assert bus.publish({"a": 2}) == 2
        assert bus.cursor == 2

    def test_subscribe_replays_then_lives(self):
        bus = EventBus()
        for i in range(5):
            bus.publish({"i": i})
        sub = bus.subscribe(after=2)
        bus.publish({"i": 5})
        got = [sub.get(timeout=0) for _ in range(4)]
        assert [(c, e["i"]) for c, e in got] == [(3, 2), (4, 3), (5, 4), (6, 5)]
        assert sub.get(timeout=0) is None

    def test_no_gap_no_dup_under_concurrent_publish(self):
        bus = EventBus()
        stop = threading.Event()
        published = []

        def produce():
            i = 0
            while not stop.is_set():
                published.append(bus.publish({"i": i}))
                i += 1

        t = threading.Thread(target=produce)
        t.start()
        subs = [bus.subscribe(after=0) for _ in range(4)]
        stop.set()
        t.join()
        total = bus.cursor
        for sub in subs:
            cursors = []
            while True:
                item = sub.get(timeout=0)
                if item is None:
                    break
                cursors.append(item[0])
            # Contiguous suffix ending at the final cursor: no gap, no dup.
            assert cursors == list(range(cursors[0], total + 1))
            sub.close()

    def test_predicate_filters(self):
        bus = EventBus()
        sub = bus.subscribe(predicate=lambda e: e.get("job") == "a")
        bus.publish({"job": "a", "i": 1})
        bus.publish({"job": "b", "i": 2})
        bus.publish({"job": "a", "i": 3})
        assert [e["i"] for _, e in iter(lambda: sub.get(timeout=0), None)] == [1, 3]

    def test_history_bound(self):
        bus = EventBus(history=3)
        for i in range(10):
            bus.publish({"i": i})
        sub = bus.subscribe(after=0)
        got = [item for item in iter(lambda: sub.get(timeout=0), None)]
        assert [c for c, _ in got] == [8, 9, 10]  # only the retained window

    def test_close_wakes_blocked_get(self):
        bus = EventBus()
        sub = bus.subscribe()
        result = []

        def consume():
            result.append(sub.get(timeout=5.0))

        t = threading.Thread(target=consume)
        t.start()
        bus.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert result == [None]
        assert sub.closed

    def test_publish_after_close_raises(self):
        bus = EventBus()
        bus.close()
        with pytest.raises(RuntimeError):
            bus.publish({})

    def test_subscriber_count_tracks_close(self):
        bus = EventBus()
        sub = bus.subscribe()
        assert bus.subscriber_count == 1
        sub.close()
        assert bus.subscriber_count == 0


class TestSpanLatencySink:
    def span(self, name, t0, t1):
        return {"kind": "span", "scope": "m", "name": name, "t0": t0, "t1": t1}

    def test_named_spans_feed_histograms(self):
        reg = MetricsRegistry()
        sink = SpanLatencySink(reg)
        sink.emit(self.span("gp_fit", 0.0, 0.25))
        sink.emit(self.span("acquisition", 1.0, 1.5))
        sink.emit(self.span("irrelevant", 0.0, 9.0))
        snap = reg.snapshot()["histograms"]
        assert "span_seconds{span=gp_fit}" in snap
        assert "span_seconds{span=acquisition}" in snap
        assert not any("irrelevant" in k for k in snap)
        assert snap["span_seconds{span=gp_fit}"]["total"] == pytest.approx(0.25)

    def test_non_span_events_ignored(self):
        reg = MetricsRegistry()
        sink = SpanLatencySink(reg)
        sink.emit({"kind": "eval", "scope": "m", "seq": 0})
        sink.emit({"kind": "span", "name": "gp_fit"})  # no timestamps
        assert reg.snapshot()["histograms"] == {}

    def test_negative_duration_clamped(self):
        reg = MetricsRegistry()
        SpanLatencySink(reg).emit(self.span("gp_fit", 5.0, 4.0))
        hist = reg.snapshot()["histograms"]["span_seconds{span=gp_fit}"]
        assert hist["total"] == 0.0
        assert hist["count"] == 1
