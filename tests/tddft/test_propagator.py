"""Tests for the split-operator real-time propagator."""

import math

import numpy as np
import pytest

from repro.tddft import NumericSlaterApp, SplitOperatorPropagator


@pytest.fixture(scope="module")
def app():
    return NumericSlaterApp((16, 16, 16), nbands=4, random_state=0)


class TestUnitarity:
    def test_norm_conserved_to_machine_precision(self, app):
        prop = SplitOperatorPropagator(app, dt=0.05)
        res = prop.propagate(25, config=2)
        assert np.ptp(res.norms) < 1e-10 * res.norms[0]

    def test_energy_conserved_for_static_hamiltonian(self, app):
        prop = SplitOperatorPropagator(app, dt=0.02)
        res = prop.propagate(25, config=4)
        drift = np.ptp(res.energies) / abs(res.energies[0])
        assert drift < 1e-4

    def test_energy_error_scales_with_dt(self, app):
        """Trotter error is O(dt^2): quartering dt cuts the wobble."""
        coarse = SplitOperatorPropagator(app, dt=0.08).propagate(8, config=4)
        fine = SplitOperatorPropagator(app, dt=0.02).propagate(32, config=4)
        err_coarse = np.ptp(coarse.energies) / abs(coarse.energies[0])
        err_fine = np.ptp(fine.energies) / abs(fine.energies[0])
        assert err_fine < err_coarse


class TestDynamics:
    def test_kick_starts_dipole_oscillation(self, app):
        quiet = SplitOperatorPropagator(app, dt=0.05, kick=0.0).propagate(10, config=4)
        kicked = SplitOperatorPropagator(app, dt=0.05, kick=0.5).propagate(10, config=4)
        assert np.ptp(kicked.dipole) > 5 * max(np.ptp(quiet.dipole), 1e-12)

    def test_kick_preserves_norm(self, app):
        prop = SplitOperatorPropagator(app, dt=0.05, kick=0.7)
        boxes = prop.initial_state()
        norm, _, _ = prop.observables(boxes)
        assert norm == pytest.approx(app.nbands, rel=1e-10)

    def test_free_particle_phase_exact(self):
        """With V = 0 the propagator is exact: a single plane wave picks
        up exactly exp(-i k^2/2 t)."""
        app = NumericSlaterApp((8, 8, 8), nbands=1, random_state=0)
        app.set_constant_potential(0.0)
        # Put all weight on one G-vector of the sphere.
        app.coefficients[:] = 0.0
        app.coefficients[0, 1] = 1.0
        prop = SplitOperatorPropagator(app, dt=0.1)
        res = prop.propagate(5, config=1)
        # Norm exactly 1, energy exactly the kinetic eigenvalue.
        assert np.allclose(res.norms, 1.0)
        assert np.ptp(res.energies) < 1e-12


class TestBatching:
    def test_batch_size_does_not_change_physics(self, app):
        r1 = SplitOperatorPropagator(app, dt=0.05, kick=0.3).propagate(6, config=1)
        r4 = SplitOperatorPropagator(app, dt=0.05, kick=0.3).propagate(6, config=4)
        assert np.allclose(r1.coefficients, r4.coefficients)
        assert np.allclose(r1.dipole, r4.dipole)

    def test_config_dict_accepted(self, app):
        res = SplitOperatorPropagator(app, dt=0.05).propagate(
            3, config={"nbatches": 2}
        )
        assert res.n_steps == 3

    def test_timings_recorded(self, app):
        res = SplitOperatorPropagator(app, dt=0.05).propagate(3, config=2)
        assert {"fft_backward", "fft_forward", "kinetic", "potential_half"} <= set(
            res.timings.entries
        )


class TestValidation:
    def test_bad_dt(self, app):
        with pytest.raises(ValueError):
            SplitOperatorPropagator(app, dt=0.0)

    def test_bad_steps(self, app):
        with pytest.raises(ValueError):
            SplitOperatorPropagator(app, dt=0.1).propagate(0)
