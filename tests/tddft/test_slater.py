"""Tests for the Slater pipeline and its stream-overlap simulation."""

import pytest

from repro.tddft import GROUP_KERNELS, SlaterPipeline, a100, case_study


@pytest.fixture
def pipe():
    return SlaterPipeline(case_study(1), a100())


def config(**over):
    cfg = {}
    for k in ("dscal", "pair", "zcopy", "vec", "zvec"):
        cfg[f"u_{k}"] = 2
        cfg[f"tb_{k}"] = 256
        cfg[f"tb_sm_{k}"] = 4
    cfg["nstreams"] = 1
    cfg["nbatches"] = 4
    cfg.update(over)
    return cfg


class TestGroupTimes:
    def test_groups_positive_and_ordered(self, pipe):
        cfg = config()
        g1 = pipe.group_time("Group 1", 4, cfg)
        g2 = pipe.group_time("Group 2", 4, cfg)
        g3 = pipe.group_time("Group 3", 4, cfg)
        assert g1 > 0 and g2 > 0 and g3 > 0
        # Groups 1 and 3 carry the FFTs; the pairwise product is small.
        assert g2 < g1 and g2 < g3
        # Group 3 (padded transpose + two dscal passes) outweighs Group 1:
        # the "region with highest impact" for the shared cuZcopy kernel.
        assert g3 > g1

    def test_batch_scales_group_time(self, pipe):
        cfg = config()
        t4 = pipe.group_time("Group 1", 4, cfg)
        t16 = pipe.group_time("Group 1", 16, cfg)
        assert 3.0 < t16 / t4 < 4.5

    def test_pair_params_move_group3_only_via_cache(self, pipe):
        base = config(tb_pair=32, tb_sm_pair=1)
        big = config(tb_pair=1024, tb_sm_pair=2)
        g3_base = pipe.group_time("Group 3", 4, base)
        g3_big = pipe.group_time("Group 3", 4, big)
        assert g3_big > 1.1 * g3_base  # the designed G2 -> G3 coupling
        g1_base = pipe.group_time("Group 1", 4, base)
        g1_big = pipe.group_time("Group 1", 4, big)
        assert g1_big == pytest.approx(g1_base, rel=1e-9)  # G1 unaffected

    def test_unknown_group(self, pipe):
        with pytest.raises(KeyError):
            pipe.group_time("Group 9", 4, config())

    def test_bad_batch(self, pipe):
        with pytest.raises(ValueError):
            pipe.group_time("Group 1", 0, config())


class TestBreakdown:
    def test_profile_matches_paper_shape(self, pipe):
        """cuFFT dominates; cuZvec2Vec is smallest — Section V-A."""
        bd = pipe.kernel_breakdown(4, config())
        total = sum(bd.values())
        shares = {k: v / total for k, v in bd.items()}
        assert 0.5 < shares["cuFFT"] < 0.75
        assert shares["cuFFT"] > shares["cuZcopy"] > shares["cuZvec2Vec"]
        assert set(bd) == {
            "cuFFT", "cuZcopy", "cuVec2Zvec", "cuPairwise", "cuDscal", "cuZvec2Vec",
        }


class TestStreamedLoop:
    def test_streams_overlap_transfers(self, pipe):
        serial = pipe.slater_time(64, config(nstreams=1))
        overlapped = pipe.slater_time(64, config(nstreams=4))
        assert overlapped < 0.75 * serial

    def test_stream_benefit_saturates(self, pipe):
        t4 = pipe.slater_time(64, config(nstreams=4))
        t32 = pipe.slater_time(64, config(nstreams=32))
        # Three-stage pipeline: beyond a few streams only overhead grows.
        assert t32 > 0.9 * t4

    def test_single_invocation_cannot_overlap(self, pipe):
        cfg = config(nbatches=32, nstreams=8)
        one_inv = pipe.slater_time(32, cfg)  # 32 bands in one batch
        serial = pipe.slater_time(32, config(nbatches=32, nstreams=1))
        assert one_inv == pytest.approx(serial, rel=0.05)

    def test_batch_sweet_spot_exists(self, pipe):
        """Tiny batches pay overheads; huge batches lose overlap."""
        cfg = lambda b: config(nbatches=b, nstreams=4)  # noqa: E731
        t1 = pipe.slater_time(64, cfg(1))
        t8 = pipe.slater_time(64, cfg(8))
        t64 = pipe.slater_time(64, cfg(32))
        assert t8 < t1
        assert t8 < t64

    def test_effective_batch_caps_at_local_bands(self, pipe):
        assert pipe.effective_batch(4, 32) == 4
        assert pipe.effective_batch(64, 8) == 8
        with pytest.raises(ValueError):
            pipe.effective_batch(0, 8)

    def test_more_bands_more_time(self, pipe):
        cfg = config(nstreams=2)
        assert pipe.slater_time(64, cfg) > 1.8 * pipe.slater_time(32, cfg)

    def test_serial_reference(self, pipe):
        cfg = config(nstreams=16)
        assert pipe.serial_slater_time(64, cfg) >= pipe.slater_time(64, cfg) * 0.95

    def test_invalid_nstreams(self, pipe):
        with pytest.raises(ValueError):
            pipe.slater_time(64, config(nstreams=0))


class TestGroupKernelMap:
    def test_structure_matches_pseudocode(self):
        assert [k for k, _ in GROUP_KERNELS["Group 1"]] == ["vec", "zcopy"]
        assert [k for k, _ in GROUP_KERNELS["Group 2"]] == ["pair"]
        assert [k for k, _ in GROUP_KERNELS["Group 3"]] == [
            "dscal", "zcopy", "dscal", "zvec",
        ]

    def test_group3_zcopy_heavier_than_group1(self):
        g1 = dict(GROUP_KERNELS["Group 1"])["zcopy"]
        g3 = dict(GROUP_KERNELS["Group 3"])["zcopy"]
        assert g3 > g1  # forward transpose&padding moves more data
