"""Tests for the distributed 4-D wavefunction (paper Figure 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpisim import CartGrid
from repro.tddft import case_study
from repro.tddft.wavefunction import DistributedWavefunction, _block_bounds


def wf(nspb=1, nkpb=4, nstb=8, ngb=1, cs=2):
    return DistributedWavefunction(case_study(cs), CartGrid(nspb, nkpb, nstb, ngb))


class TestBlockBounds:
    def test_even_split(self):
        assert _block_bounds(8, 4, 0) == (0, 2)
        assert _block_bounds(8, 4, 3) == (6, 8)

    def test_ragged_split(self):
        # 10 over 4: blocks of 3, 3, 2, 2.
        bounds = [_block_bounds(10, 4, i) for i in range(4)]
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_parts_than_extent(self):
        bounds = [_block_bounds(2, 4, i) for i in range(4)]
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [1, 1, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            _block_bounds(8, 0, 0)
        with pytest.raises(ValueError):
            _block_bounds(8, 4, 4)


class TestDistribution:
    def test_balanced_grid_is_exact_partition(self):
        w = wf()
        assert w.is_complete_partition()
        assert w.imbalance() == pytest.approx(1.0)

    def test_ragged_grid_still_partitions(self):
        w = wf(nkpb=5)  # 36 k-points over 5
        assert w.is_complete_partition()
        assert w.imbalance() > 1.0

    def test_local_shapes(self):
        w = wf()
        block = w.local_block(0)
        assert block.shape == (1, 9, 8, case_study(2).fft_size)

    def test_owner_consistency_everywhere(self):
        w = wf(nkpb=5, nstb=7)  # doubly ragged
        for rank, block in w.iter_blocks():
            if block.n_elements == 0:
                continue
            for kp in (block.kpoint.start, block.kpoint.stop - 1):
                for b in (block.band.start, block.band.stop - 1):
                    assert w.owner_of(0, kp, b, 0) == rank

    def test_memory_accounting(self):
        w = wf()
        total = sum(block.nbytes for _, block in w.iter_blocks())
        assert total == w.global_nbytes
        assert w.max_local_nbytes() == w.global_nbytes // w.grid.size

    def test_gpu_grid_band_distribution(self):
        """The GPU port's ngb=1 layout: bands split, G-vectors whole."""
        w = wf(nstb=16, nkpb=1)
        block = w.local_block(3)
        assert block.gvector == slice(0, case_study(2).fft_size)
        assert block.band.stop - block.band.start == 4

    def test_allocate_local(self):
        w = wf(nstb=64, nkpb=36)
        arr = w.allocate_local(0, fill=1 + 2j)
        assert arr.shape == w.local_block(0).shape
        assert arr.dtype == complex
        assert np.all(arr == 1 + 2j)

    def test_out_of_range_coordinate(self):
        with pytest.raises(ValueError):
            wf().owner_of(0, 99, 0)


@given(
    st.integers(1, 3), st.integers(1, 6), st.integers(1, 9), st.integers(1, 4)
)
@settings(max_examples=40, deadline=None)
def test_partition_property(nspb, nkpb, nstb, ngb):
    """Any grid (balanced or not) partitions the wavefunction exactly."""
    w = DistributedWavefunction(case_study(2), CartGrid(nspb, nkpb, nstb, ngb))
    assert w.is_complete_partition()
