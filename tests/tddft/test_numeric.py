"""Tests for the numeric Slater mini-app (real FFT physics)."""

import numpy as np
import pytest

from repro.tddft import NumericSlaterApp


@pytest.fixture(scope="module")
def app():
    return NumericSlaterApp((16, 16, 16), nbands=8, random_state=0)


class TestPhysics:
    def test_density_integrates_to_band_count(self, app):
        """Parseval: normalized orbitals -> sum of density = nbands."""
        r = app.run(4)
        assert r.density.sum() == pytest.approx(app.nbands, rel=1e-10)
        assert np.all(r.density >= 0)

    def test_constant_potential_energy_exact(self):
        app = NumericSlaterApp((12, 12, 12), nbands=5, random_state=1)
        app.set_constant_potential(2.5)
        r = app.run(5)
        assert r.energy == pytest.approx(2.5 * 5, rel=1e-10)

    def test_energy_matches_direct_integral(self, app):
        """<psi|V|psi> computed through the pipeline equals the direct
        real-space integral of V times the density."""
        r = app.run(8)
        direct = float(np.sum(app.potential * r.density))
        assert r.energy == pytest.approx(direct, rel=1e-10)

    def test_constant_potential_hpsi_is_scaled_psi(self):
        """V = c => V|psi> = c|psi> exactly (FFT round-trip identity)."""
        app = NumericSlaterApp((12, 12, 12), nbands=4, random_state=2)
        app.set_constant_potential(3.0)
        r = app.run(2)
        assert np.allclose(r.hpsi_g, 3.0 * app.coefficients)

    def test_batch_size_does_not_change_results(self):
        app = NumericSlaterApp((16, 16, 16), nbands=8, random_state=3)
        r1 = app.run(1)
        r8 = app.run(8)
        assert np.allclose(r1.hpsi_g, r8.hpsi_g)
        assert r1.energy == pytest.approx(r8.energy, rel=1e-12)
        assert np.allclose(r1.density, r8.density)


class TestInterface:
    def test_config_dict_accepted(self, app):
        r = app.run({"nbatches": 4})
        assert r.wall_time > 0

    def test_objective_returns_wall_time(self, app):
        assert app.objective({"nbatches": 2}) > 0

    def test_batch_capped_at_nbands(self, app):
        r = app.run(10_000)
        assert r.density.sum() == pytest.approx(app.nbands, rel=1e-10)

    def test_timings_cover_pipeline(self, app):
        r = app.run(4)
        regions = set(r.timings.entries)
        assert {"vec2zvec", "fft_backward", "pairwise", "fft_forward",
                "zvec2vec"} <= regions
        assert r.timings.grand_total > 0

    def test_gsphere_is_compact(self, app):
        assert 0 < app.n_gvectors < app.npoints * 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericSlaterApp((1, 16, 16))
        with pytest.raises(ValueError):
            NumericSlaterApp((8, 8, 8), nbands=0)
        app = NumericSlaterApp((8, 8, 8), nbands=2)
        with pytest.raises(ValueError):
            app.run(0)
