"""Tests for the RT-TDDFT application facade (spaces, observables,
routines, and the paper's structural couplings)."""

import numpy as np
import pytest

from repro.mpisim import perlmutter_gpu
from repro.tddft import KERNEL_KEYS, RTTDDFTApplication, case_study


@pytest.fixture(scope="module")
def app():
    return RTTDDFTApplication(case_study(1), noise_scale=0.0, random_state=0)


@pytest.fixture(scope="module")
def app2():
    return RTTDDFTApplication(case_study(2), noise_scale=0.0, random_state=0)


class TestSearchSpace:
    def test_twenty_parameters(self, app):
        sp = app.search_space()
        assert sp.dimension == 20
        expected = {"nstb", "nkpb", "nspb", "nstreams", "nbatches"}
        for k in KERNEL_KEYS:
            expected |= {f"u_{k}", f"tb_{k}", f"tb_sm_{k}"}
        assert set(sp.names) == expected

    def test_gpu_cardinalities_match_table_iv(self, app):
        """Per kernel: 4 x 32 x 32 configurations; streams/batches 32 x 32."""
        sp = app.search_space()
        for k in KERNEL_KEYS:
            assert sp[f"u_{k}"].cardinality == 4
            assert sp[f"tb_{k}"].cardinality == 32
            assert sp[f"tb_sm_{k}"].cardinality == 32
        assert sp["nstreams"].cardinality == 32
        assert sp["nbatches"].cardinality == 32

    def test_expert_constraints_pin_degenerate_dims(self, app):
        sp = app.search_space()
        # Case study 1: single spin and k-point.
        assert sp["nspb"].cardinality == 1
        assert sp["nkpb"].cardinality == 1
        # nstb restricted to divisors of 64 within 40 ranks.
        assert sp["nstb"].values == [1, 2, 4, 8, 16, 32]

    def test_case2_grid_divisors(self, app2):
        sp = app2.search_space()
        assert sp["nkpb"].values == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_no_expert_constraints_widens(self):
        app = RTTDDFTApplication(
            case_study(1), expert_constraints=False, noise_scale=0.0, random_state=0
        )
        sp = app.search_space()
        assert sp["nstb"].cardinality == 40  # capped by allocation

    def test_samples_respect_occupancy_and_allocation(self, app2):
        sp = app2.search_space()
        rng = np.random.default_rng(0)
        for cfg in sp.sample_batch(50, rng):
            for k in KERNEL_KEYS:
                assert cfg[f"tb_{k}"] * cfg[f"tb_sm_{k}"] <= 2048
            assert cfg["nstb"] * cfg["nkpb"] * cfg["nspb"] <= 40

    def test_defaults_valid(self, app):
        sp = app.search_space()
        assert sp.is_valid(app.defaults())


class TestObservables:
    def test_total_decomposes(self, app):
        d = app.defaults()
        total = app.total_runtime(d)
        slater = app.slater_runtime(d)
        assert total > slater > 0

    def test_group_runtimes_positive(self, app):
        d = app.defaults()
        for g in ("Group 1", "Group 2", "Group 3"):
            assert app.group_runtime(g, d) > 0

    def test_noise_reproducible_at_zero(self, app):
        d = app.defaults()
        assert app.total_runtime(d) == app.total_runtime(d)

    def test_noise_scale_perturbs(self):
        noisy = RTTDDFTApplication(case_study(1), noise_scale=0.05, random_state=1)
        d = noisy.defaults()
        vals = {noisy.total_runtime(d) for _ in range(5)}
        assert len(vals) == 5


class TestStructuralCouplings:
    """The couplings Tables V/VI report, verified deterministically."""

    def test_nstb_drives_slater(self, app):
        d = app.defaults()
        fast = dict(d, nstb=32)
        slow = dict(d, nstb=1)
        assert app.slater_runtime(slow) > 10 * app.slater_runtime(fast)

    def test_nbatches_drives_group_invocations(self, app):
        d = app.defaults()
        small = dict(d, nbatches=1)
        large = dict(d, nbatches=32)
        for g in ("Group 1", "Group 2", "Group 3"):
            assert app.group_runtime(g, large) > 10 * app.group_runtime(g, small)

    def test_pair_params_move_group3_not_group1(self, app):
        d = app.defaults()
        clean = dict(d, tb_pair=32, tb_sm_pair=1)
        dirty = dict(d, tb_pair=1024, tb_sm_pair=2)
        g3 = app.group_runtime("Group 3", dirty) / app.group_runtime("Group 3", clean)
        g1 = app.group_runtime("Group 1", dirty) / app.group_runtime("Group 1", clean)
        assert g3 > 1.15
        assert g1 == pytest.approx(1.0, rel=1e-9)

    def test_mpi_params_do_not_move_group_invocations(self, app2):
        d = app2.defaults()
        a = dict(d, nkpb=1)
        b = dict(d, nkpb=36)
        assert app2.group_runtime("Group 1", a) == pytest.approx(
            app2.group_runtime("Group 1", b), rel=1e-9
        )

    def test_kpoints_multiply_runtime_case2(self, app2):
        d = app2.defaults()
        serial_k = dict(d, nkpb=1)
        parallel_k = dict(d, nkpb=36)
        assert app2.slater_runtime(serial_k) > 20 * app2.slater_runtime(parallel_k)

    def test_profile_shape(self, app):
        prof = app.gpu_profile()
        assert sum(prof.values()) == pytest.approx(1.0)
        assert prof["cuFFT"] > 0.5
        assert prof["cuZvec2Vec"] < 0.1


class TestRoutines:
    def test_routine_set_shape(self, app):
        rs = app.routines()
        assert rs.names == [
            "MPI Grid", "Slater Determinant", "Group 1", "Group 2", "Group 3",
        ]
        assert rs.shared_parameters() == {
            "u_zcopy": ["Group 1", "Group 3"],
            "tb_zcopy": ["Group 1", "Group 3"],
            "tb_sm_zcopy": ["Group 1", "Group 3"],
        }

    def test_group3_outweighs_group1(self, app):
        """Rule-5 input: zcopy's high-impact region is Group 3."""
        rs = app.routines()
        assert rs["Group 3"].weight > rs["Group 2"].weight

    def test_hierarchy(self, app):
        h = app.hierarchy()
        assert h["MPI Grid"] == ["Slater Determinant"]
        assert set(h["Slater Determinant"]) == {"Group 1", "Group 2", "Group 3"}

    def test_local_work(self, app2):
        cfg = dict(app2.defaults(), nkpb=4, nstb=8)
        assert app2.local_work(cfg) == (1, 9, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RTTDDFTApplication(case_study(1), noise_scale=-0.1)
