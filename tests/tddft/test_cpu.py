"""Tests for the CPU MPI-path model (the pre-offload baseline)."""

import pytest

from repro.mpisim import ClusterSpec
from repro.tddft import CpuRTTDDFT, case_study


@pytest.fixture(scope="module")
def cpu():
    cluster = ClusterSpec(name="cpu", nodes=10, ranks_per_node=64)
    return CpuRTTDDFT(case_study(1), cluster)


class TestProfile:
    def test_ngb_one_has_negligible_communication(self, cpu):
        """The GPU port's structural identity: a single-rank FFT group
        turns the distributed transpose into a local repack."""
        prof = cpu.slater_profile({"nspb": 1, "nkpb": 1, "nstb": 8, "ngb": 1})
        assert prof.communication_fraction < 0.05

    def test_communication_grows_with_ngb(self, cpu):
        fracs = [
            cpu.slater_profile(
                {"nspb": 1, "nkpb": 1, "nstb": 8, "ngb": g}
            ).communication_fraction
            for g in (1, 4, 16, 64)
        ]
        assert all(a < b for a, b in zip(fracs, fracs[1:]))

    def test_ngb_speeds_up_compute(self, cpu):
        """More FFT ranks shrink per-rank compute even as comm grows."""
        t1 = cpu.slater_profile({"nspb": 1, "nkpb": 1, "nstb": 8, "ngb": 1})
        t16 = cpu.slater_profile({"nspb": 1, "nkpb": 1, "nstb": 8, "ngb": 16})
        assert t16.compute < t1.compute
        assert t16.total < t1.total

    def test_grid_must_fit_allocation(self, cpu):
        with pytest.raises(ValueError):
            cpu.slater_profile({"nspb": 1, "nkpb": 1, "nstb": 64, "ngb": 64})


class TestBestGrid:
    def test_best_grid_feasible_and_balanced(self, cpu):
        best = cpu.best_balanced_grid()
        assert (
            best["nspb"] * best["nkpb"] * best["nstb"] * best["ngb"]
            <= cpu.cluster.total_ranks
        )
        assert cpu.system.nbands % best["nstb"] == 0

    def test_best_grid_uses_fft_parallelism(self, cpu):
        """On the CPU path the optimizer chooses ngb > 1 — the
        communication is worth the compute split, which is precisely the
        trade-off the GPU version re-balances."""
        assert cpu.best_balanced_grid()["ngb"] > 1

    def test_best_grid_beats_serial_fft(self, cpu):
        best = cpu.best_balanced_grid()
        serial = dict(best, ngb=1)
        assert cpu.total_runtime(best) < cpu.total_runtime(serial)
