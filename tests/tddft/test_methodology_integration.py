"""Integration: the staged methodology end-to-end on the TDDFT app.

Uses the random-search engine with small budgets so the test stays fast;
what matters here is the *plumbing*: stage ordering, pin-carrying between
stages, and the final combined configuration.
"""

import numpy as np
import pytest

from repro.core import TuningMethodology
from repro.tddft import RTTDDFTApplication, case_study


@pytest.fixture(scope="module")
def result_and_app():
    app = RTTDDFTApplication(case_study(1), random_state=3)
    tm = TuningMethodology(
        app.search_space(),
        app.routines(),
        cutoff=0.10,
        n_variations=5,
        n_baselines=3,
        variation_mode="random",
        hierarchy=app.hierarchy(),
        engine="random",
        random_state=3,
    )
    return tm.run(), app


class TestStagedExecution:
    def test_all_planned_searches_ran(self, result_and_app):
        res, _ = result_and_app
        ran = {s.name for s in res.campaign.searches}
        planned = {s.name for s in res.plan.searches}
        assert ran == planned

    def test_later_stages_pin_earlier_optima(self, result_and_app):
        """Every configuration evaluated by a stage>=1 search must carry
        the tuned values found by the earlier stages."""
        res, _ = result_and_app
        by_name = {s.name: s for s in res.campaign.searches}
        stage_of = {s.name: s.stage for s in res.plan.searches}

        mpi_best = by_name["MPI Grid"].tuned_config
        slater = by_name["Slater Determinant"]
        for rec in slater.database:
            for k, v in mpi_best.items():
                assert rec.config[k] == v

        slater_best = slater.tuned_config
        for name, stage in stage_of.items():
            if stage < 2:
                continue
            for rec in by_name[name].database:
                for k, v in slater_best.items():
                    assert rec.config[k] == v
                for k, v in mpi_best.items():
                    assert rec.config[k] == v

    def test_combined_config_complete_and_valid(self, result_and_app):
        res, app = result_and_app
        best = res.best_config
        sp = app.search_space()
        assert set(best) >= set(sp.names)
        assert sp.is_valid({k: best[k] for k in sp.names})

    def test_tuning_beats_defaults(self, result_and_app):
        res, app = result_and_app
        app.noise_scale = 0.0
        assert app.total_runtime(res.best_config) < app.total_runtime(app.defaults())

    def test_staged_wall_time_sums_stages(self, result_and_app):
        res, _ = result_and_app
        assert res.staged_wall_time >= res.campaign.wall_time
