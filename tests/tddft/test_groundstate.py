"""Tests for the imaginary-time ground-state solver (the SCF analog)."""

import numpy as np
import pytest

from repro.tddft import ImaginaryTimeSolver, NumericSlaterApp


@pytest.fixture(scope="module")
def solution():
    app = NumericSlaterApp((12, 12, 12), nbands=3, random_state=0)
    solver = ImaginaryTimeSolver(app, dtau=0.25)
    return app, solver, solver.solve(max_iterations=600, tol=1e-11, config=3)


class TestConvergence:
    def test_energy_monotone_decreasing(self, solution):
        _, _, res = solution
        assert np.all(np.diff(res.energy_history) <= 1e-9)

    def test_band_energies_sorted(self, solution):
        _, _, res = solution
        assert np.all(np.diff(res.band_energies) >= -1e-12)

    def test_orthonormal_bands(self, solution):
        app, _, res = solution
        flat = res.coefficients  # on the G-sphere; padding carries ~0 weight
        gram = flat @ flat.conj().T
        # The sphere projection drops the small off-sphere weight the
        # potential scatters out (plane-wave truncation), so the Gram
        # matrix is orthonormal to ~1e-3, not machine precision.
        assert np.allclose(gram, np.eye(flat.shape[0]), atol=5e-3)

    def test_eigenvalue_residuals_small(self, solution):
        _, _, res = solution
        # Residual scale: ||H psi|| ~ |E| ~ O(1).  The low spectrum of
        # this potential is dense, so the subspace converges slowly; the
        # exact-case tests below pin down correctness, this one guards
        # against gross non-convergence.
        assert np.all(res.residuals < 0.3)

    def test_energy_below_random_start(self, solution):
        app, solver, res = solution
        boxes = app._scatter(app.coefficients)
        boxes = solver._orthonormalize(boxes)
        start = float(np.sum(solver.band_energies(boxes)))
        assert res.energy_history[-1] < start


class TestExactCases:
    def test_constant_potential_ground_state(self):
        """V = c: the ground state is the uniform G=0 mode, E = c."""
        app = NumericSlaterApp((10, 10, 10), nbands=1, random_state=1)
        app.set_constant_potential(2.0)
        res = ImaginaryTimeSolver(app, dtau=0.2).solve(
            max_iterations=500, tol=1e-12
        )
        assert res.band_energies[0] == pytest.approx(2.0, abs=1e-4)
        assert res.residuals[0] < 1e-3

    def test_free_particle_spectrum(self):
        """V = 0: band energies converge onto kinetic eigenvalues."""
        app = NumericSlaterApp((8, 8, 8), nbands=2, random_state=2)
        app.set_constant_potential(0.0)
        solver = ImaginaryTimeSolver(app, dtau=0.3)
        res = solver.solve(max_iterations=800, tol=1e-13)
        # Lowest kinetic eigenvalue is 0 (G=0); next is (2*pi/8)^2 / 2.
        assert res.band_energies[0] == pytest.approx(0.0, abs=1e-3)
        k1 = 0.5 * (2 * np.pi / 8) ** 2
        assert res.band_energies[1] == pytest.approx(k1, rel=0.05)


class TestInterface:
    def test_batching_does_not_change_result(self):
        a1 = NumericSlaterApp((10, 10, 10), nbands=4, random_state=3)
        a2 = NumericSlaterApp((10, 10, 10), nbands=4, random_state=3)
        r1 = ImaginaryTimeSolver(a1, dtau=0.2).solve(max_iterations=50, config=1)
        r4 = ImaginaryTimeSolver(a2, dtau=0.2).solve(max_iterations=50, config=4)
        assert np.allclose(r1.band_energies, r4.band_energies, atol=1e-10)

    def test_config_dict(self):
        app = NumericSlaterApp((8, 8, 8), nbands=2, random_state=0)
        res = ImaginaryTimeSolver(app, dtau=0.2).solve(
            max_iterations=5, config={"nbatches": 2}
        )
        assert res.iterations == 5

    def test_timings_include_orthonormalization(self):
        app = NumericSlaterApp((8, 8, 8), nbands=2, random_state=0)
        res = ImaginaryTimeSolver(app, dtau=0.2).solve(max_iterations=5)
        assert "orthonormalize" in res.timings.entries

    def test_validation(self):
        app = NumericSlaterApp((8, 8, 8), nbands=2, random_state=0)
        with pytest.raises(ValueError):
            ImaginaryTimeSolver(app, dtau=0.0)
        with pytest.raises(ValueError):
            ImaginaryTimeSolver(app, dtau=0.1).solve(max_iterations=0)
