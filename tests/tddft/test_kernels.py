"""Tests for the GPU kernel cost models."""

import pytest

from repro.tddft import (
    SLATER_KERNELS,
    KernelSpec,
    a100,
    fft3d_time,
    memcpy_time,
    pair_cache_pollution,
)


@pytest.fixture
def gpu():
    return a100()


N = 3_000_000  # Case Study 1 FFT size


class TestKernelRuntime:
    def test_scales_with_elements(self, gpu):
        k = SLATER_KERNELS["vec"]
        t1 = k.runtime(gpu, N, 4, 256, 8)
        t2 = k.runtime(gpu, 2 * N, 4, 256, 8)
        # Near-linear; wave quantization makes the doubling slightly
        # sublinear (the half-empty last wave amortizes).
        assert 1.6 * t1 < t2 < 2.1 * t1

    def test_occupancy_dominates(self, gpu):
        k = SLATER_KERNELS["zcopy"]
        slow = k.runtime(gpu, N, 2, 128, 1)   # 6% occupancy
        fast = k.runtime(gpu, N, 2, 128, 16)  # full occupancy
        assert slow > 2.5 * fast

    def test_optimal_unroll_is_best(self, gpu):
        k = SLATER_KERNELS["dscal"]  # u_opt = 8
        times = {u: k.runtime(gpu, N, u, 256, 8) for u in (1, 2, 4, 8)}
        assert min(times, key=times.get) == 8

    def test_optimal_tb_is_best_among_grid(self, gpu):
        # Hold occupancy fixed (tb * tb_sm = 1024) so the comparison
        # isolates the block-size efficiency peak at tb_opt = 256.
        k = SLATER_KERNELS["vec"]  # tb_opt = 256
        times = {
            tb: k.runtime(gpu, N, 4, tb, 1024 // tb)
            for tb in (128, 256, 512, 1024)
        }
        assert min(times, key=times.get) == 256

    def test_cache_pollution_slows_sensitive_kernels(self, gpu):
        zcopy = SLATER_KERNELS["zcopy"]
        clean = zcopy.runtime(gpu, N, 2, 128, 8, cache_pollution=0.0)
        dirty = zcopy.runtime(gpu, N, 2, 128, 8, cache_pollution=1.0)
        assert dirty > 2 * clean  # sensitivity 2.8

    def test_insensitive_kernels_ignore_pollution(self, gpu):
        pair = SLATER_KERNELS["pair"]
        assert pair.runtime(gpu, N, 2, 512, 4, cache_pollution=1.0) == pytest.approx(
            pair.runtime(gpu, N, 2, 512, 4, cache_pollution=0.0)
        )

    def test_invalid_inputs(self, gpu):
        k = SLATER_KERNELS["vec"]
        with pytest.raises(ValueError):
            k.runtime(gpu, 0, 4, 256, 8)
        with pytest.raises(ValueError):
            k.runtime(gpu, N, 4, 256, 8, cache_pollution=1.5)
        with pytest.raises(ValueError):
            k.runtime(gpu, N, 4, 128, 32)  # violates occupancy bound

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            KernelSpec("k", bytes_per_element=0.0, flops_per_element=1, u_opt=1, tb_opt=64)
        with pytest.raises(ValueError):
            KernelSpec("k", bytes_per_element=1.0, flops_per_element=1, u_opt=0, tb_opt=64)


class TestFFT:
    def test_batch_scales_superlinearly_amortized(self, gpu):
        """Per-band FFT cost falls with batching (plan reuse ramp)."""
        per_band_1 = fft3d_time(gpu, N, 1) / 1
        per_band_16 = fft3d_time(gpu, N, 16) / 16
        assert per_band_16 < per_band_1

    def test_nlogn_scaling(self, gpu):
        t_small = fft3d_time(gpu, 620_000, 8)  # Case Study 2 size
        t_large = fft3d_time(gpu, N, 8)
        assert t_large > 4 * t_small

    def test_validation(self, gpu):
        with pytest.raises(ValueError):
            fft3d_time(gpu, 1, 1)
        with pytest.raises(ValueError):
            fft3d_time(gpu, N, 0)


class TestMemcpy:
    def test_bandwidth_bound(self):
        t = memcpy_time(21e9)  # one second of PCIe traffic
        assert t == pytest.approx(1.0, rel=0.01)

    def test_zero_free(self):
        assert memcpy_time(0) == 0.0

    def test_latency_floor(self):
        assert memcpy_time(1) >= 10e-6


class TestCachePollution:
    def test_range(self, gpu):
        assert pair_cache_pollution(gpu, 32, 1) < 0.05
        assert pair_cache_pollution(gpu, 1024, 2) == 1.0  # clipped

    def test_monotone(self, gpu):
        p = [pair_cache_pollution(gpu, 256, sm) for sm in (1, 2, 4, 8)]
        assert all(a <= b for a, b in zip(p, p[1:]))

    def test_validation(self, gpu):
        with pytest.raises(ValueError):
            pair_cache_pollution(gpu, 0, 1)


class TestCalibration:
    def test_kernel_set_complete(self):
        assert set(SLATER_KERNELS) == {"vec", "zcopy", "pair", "dscal", "zvec"}

    def test_only_group3_kernels_cache_sensitive(self):
        assert SLATER_KERNELS["vec"].cache_sensitivity == 0.0
        assert SLATER_KERNELS["pair"].cache_sensitivity == 0.0
        for k in ("zcopy", "dscal", "zvec"):
            assert SLATER_KERNELS[k].cache_sensitivity > 0.0
