"""Tests for the physical-system descriptions (paper Section VII)."""

import pytest

from repro.tddft import (
    PhysicalSystem,
    boron_nitride_slab,
    case_study,
    magnesium_porphyrin,
)


class TestCaseStudies:
    def test_case_study_1(self):
        s = magnesium_porphyrin()
        assert (s.nspin, s.nkpoints, s.nbands) == (1, 1, 64)
        assert s.fft_size == 3_000_000
        assert s.band_bytes == 48_000_000  # double complex

    def test_case_study_2(self):
        s = boron_nitride_slab()
        assert (s.nspin, s.nkpoints, s.nbands) == (1, 36, 64)
        assert s.fft_size == 620_000

    def test_lookup(self):
        assert case_study(1).name == magnesium_porphyrin().name
        assert case_study(2).name == boron_nitride_slab().name
        with pytest.raises(ValueError):
            case_study(3)

    def test_transfer_bytes_smaller_than_box(self):
        s = case_study(1)
        assert 0 < s.transfer_bytes_per_band < s.band_bytes

    def test_wavefunction_bytes(self):
        s = case_study(2)
        assert s.wavefunction_bytes == 1 * 36 * 64 * s.band_bytes


class TestDivisors:
    def test_band_divisors(self):
        s = case_study(1)
        assert s.divisors(64) == [1, 2, 4, 8, 16, 32, 64]

    def test_kpoint_divisors(self):
        s = case_study(2)
        assert s.divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_unknown_extent_rejected(self):
        with pytest.raises(ValueError):
            case_study(1).divisors(100)

    def test_balanced_grids_respect_allocation(self):
        s = case_study(2)
        grids = s.balanced_grids(max_ranks=40)
        assert grids
        for nspb, nkpb, nstb in grids:
            assert nspb * nkpb * nstb <= 40
            assert 36 % nkpb == 0 and 64 % nstb == 0


class TestValidation:
    def test_extents_positive(self):
        with pytest.raises(ValueError):
            PhysicalSystem("x", 0, 1, 1, 100)

    def test_gvector_fraction_bounds(self):
        with pytest.raises(ValueError):
            PhysicalSystem("x", 1, 1, 1, 100, gvector_fraction=0.0)
        with pytest.raises(ValueError):
            PhysicalSystem("x", 1, 1, 1, 100, gvector_fraction=1.5)
