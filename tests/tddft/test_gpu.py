"""Tests for the GPU architecture model and occupancy calculator."""

import pytest

from repro.tddft import GpuSpec, a100


class TestA100Limits:
    def test_published_limits(self):
        g = a100()
        assert g.sms == 108
        assert g.max_threads_per_sm == 2048
        assert g.max_blocks_per_sm == 32
        assert g.max_warps_per_block == 32
        assert g.max_threads_per_block == 1024

    def test_paper_parameter_cardinalities(self):
        """Table IV: 32 threadblock sizes x 32 blocks-per-SM values."""
        g = a100()
        assert len(g.tb_values()) == 32
        assert len(g.tb_sm_values()) == 32
        assert g.tb_values()[0] == 32 and g.tb_values()[-1] == 1024


class TestValidity:
    def test_occupancy_constraint(self):
        g = a100()
        assert g.threadblock_valid(64, 32)  # 2048 exactly
        assert not g.threadblock_valid(128, 32)  # 4096 > 2048
        assert g.threadblock_valid(1024, 2)
        assert not g.threadblock_valid(1024, 3)

    def test_warp_multiple_required(self):
        g = a100()
        assert not g.threadblock_valid(48, 1)
        assert not g.threadblock_valid(0, 1)
        assert not g.threadblock_valid(2048, 1)  # beyond block bound

    def test_tb_sm_bounds(self):
        g = a100()
        assert not g.threadblock_valid(32, 0)
        assert not g.threadblock_valid(32, 33)


class TestOccupancy:
    def test_full_occupancy(self):
        occ = a100().occupancy(64, 32)
        assert occ.fraction == 1.0
        assert occ.active_threads_per_sm == 2048
        assert occ.memory_efficiency() == pytest.approx(1.0)

    def test_low_occupancy_penalized(self):
        g = a100()
        low = g.occupancy(32, 1)
        high = g.occupancy(256, 8)
        assert low.fraction == pytest.approx(32 / 2048)
        assert low.memory_efficiency() < 0.2
        assert high.memory_efficiency() > 0.8

    def test_efficiency_monotone_in_occupancy(self):
        g = a100()
        effs = [g.occupancy(64, sm).memory_efficiency() for sm in (1, 2, 4, 8, 16, 32)]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            a100().occupancy(128, 32)


class TestSpecValidation:
    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            GpuSpec(sms=0)
        with pytest.raises(ValueError):
            GpuSpec(memory_bandwidth=0.0)
