"""WAL job registry: transitions, recovery, torn tails, compaction."""

import json
import os

import pytest

from repro.service import (
    IllegalTransition,
    JobRegistry,
    JobSpec,
    JobState,
    RegistryError,
)
from repro.service.registry import SNAPSHOT_NAME, WAL_NAME


def spec(job_id=None, tenant="default", **params):
    return JobSpec(kind="campaign", job_id=job_id, tenant=tenant, params=params)


class TestSubmitAndTransitions:
    def test_submit_assigns_id_and_queues(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            rec = reg.submit(spec())
            assert rec.state == JobState.QUEUED
            assert rec.job_id.startswith("job-")
            assert reg.queue_depth() == 1

    def test_wal_is_header_then_events(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec(job_id="a"))
        lines = [
            json.loads(s)
            for s in (tmp_path / WAL_NAME).read_text().splitlines()
        ]
        assert lines[0]["event"] == "header"
        assert [e["event"] for e in lines[1:]] == ["submit", "transition"]
        assert [e["seq"] for e in lines[1:]] == [1, 2]

    def test_duplicate_job_id_rejected(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec(job_id="a"))
            with pytest.raises(RegistryError, match="duplicate"):
                reg.submit(spec(job_id="a"))

    def test_illegal_transition_raises(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            rec = reg.submit(spec())
            with pytest.raises(IllegalTransition):
                reg.transition(rec.job_id, JobState.DONE)  # queued -> done
            with pytest.raises(IllegalTransition):
                reg.transition(rec.job_id, "nonsense")

    def test_terminal_states_are_final(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            rec = reg.submit(spec())
            reg.transition(rec.job_id, JobState.CANCELLED)
            with pytest.raises(IllegalTransition):
                reg.transition(rec.job_id, JobState.QUEUED)

    def test_lease_bumps_epoch_and_attempt(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            rec = reg.submit(spec())
            leased = reg.lease(rec.job_id, owner="w0")
            assert (leased.epoch, leased.attempt) == (1, 1)
            assert leased.owner == "w0"
            requeued = reg.requeue(rec.job_id, "lease_expired")
            assert (requeued.epoch, requeued.attempt) == (2, 1)
            assert requeued.reason == "lease_expired"
            leased = reg.lease(rec.job_id, owner="w1")
            assert (leased.epoch, leased.attempt) == (3, 2)

    def test_rejection_recorded_explicitly(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            rec = reg.submit(spec(), reject_reason="queue_full")
            assert rec.state == JobState.REJECTED
            assert rec.reason == "queue_full"
            assert reg.queue_depth() == 0

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            JobRegistry(tmp_path, fsync="sometimes")


class TestRecovery:
    def test_reopen_reconstructs_state(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            a = reg.submit(spec(job_id="a")).job_id
            b = reg.submit(spec(job_id="b")).job_id
            reg.lease(a, owner="w0")
            reg.transition(a, JobState.RUNNING, owner="w0")
            reg.transition(b, JobState.CANCELLED)
            seq = reg.seq
        with JobRegistry(tmp_path) as reg:
            assert reg.seq == seq
            assert reg.get("a").state == JobState.RUNNING
            assert reg.get("a").epoch == 1
            assert reg.get("b").state == JobState.CANCELLED
            assert not reg.recovered_torn_tail

    def test_torn_tail_dropped_and_appendable(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec(job_id="a"))
        with open(tmp_path / WAL_NAME, "a") as f:
            f.write('{"event": "transition", "job": "a", "sta')  # power cut
        with JobRegistry(tmp_path) as reg:
            assert reg.recovered_torn_tail
            assert reg.get("a").state == JobState.QUEUED
            reg.lease("a", owner="w0")  # appends cleanly after repair
        with JobRegistry(tmp_path) as reg:
            assert reg.get("a").state == JobState.LEASED

    def test_corrupt_interior_line_raises(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec(job_id="a"))
        lines = (tmp_path / WAL_NAME).read_text().splitlines()
        lines[1] = "not json at all"
        (tmp_path / WAL_NAME).write_text("\n".join(lines) + "\n")
        with pytest.raises(RegistryError, match="corrupt"):
            JobRegistry(tmp_path)

    def test_recover_orphans_requeues_in_flight(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            a = reg.submit(spec(job_id="a")).job_id
            b = reg.submit(spec(job_id="b")).job_id
            reg.lease(a, owner="w0")
            reg.lease(b, owner="w1")
            reg.transition(b, JobState.RUNNING, owner="w1")
        with JobRegistry(tmp_path) as reg:
            orphans = reg.recover_orphans()
            assert {r.job_id for r in orphans} == {"a", "b"}
            for job_id in ("a", "b"):
                rec = reg.get(job_id)
                assert rec.state == JobState.QUEUED
                assert rec.reason == "orphaned"
                assert rec.epoch == 2  # fenced past the dead lease


class TestCompaction:
    def fill(self, reg):
        done = reg.submit(spec(job_id="done-job")).job_id
        reg.lease(done, owner="w0")
        reg.transition(done, JobState.RUNNING, owner="w0")
        reg.transition(done, JobState.DONE, result={"fingerprint": "f"})
        reg.submit(spec(job_id="waiting"))

    def test_compact_truncates_wal_and_preserves_state(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            self.fill(reg)
            before = {r.job_id: r.to_dict() for r in reg.jobs()}
            seq = reg.seq
            reg.compact()
            # WAL is now header-only; snapshot carries the state.
            lines = (tmp_path / WAL_NAME).read_text().splitlines()
            assert len(lines) == 1
            assert (tmp_path / SNAPSHOT_NAME).exists()
            # Post-compaction appends still work.
            reg.submit(spec(job_id="later"))
        with JobRegistry(tmp_path) as reg:
            assert {r.job_id: r.to_dict() for r in reg.jobs()} == {
                **before,
                "later": reg.get("later").to_dict(),
            }
            assert reg.seq > seq

    def test_crash_between_snapshot_and_wal_truncate(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            self.fill(reg)
            stale_wal = (tmp_path / WAL_NAME).read_bytes()
            before = {r.job_id: r.to_dict() for r in reg.jobs()}
            reg.compact()
        # Simulate dying after the snapshot rename but before the WAL
        # replace: the old WAL (all seqs <= snapshot seq) reappears.
        (tmp_path / WAL_NAME).write_bytes(stale_wal)
        with JobRegistry(tmp_path) as reg:
            # Replay must skip the already-snapshotted events.
            assert {r.job_id: r.to_dict() for r in reg.jobs()} == before
            assert reg.get("done-job").state == JobState.DONE


class TestQueries:
    def test_fifo_queue_and_counts(self, tmp_path):
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec(job_id="a", tenant="t1"))
            reg.submit(spec(job_id="b", tenant="t2"))
            reg.submit(spec(job_id="c", tenant="t1"))
            reg.lease("a", owner="w0")
            assert [r.job_id for r in reg.queued()] == ["b", "c"]
            assert reg.queue_depth() == 2
            assert reg.active_count() == 3
            assert reg.active_count("t1") == 2
            assert reg.active_count("t3") == 0
            assert "a" in reg and "z" not in reg
            assert len(reg) == 3
            with pytest.raises(KeyError, match="unknown job"):
                reg.get("z")

    def test_close_is_idempotent(self, tmp_path):
        reg = JobRegistry(tmp_path)
        reg.submit(spec(job_id="a"))
        reg.close()
        reg.close()
        with JobRegistry(tmp_path) as reopened:
            assert reopened.get("a").state == JobState.QUEUED
