"""HTTP observability surface: SSE endpoints, /metrics, query filters.

Includes the acceptance-criteria tests: a client killed mid-stream that
reconnects with ``Last-Event-ID`` receives exactly the missed events,
while the job fingerprint stays identical to an unobserved run; and
``GET /metrics`` parses under a strict text-format 0.0.4 mini-parser.
"""

import re
import threading

import pytest

from repro.service import (
    JobRegistry,
    JobState,
    ServiceClientError,
    ServiceServer,
    Supervisor,
    health,
    metrics_text,
    stream_events,
    submit_job,
    wait_for_job,
)

FAST = {"engine": "bo", "budget": 6, "seed": 0}


@pytest.fixture
def live_service(tmp_path):
    registry = JobRegistry(tmp_path / "registry")
    supervisor = Supervisor(
        registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
    )
    thread = threading.Thread(
        target=supervisor.run, kwargs={"poll_interval": 0.01}, daemon=True
    )
    thread.start()
    with ServiceServer(supervisor) as server:
        yield server
    supervisor.request_drain()
    thread.join(timeout=30)
    registry.close()


class TestSSE:
    def test_per_job_stream_end_to_end(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        events = list(
            stream_events(
                live_service.url, rec["job_id"], timeout=60, keepalive=0.5
            )
        )
        cursors = [c for c, _ in events]
        names = [e["event"] for _, e in events]
        assert all(b > a for a, b in zip(cursors, cursors[1:]))
        assert names[-1] == "job_done"
        assert names.count("combo_result") == FAST["budget"]
        assert "tune_start" in names
        done = events[-1][1]
        assert done["state"] == JobState.DONE
        assert done["fingerprint"]

    def test_service_wide_stream_sees_multiple_jobs(self, live_service):
        r1 = submit_job(live_service.url, "campaign", params=FAST)
        r2 = submit_job(
            live_service.url, "campaign", params={**FAST, "seed": 1}
        )
        wait_for_job(live_service.url, r2["job_id"], timeout=60)
        seen_jobs = set()
        done = 0
        for cursor, ev in stream_events(
            live_service.url, timeout=60, keepalive=0.5, max_events=200
        ):
            seen_jobs.add(ev.get("job"))
            if ev["event"] == "job_done":
                done += 1
                if done == 2:
                    break
        assert {r1["job_id"], r2["job_id"]} <= seen_jobs

    def test_reconnect_with_last_event_id_no_gap_no_dup(self, live_service):
        """Kill the client mid-stream; the resumed stream must carry on
        from exactly the next cursor."""
        rec = submit_job(live_service.url, "campaign", params=FAST)
        first_half = []
        stream = stream_events(
            live_service.url, rec["job_id"], timeout=60, keepalive=0.5
        )
        for item in stream:
            first_half.append(item)
            if len(first_half) == 4:
                stream.close()  # drop the connection mid-job
                break
        assert first_half[-1][1]["event"] != "job_done"
        second_half = list(
            stream_events(
                live_service.url,
                rec["job_id"],
                last_event_id=first_half[-1][0],
                timeout=60,
                keepalive=0.5,
            )
        )
        cursors = [c for c, _ in first_half + second_half]
        assert len(set(cursors)) == len(cursors)  # no duplicates
        assert all(b > a for a, b in zip(cursors, cursors[1:]))  # ordered
        # No gap at the seam: the full per-job cursor set is recoverable
        # by a third subscription replaying from the start.
        replay = [
            c for c, _ in stream_events(
                live_service.url, rec["job_id"], timeout=60, keepalive=0.5
            )
        ]
        assert cursors == replay
        assert second_half[-1][1]["event"] == "job_done"

    def test_resume_via_query_param(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        all_events = list(
            stream_events(
                live_service.url, rec["job_id"], timeout=60, keepalive=0.5
            )
        )
        import json as _json
        import urllib.request

        mid = all_events[2][0]
        url = (
            f"{live_service.url}/jobs/{rec['job_id']}/events"
            f"?last_event_id={mid}"
        )
        with urllib.request.urlopen(url, timeout=30) as resp:
            body = resp.read().decode()
        ids = [int(m) for m in re.findall(r"^id: (\d+)$", body, re.M)]
        assert ids == [c for c, _ in all_events if c > mid]

    def test_unknown_job_404(self, live_service):
        with pytest.raises(ServiceClientError) as exc:
            list(stream_events(live_service.url, "nope", timeout=10))
        assert exc.value.status == 404

    def test_bad_cursor_400(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            f"{live_service.url}/jobs/{rec['job_id']}/events",
            headers={"Last-Event-ID": "not-a-number"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400


class TestFingerprintUnperturbed:
    def test_observed_equals_unobserved(self, tmp_path):
        """Streaming must not perturb results: same spec, one service
        fully observed over SSE, one with tracing off entirely —
        identical fingerprints."""
        fingerprints = {}
        for label, job_traces in (("observed", True), ("unobserved", False)):
            root = tmp_path / label
            registry = JobRegistry(root / "registry")
            sup = Supervisor(
                registry, jobs_dir=str(root / "jobs"), workers=1,
                inline=True, job_traces=job_traces,
            )
            thread = threading.Thread(
                target=sup.run, kwargs={"poll_interval": 0.01}, daemon=True
            )
            thread.start()
            with ServiceServer(sup) as server:
                rec = submit_job(server.url, "campaign", params=FAST)
                if job_traces:
                    events = list(
                        stream_events(
                            server.url, rec["job_id"], timeout=60,
                            keepalive=0.5,
                        )
                    )
                    assert events[-1][1]["event"] == "job_done"
                final = wait_for_job(server.url, rec["job_id"], timeout=60)
                fingerprints[label] = final["result"]["fingerprint"]
                sup.request_drain()
                thread.join(timeout=30)
            registry.close()
        assert fingerprints["observed"] == fingerprints["unobserved"]


# -- strict-enough Prometheus text-format 0.0.4 mini-parser ---------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_prometheus(text):
    """Validate the exposition grammar; returns {name: [(labels, value)]}."""
    samples = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                         r"(counter|gauge|histogram|summary|untyped)$", line)
            assert m, f"bad comment line: {line!r}"
            assert m.group(1) not in types, f"duplicate TYPE for {m.group(1)}"
            types[m.group(1)] = m.group(2)
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                assert _LABEL_RE.match(pair), f"bad label pair: {pair!r}"
        value = float(m.group("value"))  # must parse (inf/nan allowed)
        samples.setdefault(m.group("name"), []).append(
            (m.group("labels") or "", value)
        )
    return samples, types


class TestMetricsEndpoint:
    def test_exposition_parses_and_is_typed(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        wait_for_job(live_service.url, rec["job_id"], timeout=60)
        text = metrics_text(live_service.url)
        samples, types = parse_prometheus(text)
        assert any(v == 1 for _, v in samples["repro_service_jobs_done_total"])
        assert types["repro_service_jobs_done_total"] == "counter"
        assert types["repro_service_queue_depth"] == "gauge"
        assert types["repro_span_seconds"] == "histogram"

    def test_histograms_are_cumulative_and_consistent(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        wait_for_job(live_service.url, rec["job_id"], timeout=60)
        samples, _ = parse_prometheus(metrics_text(live_service.url))
        buckets = samples["repro_span_seconds_bucket"]
        counts = dict(samples["repro_span_seconds_count"])
        by_span = {}
        for labels, value in buckets:
            span = re.search(r'span="([^"]*)"', labels).group(1)
            le = re.search(r'le="([^"]*)"', labels).group(1)
            by_span.setdefault(span, []).append((le, value))
        for span, rows in by_span.items():
            values = [v for _, v in rows]
            assert values == sorted(values)  # cumulative: non-decreasing
            assert rows[-1][0] == "+Inf"
            assert rows[-1][1] == counts[f'span="{span}"']
        # The hot-path spans the issue names are actually present.
        assert {"gp_fit", "acquisition", "evaluation"} <= set(by_span)

    def test_content_type_is_prometheus_text(self, live_service):
        import urllib.request

        with urllib.request.urlopen(
            f"{live_service.url}/metrics", timeout=10
        ) as resp:
            ct = resp.headers["Content-Type"]
        assert ct == "text/plain; version=0.0.4; charset=utf-8"


class TestJobsFilters:
    def _submit_matrix(self, url):
        a = submit_job(url, "campaign", tenant="alice", params=FAST)
        b = submit_job(
            url, "campaign", tenant="bob", params={**FAST, "seed": 1}
        )
        wait_for_job(url, a["job_id"], timeout=60)
        wait_for_job(url, b["job_id"], timeout=60)
        return a, b

    def _get_jobs(self, url, query):
        import json as _json
        import urllib.request

        with urllib.request.urlopen(f"{url}/jobs?{query}", timeout=10) as r:
            return _json.loads(r.read())["jobs"]

    def test_tenant_filter(self, live_service):
        a, b = self._submit_matrix(live_service.url)
        jobs = self._get_jobs(live_service.url, "tenant=alice")
        assert [j["job_id"] for j in jobs] == [a["job_id"]]

    def test_state_filter(self, live_service):
        a, b = self._submit_matrix(live_service.url)
        done = self._get_jobs(live_service.url, "state=done")
        assert {j["job_id"] for j in done} == {a["job_id"], b["job_id"]}
        assert self._get_jobs(live_service.url, "state=queued") == []

    def test_combined_filters(self, live_service):
        a, b = self._submit_matrix(live_service.url)
        jobs = self._get_jobs(live_service.url, "tenant=bob&state=done")
        assert [j["job_id"] for j in jobs] == [b["job_id"]]

    def test_invalid_state_400(self, live_service):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(
                f"{live_service.url}/jobs?state=bogus", timeout=10
            )
        assert exc.value.code == 400


class TestHealthMetricsBlock:
    def test_health_carries_metrics_snapshot(self, live_service):
        rec = submit_job(live_service.url, "campaign", params=FAST)
        wait_for_job(live_service.url, rec["job_id"], timeout=60)
        status = health(live_service.url)
        metrics = status["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        assert metrics["counters"]["service_jobs_done"] == 1
        assert "service_queue_depth" in metrics["gauges"]
