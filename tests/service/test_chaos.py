"""Chaos suite: SIGKILL the service and its workers at seed-randomized
points and prove the exactly-once, bit-identical contract.

Kill points are drawn from the splitmix64 mix (the same idiom as
:mod:`repro.faults.injection`) seeded by ``REPRO_CHAOS_SEED`` (default
0), so a CI matrix re-runs the suite at genuinely different kill points
while any single seed stays reproducible.

The proof obligations (ISSUE acceptance criteria):

* every submitted job completes **exactly once** — terminal ``done``
  state in the WAL registry, no duplicated evaluations in any job's
  checkpoint database;
* results are **bit-identical** to an uninterrupted run of the same
  job (same ``fingerprint``);
* a torn registry WAL tail (power loss mid-append) is dropped on
  recovery without losing any acknowledged transition.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bo.history import EvaluationDatabase
from repro.faults.injection import _mix64
from repro.service import (
    JobGuard,
    JobRegistry,
    JobSpec,
    JobState,
    LeaseFencedError,
    Supervisor,
    run_job,
    write_fence,
)
from repro.service.registry import WAL_NAME

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: The chaos workload: three distinct deterministic BO campaign jobs.
JOB_PARAMS = [
    {"engine": "bo", "budget": 24, "seed": 0, "case": 1},
    {"engine": "bo", "budget": 24, "seed": 1, "case": 2},
    {"engine": "bo", "budget": 24, "seed": 2, "case": 3},
]

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def chaos_uniform(i, lo, hi):
    """Deterministic kill-point draw #``i`` in ``[lo, hi)``."""
    u = _mix64((CHAOS_SEED << 8) ^ (i + 1)) / 2.0**64
    return lo + (hi - lo) * u


def baselines(tmp_path):
    """Uninterrupted reference results for every chaos job."""
    out = []
    for i, params in enumerate(JOB_PARAMS):
        spec = JobSpec(kind="campaign", params=dict(params))
        out.append(run_job(spec, tmp_path / f"baseline-{i}")["fingerprint"])
    return out


def checkpoint_records(jobs_dir, job_id):
    paths = sorted(
        glob.glob(os.path.join(jobs_dir, job_id, "checkpoints", "*.jsonl"))
    )
    records = []
    for path in paths:
        records.extend(EvaluationDatabase(path=path))
    return records


def assert_exactly_once(registry_root, jobs_dir, reference):
    """Every job done once, bit-identical, zero duplicated evaluations."""
    with JobRegistry(registry_root) as registry:
        records = registry.jobs()
        assert len(records) == len(reference)
        for rec, fingerprint in zip(records, reference):
            assert rec.state == JobState.DONE, (rec.job_id, rec.state, rec.error)
            assert rec.result["fingerprint"] == fingerprint
            evals = checkpoint_records(jobs_dir, rec.job_id)
            assert len(evals) == rec.spec.params["budget"]
            configs = [tuple(sorted(r.config.items())) for r in evals]
            assert len(set(configs)) == len(configs), (
                f"{rec.job_id}: duplicated evaluations"
            )


class TestServerKill:
    """SIGKILL the whole ``repro serve`` process mid-flight; restarts on
    the same registry directory must finish every job exactly once."""

    def serve(self, registry_dir):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--registry-dir", str(registry_dir),
                "--no-http", "--drain-when-idle", "--workers", "2",
                "--quiet",
            ],
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            cwd=REPO,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def wait_for_progress(self, proc, jobs_dir, timeout=60.0):
        """Block until some worker checkpointed something (or exit)."""
        deadline = time.monotonic() + timeout
        pattern = os.path.join(jobs_dir, "*", "checkpoints", "*.jsonl")
        while time.monotonic() < deadline:
            if proc.poll() is not None or glob.glob(pattern):
                return
            time.sleep(0.02)
        raise AssertionError("service made no progress")

    def test_server_sigkill_exactly_once_bit_identical(self, tmp_path):
        reference = baselines(tmp_path)
        registry_dir = tmp_path / "service"
        registry_root = registry_dir / "registry"
        jobs_dir = registry_dir / "jobs"
        with JobRegistry(registry_root) as registry:
            for params in JOB_PARAMS:
                registry.submit(JobSpec(kind="campaign", params=dict(params)))

        kills = 0
        for round_no in range(12):
            proc = self.serve(registry_dir)
            try:
                if round_no < 2:  # chaos rounds: kill mid-flight
                    self.wait_for_progress(proc, str(jobs_dir))
                    time.sleep(chaos_uniform(round_no, 0.05, 0.5))
                    if proc.poll() is None:
                        proc.kill()
                        proc.wait()
                        kills += 1
                        continue
                if proc.wait(timeout=120) == 0:
                    break
            finally:
                if proc.poll() is None:  # pragma: no cover - safety net
                    proc.kill()
                proc.stdout.close()
        else:  # pragma: no cover - diagnostic path
            raise AssertionError("service never reached a clean exit")

        assert kills >= 1, "chaos never actually killed the service"
        assert_exactly_once(registry_root, str(jobs_dir), reference)


class TestWorkerKill:
    """SIGKILL individual worker processes; the supervisor requeues and
    the resumed attempts reproduce the uninterrupted results exactly."""

    def test_worker_sigkill_exactly_once_bit_identical(self, tmp_path):
        reference = baselines(tmp_path)
        registry = JobRegistry(tmp_path / "registry")
        jobs_dir = str(tmp_path / "jobs")
        sup = Supervisor(registry, jobs_dir=jobs_dir, workers=2)
        for params in JOB_PARAMS:
            sup.submit(JobSpec(kind="campaign", params=dict(params)))

        killed: set[str] = set()
        deadline = time.monotonic() + 120
        chaos_round = 0
        while time.monotonic() < deadline:
            busy = sup.tick()
            for lease in sup.active_leases():
                if lease.job_id in killed:
                    continue
                if checkpoint_records(jobs_dir, lease.job_id):
                    # Seed-randomized beat: kill mid-checkpoint-stream.
                    time.sleep(chaos_uniform(100 + chaos_round, 0.0, 0.15))
                    chaos_round += 1
                    if lease.process.is_alive():
                        os.kill(lease.pid, signal.SIGKILL)
                    killed.add(lease.job_id)
            if not busy:
                break
            time.sleep(0.01)

        assert killed, "chaos never killed a worker"
        registry.close()
        assert_exactly_once(tmp_path / "registry", jobs_dir, reference)


class TestHeartbeatExpiryFencesZombie:
    """A stalled (SIGSTOP) worker loses its lease; kill-then-fence means
    the zombie can never publish into its successor's epoch."""

    def test_stalled_zombie_cannot_publish(self, tmp_path):
        registry = JobRegistry(tmp_path / "registry")
        jobs_dir = str(tmp_path / "jobs")
        sup = Supervisor(
            registry, jobs_dir=jobs_dir, workers=1,
            heartbeat_interval=0.05, max_missed=4,
        )
        params = JOB_PARAMS[0]
        rec, _ = sup.submit(JobSpec(kind="campaign", params=dict(params)))
        deadline = time.monotonic() + 120
        stalled_pid = None
        while time.monotonic() < deadline:
            sup.tick()
            leases = sup.active_leases()
            if stalled_pid is None and leases and checkpoint_records(
                jobs_dir, leases[0].job_id
            ):
                stalled_pid = leases[0].pid
                os.kill(stalled_pid, signal.SIGSTOP)
            if registry.get(rec.job_id).state == JobState.DONE:
                break
            time.sleep(0.01)

        done = registry.get(rec.job_id)
        assert done.state == JobState.DONE
        assert stalled_pid is not None
        assert done.epoch >= 3  # expiry bumped the fence past the zombie
        # The zombie was SIGKILLed while stopped — it never wakes.
        with pytest.raises(OSError):
            os.kill(stalled_pid, 0)
        reference = run_job(
            JobSpec(kind="campaign", params=dict(params)), tmp_path / "ref"
        )
        assert done.result["fingerprint"] == reference["fingerprint"]
        registry.close()


class TestTornRegistryTail:
    """Cut the WAL mid-line at seed-randomized points: recovery drops
    exactly the torn line, keeps every acknowledged prefix event."""

    @pytest.mark.parametrize("round_no", [0, 1, 2])
    def test_torn_tail_recovery(self, tmp_path, round_no):
        root = tmp_path / f"reg-{round_no}"
        with JobRegistry(root) as registry:
            a = registry.submit(JobSpec(kind="campaign", job_id="a")).job_id
            registry.submit(JobSpec(kind="campaign", job_id="b"))
            registry.lease(a, owner="w0")
            registry.transition(a, JobState.RUNNING, owner="w0")

        wal = root / WAL_NAME
        data = wal.read_bytes()
        lines = data.splitlines(keepends=True)
        # Tear somewhere strictly inside the final line.
        cut = 1 + int(chaos_uniform(200 + round_no, 0, len(lines[-1]) - 2))
        wal.write_bytes(data[: len(data) - len(lines[-1]) + cut])

        with JobRegistry(root) as registry:
            assert registry.recovered_torn_tail
            # The torn event (a -> running) is gone; everything before
            # it — including the acknowledged lease — survived.
            assert registry.get("a").state == JobState.LEASED
            assert registry.get("a").epoch == 1
            assert registry.get("b").state == JobState.QUEUED
            # The registry keeps working after the repair.
            registry.recover_orphans()
            assert registry.get("a").state == JobState.QUEUED


class TestGuardFencesMidRun:
    """The per-evaluation guard aborts a job the moment its epoch is
    superseded — without poisoning the checkpoint database."""

    def test_fence_bump_aborts_without_failed_records(self, tmp_path):
        workdir = str(tmp_path / "job")
        os.makedirs(workdir)
        write_fence(workdir, 1)
        guard = JobGuard(workdir=workdir, epoch=1, drain_path=None)
        spec = JobSpec(kind="campaign", params={**JOB_PARAMS[0], "budget": 60})
        outcome = {}

        def run():
            try:
                outcome["result"] = run_job(spec, workdir, guard=guard)
            except BaseException as exc:  # noqa: BLE001 - capture for assert
                outcome["error"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        pattern = os.path.join(workdir, "checkpoints", "*.jsonl")
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not glob.glob(pattern):
            time.sleep(0.01)
        write_fence(workdir, 2)  # supersede the lease mid-run
        thread.join(timeout=60)
        assert not thread.is_alive()

        assert isinstance(outcome.get("error"), LeaseFencedError)
        # The fence trip is an abort, not a FAILED evaluation: the
        # checkpoint database the successor resumes from stays clean.
        for path in glob.glob(pattern):
            for rec in EvaluationDatabase(path=path):
                assert "fail" not in str(rec.status).lower()
        assert not os.path.exists(os.path.join(workdir, "result.json"))


class TestDrainUnderLoad:
    """SIGTERM-style drain with jobs queued and running exits cleanly
    and loses nothing — the restart finishes the backlog."""

    def test_drain_then_restart_finishes_backlog(self, tmp_path):
        reference = baselines(tmp_path)
        registry = JobRegistry(tmp_path / "registry")
        jobs_dir = str(tmp_path / "jobs")
        sup = Supervisor(registry, jobs_dir=jobs_dir, workers=1)
        for params in JOB_PARAMS:
            sup.submit(JobSpec(kind="campaign", params=dict(params)))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not sup.active_leases():
            sup.tick()
            time.sleep(0.01)
        time.sleep(chaos_uniform(300, 0.0, 0.2))
        sup.request_drain()
        assert sup.run(poll_interval=0.01) is True
        assert registry.queue_depth() == 3  # nothing lost, nothing leased
        registry.close()

        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(registry, jobs_dir=jobs_dir, workers=2)
        sup.recover()
        assert sup.run(drain_when_idle=True, poll_interval=0.01) is True
        registry.close()
        assert_exactly_once(tmp_path / "registry", jobs_dir, reference)
