"""Lease supervision: completion, expiry, drain, cancel, recovery."""

import os
import signal
import time

import pytest

from repro.service import (
    AdmissionController,
    JobRegistry,
    JobSpec,
    JobState,
    Supervisor,
    run_job,
)
from repro.telemetry import MemorySink, Telemetry

#: Fast BO campaign job — deterministic, ~0.1s.
FAST = {"engine": "bo", "budget": 8, "seed": 0}
#: Slow BO campaign job — ~1s, long enough to interfere with mid-run.
SLOW = {"engine": "bo", "budget": 40, "seed": 0}


def jspec(params=FAST, tenant="default", kind="campaign"):
    return JobSpec(kind=kind, tenant=tenant, params=dict(params))


def baseline_fingerprint(tmp_path, params=FAST, kind="campaign"):
    """Uninterrupted reference run of the same job."""
    result = run_job(jspec(params, kind=kind), tmp_path / "baseline")
    return result["fingerprint"]


def make_service(tmp_path, **kw):
    telemetry = Telemetry([MemorySink()])
    registry = JobRegistry(tmp_path / "registry")
    supervisor = Supervisor(
        registry,
        jobs_dir=str(tmp_path / "jobs"),
        telemetry=telemetry,
        **kw,
    )
    return registry, supervisor, telemetry


def tick_until(supervisor, predicate, timeout=30.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        supervisor.tick()
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached within timeout")


def event_names(telemetry):
    sink = telemetry.sinks[0]
    return [e["name"] for e in sink.events if e.get("kind") == "event"]


class TestCompletion:
    def test_job_runs_to_done_on_worker_process(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, workers=1)
        rec, decision = sup.submit(jspec())
        assert decision.admitted
        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert done.result["fingerprint"] == baseline_fingerprint(tmp_path)
        assert done.epoch == 1 and done.attempt == 1
        names = event_names(tel)
        assert "job_submitted" in names and "job_leased" in names
        assert "job_done" in names and "job_resumed" not in names
        assert tel.metrics.snapshot()["counters"]["service_jobs_done"] == 1.0
        registry.close()

    def test_inline_mode_matches_worker_mode(self, tmp_path):
        registry, sup, _ = make_service(tmp_path, workers=1, inline=True)
        rec, _ = sup.submit(jspec())
        sup.tick()  # inline: the lease runs synchronously inside tick
        done = registry.get(rec.job_id)
        assert done.state == JobState.DONE
        assert done.result["fingerprint"] == baseline_fingerprint(tmp_path)
        registry.close()

    def test_failing_job_records_error(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, workers=1)
        rec, _ = sup.submit(jspec({"case": 99}))  # invalid case -> ValueError
        tick_until(
            sup, lambda: registry.get(rec.job_id).state == JobState.FAILED
        )
        failed = registry.get(rec.job_id)
        assert "case must be 1..5" in failed.error
        assert "job_failed" in event_names(tel)
        registry.close()

    def test_failing_job_counts_against_tenant_breaker(self, tmp_path):
        admission = AdmissionController(max_queue=8, tenant_fail_threshold=1)
        registry, sup, _ = make_service(
            tmp_path, workers=1, inline=True, admission=admission
        )
        rec, _ = sup.submit(jspec({"case": 99}, tenant="flaky"))
        sup.tick()
        assert registry.get(rec.job_id).state == JobState.FAILED
        _, decision = sup.submit(jspec(tenant="flaky"))
        assert decision.reason == "tenant_quarantined"
        registry.close()


class TestRejection:
    def test_queue_full_recorded_in_registry_and_metrics(self, tmp_path):
        admission = AdmissionController(max_queue=1)
        registry, sup, tel = make_service(
            tmp_path, workers=1, admission=admission
        )
        sup.submit(jspec())
        rec, decision = sup.submit(jspec())
        assert not decision.admitted and decision.reason == "queue_full"
        assert registry.get(rec.job_id).state == JobState.REJECTED
        assert registry.get(rec.job_id).reason == "queue_full"
        counters = tel.metrics.snapshot()["counters"]
        assert counters["service_rejections{reason=queue_full}"] == 1.0
        assert "job_rejected" in event_names(tel)
        registry.close()


class TestCancel:
    def test_cancel_queued_job_immediately(self, tmp_path):
        registry, sup, _ = make_service(tmp_path, workers=1)
        rec, _ = sup.submit(jspec())
        cancelled = sup.cancel(rec.job_id)
        assert cancelled.state == JobState.CANCELLED
        registry.close()

    def test_cancel_running_job_kills_and_fences(self, tmp_path):
        registry, sup, _ = make_service(tmp_path, workers=1)
        rec, _ = sup.submit(jspec(SLOW))
        tick_until(sup, lambda: sup.active_leases())
        sup.cancel(rec.job_id)
        tick_until(
            sup, lambda: registry.get(rec.job_id).state == JobState.CANCELLED
        )
        assert not sup.active_leases()
        registry.close()


class TestLeaseExpiry:
    def test_stalled_worker_expires_and_job_resumes(self, tmp_path):
        registry, sup, tel = make_service(
            tmp_path, workers=1, heartbeat_interval=0.05, max_missed=4
        )
        reference = baseline_fingerprint(tmp_path, SLOW)
        rec, _ = sup.submit(jspec(SLOW))
        tick_until(sup, lambda: sup.active_leases())
        # Let the worker checkpoint at least something before freezing,
        # so the second lease is a genuine resume.
        ckpt = os.path.join(sup.active_leases()[0].workdir, "checkpoints")
        tick_until(sup, lambda: os.path.isdir(ckpt) and os.listdir(ckpt))
        # Freeze the worker: heartbeats stop advancing, the lease expires
        # (kill-then-fence), and the job requeues with a bumped epoch.
        os.kill(sup.active_leases()[0].pid, signal.SIGSTOP)
        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert done.epoch >= 3  # lease(1) + requeue(2) + re-lease(3)
        assert done.attempt >= 2
        assert done.result["fingerprint"] == reference  # bit-identical resume
        names = event_names(tel)
        assert "lease_expired" in names and "job_resumed" in names
        counters = tel.metrics.snapshot()["counters"]
        assert counters["service_leases_expired"] >= 1.0
        registry.close()

    def test_sigkilled_worker_is_worker_lost_and_resumes(self, tmp_path):
        registry, sup, _ = make_service(tmp_path, workers=1)
        reference = baseline_fingerprint(tmp_path, SLOW)
        rec, _ = sup.submit(jspec(SLOW))
        tick_until(sup, lambda: sup.active_leases())
        os.kill(sup.active_leases()[0].pid, signal.SIGKILL)
        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert done.reason == "worker_lost" or done.attempt >= 2
        assert done.result["fingerprint"] == reference
        registry.close()

    def test_attempt_cap_fails_job_permanently(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, workers=1, max_attempts=1)
        rec, _ = sup.submit(jspec(SLOW))
        tick_until(sup, lambda: sup.active_leases())
        os.kill(sup.active_leases()[0].pid, signal.SIGKILL)
        tick_until(
            sup, lambda: registry.get(rec.job_id).state == JobState.FAILED
        )
        assert "worker_lost" in registry.get(rec.job_id).error
        assert "job_failed" in event_names(tel)
        registry.close()


class TestDrain:
    def test_drain_requeues_running_and_restart_completes(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, workers=1)
        reference = baseline_fingerprint(tmp_path, SLOW)
        first, _ = sup.submit(jspec(SLOW))
        second, _ = sup.submit(jspec())
        tick_until(sup, lambda: sup.active_leases())
        sup.request_drain()
        # Draining rejects new submissions explicitly.
        _, decision = sup.submit(jspec())
        assert decision.reason == "draining"
        assert sup.run(poll_interval=0.01) is True  # clean drain exit
        states = {registry.get(j.job_id).state for j in (first, second)}
        assert states == {JobState.QUEUED}  # persisted, not lost
        assert registry.get(first.job_id).reason == "drained"
        assert "drain_started" in event_names(tel)
        registry.close()

        # Restart the service on the same state: both jobs complete,
        # the drained one resuming bit-identically from its checkpoints.
        registry2 = JobRegistry(tmp_path / "registry")
        sup2 = Supervisor(registry2, jobs_dir=str(tmp_path / "jobs"), workers=2)
        sup2.recover()
        assert sup2.run(drain_when_idle=True, poll_interval=0.01) is True
        assert registry2.get(first.job_id).state == JobState.DONE
        assert registry2.get(second.job_id).state == JobState.DONE
        assert registry2.get(first.job_id).result["fingerprint"] == reference
        registry2.close()


class TestRecovery:
    def test_startup_requeues_orphans_with_fence(self, tmp_path):
        with JobRegistry(tmp_path / "registry") as registry:
            rec = registry.submit(jspec())
            registry.lease(rec.job_id, owner="dead-supervisor")
            registry.transition(rec.job_id, JobState.RUNNING, owner="dead")
            job_id = rec.job_id
        # A dead supervisor left the job RUNNING in the WAL.
        registry, sup, tel = make_service(tmp_path, workers=1)
        orphans = sup.recover()
        assert [r.job_id for r in orphans] == [job_id]
        assert registry.get(job_id).state == JobState.QUEUED
        assert registry.get(job_id).epoch == 2
        tick_until(sup, lambda: registry.get(job_id).state == JobState.DONE)
        assert registry.get(job_id).result["fingerprint"] == (
            baseline_fingerprint(tmp_path)
        )
        registry.close()

    def test_constructor_validation(self, tmp_path):
        registry = JobRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="workers"):
            Supervisor(registry, jobs_dir=str(tmp_path / "jobs"), workers=0)
        with pytest.raises(ValueError, match="max_attempts"):
            Supervisor(
                registry, jobs_dir=str(tmp_path / "jobs"), max_attempts=0
            )
        registry.close()
