"""Shared pool + cross-job store: reuse, chaos parity, store races.

The pool must be *transparent*: every guarantee the chaos suite proves
for per-job workers (exactly-once, bit-identical fingerprints, clean
drain) must hold verbatim when jobs run on pooled long-lived workers,
and the cross-job evaluation store must never perturb a fingerprint.

Kill points reuse the ``REPRO_CHAOS_SEED`` idiom from
:mod:`tests.service.test_chaos` so the CI matrix exercises genuinely
different interleavings per seed.
"""

import glob
import json
import os
import signal
import time

from repro.bo.history import EvaluationDatabase
from repro.faults.injection import _mix64
from repro.search import EvaluationStore
from repro.service import (
    JobRegistry,
    JobSpec,
    JobState,
    Supervisor,
    run_job,
)
from repro.telemetry import MemorySink, Telemetry

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

FAST = {"engine": "bo", "budget": 8, "seed": 0}
SLOW = {"engine": "bo", "budget": 40, "seed": 0}


def chaos_uniform(i, lo, hi):
    u = _mix64((CHAOS_SEED << 8) ^ (i + 1)) / 2.0**64
    return lo + (hi - lo) * u


def jspec(params=FAST, kind="campaign"):
    return JobSpec(kind=kind, params=dict(params))


def baseline_fingerprint(tmp_path, params=FAST, kind="campaign"):
    """Uninterrupted, unpooled, cold-store reference run."""
    label = "-".join(f"{k}{v}" for k, v in sorted(params.items()))
    return run_job(jspec(params, kind), tmp_path / f"baseline-{label}")[
        "fingerprint"
    ]


def make_service(tmp_path, **kw):
    telemetry = Telemetry([MemorySink()])
    registry = JobRegistry(tmp_path / "registry")
    supervisor = Supervisor(
        registry, jobs_dir=str(tmp_path / "jobs"), telemetry=telemetry, **kw
    )
    return registry, supervisor, telemetry


def tick_until(supervisor, predicate, timeout=60.0, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        supervisor.tick()
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError("condition not reached within timeout")


def checkpoint_records(jobs_dir, job_id):
    records = []
    for path in sorted(
        glob.glob(os.path.join(jobs_dir, job_id, "checkpoints", "*.jsonl"))
    ):
        records.extend(EvaluationDatabase(path=path))
    return records


def store_eval_lines(path):
    """Parsed non-header store lines (every line must parse)."""
    lines = [json.loads(raw) for raw in open(path)]
    return [d for d in lines if "format" not in d]


class TestPooledCompletion:
    def test_pooled_job_matches_unpooled_fingerprint(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, pool_size=2)
        rec, decision = sup.submit(jspec())
        assert decision.admitted
        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert done.result["fingerprint"] == baseline_fingerprint(tmp_path)
        sup.close_pool()
        registry.close()

    def test_pool_reuses_processes_across_jobs(self, tmp_path):
        registry, sup, _ = make_service(tmp_path, pool_size=1)
        recs = [sup.submit(jspec())[0] for _ in range(4)]
        tick_until(
            sup,
            lambda: all(
                registry.get(r.job_id).state == JobState.DONE for r in recs
            ),
        )
        snap = sup.pool.snapshot()
        # Four jobs, one slot, zero respawns: one long-lived process
        # (generation 1) served them all.
        assert snap["respawns"] == 0
        assert snap["generations"] == [1]
        sup.close_pool()
        registry.close()

    def test_pool_gauges_and_clean_close(self, tmp_path):
        registry, sup, tel = make_service(tmp_path, pool_size=2)
        recs = [sup.submit(jspec())[0] for _ in range(2)]
        assert sup.run(drain_when_idle=True, poll_interval=0.01) is True
        for rec in recs:
            assert registry.get(rec.job_id).state == JobState.DONE
        # run() closed the pool on its clean exit.
        assert all(slot.process is None for slot in sup.pool.slots)
        gauges = tel.metrics.snapshot()["gauges"]
        assert "service_pool_slots{state=busy}" in gauges
        assert "service_pool_slots{state=idle}" in gauges
        registry.close()


class TestPooledWorkerKill:
    """SIGKILL a pooled worker mid-job: the slot respawns, the job
    requeues, and the resumed attempt is bit-identical."""

    def test_sigkill_pooled_worker_exactly_once_bit_identical(self, tmp_path):
        params = dict(SLOW)
        reference = baseline_fingerprint(tmp_path, params)
        registry, sup, tel = make_service(tmp_path, pool_size=2)
        jobs_dir = str(tmp_path / "jobs")
        recs = [sup.submit(jspec(params))[0] for _ in range(2)]

        killed: set[str] = set()
        chaos_round = 0
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            busy = sup.tick()
            for lease in sup.active_leases():
                if lease.job_id in killed:
                    continue
                if checkpoint_records(jobs_dir, lease.job_id):
                    time.sleep(chaos_uniform(400 + chaos_round, 0.0, 0.15))
                    chaos_round += 1
                    if lease.process.is_alive():
                        os.kill(lease.pid, signal.SIGKILL)
                    killed.add(lease.job_id)
            if not busy:
                break
            time.sleep(0.01)

        assert killed, "chaos never killed a pooled worker"
        assert sup.pool.respawns >= 1  # the slot healed itself
        for rec in recs:
            done = registry.get(rec.job_id)
            assert done.state == JobState.DONE, (done.job_id, done.error)
            assert done.result["fingerprint"] == reference
            evals = checkpoint_records(jobs_dir, rec.job_id)
            assert len(evals) == params["budget"]
            configs = [tuple(sorted(r.config.items())) for r in evals]
            assert len(set(configs)) == len(configs), "duplicated evaluations"
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("service_pool_respawns{reason=worker_lost}", 0) >= 1
        sup.close_pool()
        registry.close()


class TestDrainUnderPool:
    def test_drain_then_restart_finishes_backlog(self, tmp_path):
        reference = baseline_fingerprint(tmp_path, SLOW)
        registry, sup, _ = make_service(tmp_path, pool_size=1)
        jobs_dir = str(tmp_path / "jobs")
        recs = [sup.submit(jspec(SLOW))[0] for _ in range(2)]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not sup.active_leases():
            sup.tick()
            time.sleep(0.01)
        time.sleep(chaos_uniform(500, 0.0, 0.2))
        sup.request_drain()
        assert sup.run(poll_interval=0.01) is True
        assert registry.queue_depth() == 2  # nothing lost, nothing leased
        assert all(slot.process is None for slot in sup.pool.slots)
        registry.close()

        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(registry, jobs_dir=jobs_dir, pool_size=2)
        sup.recover()
        assert sup.run(drain_when_idle=True, poll_interval=0.01) is True
        for rec in recs:
            done = registry.get(rec.job_id)
            assert done.state == JobState.DONE
            assert done.result["fingerprint"] == reference
        registry.close()


class TestCrossJobStore:
    def test_second_identical_job_served_from_store(self, tmp_path):
        reference = baseline_fingerprint(tmp_path)
        store_path = tmp_path / "evals.jsonl"
        registry, sup, tel = make_service(
            tmp_path, pool_size=1, eval_store=store_path
        )
        first, _ = sup.submit(jspec())
        tick_until(
            sup, lambda: registry.get(first.job_id).state == JobState.DONE
        )
        second, _ = sup.submit(jspec())
        tick_until(
            sup, lambda: registry.get(second.job_id).state == JobState.DONE
        )

        budget = FAST["budget"]
        done1 = registry.get(first.job_id)
        done2 = registry.get(second.job_id)
        # ISSUE acceptance: >= 90% cross-job hits, zero duplicated
        # objective evaluations, fingerprints byte-identical to the
        # unpooled cold-store baseline.
        memo = done2.result["memo"]
        assert memo["cross_job_hits"] >= 0.9 * budget
        assert memo["misses"] == 0
        assert done1.result["fingerprint"] == reference
        assert done2.result["fingerprint"] == reference
        # The store holds exactly the first job's measurements: the
        # second job added nothing (no duplicated evaluations service-wide).
        assert len(store_eval_lines(store_path)) == done1.result["memo"]["misses"]
        # Workers publish memo counters in their metrics snapshots; the
        # supervisor folds them into the service-wide merged view.
        counters = sup.metrics_snapshot()["counters"]
        assert counters["service_memo_hits{scope=cross_job}"] >= 0.9 * budget
        sup.close_pool()
        registry.close()

    def test_concurrent_jobs_race_the_store_safely(self, tmp_path):
        reference = baseline_fingerprint(tmp_path)
        store_path = tmp_path / "evals.jsonl"
        registry, sup, _ = make_service(
            tmp_path, pool_size=2, eval_store=store_path
        )
        recs = [sup.submit(jspec())[0] for _ in range(2)]
        tick_until(
            sup,
            lambda: all(
                registry.get(r.job_id).state == JobState.DONE for r in recs
            ),
        )
        total_misses = 0
        for rec in recs:
            done = registry.get(rec.job_id)
            assert done.result["fingerprint"] == reference
            total_misses += done.result["memo"]["misses"]
        # Racing writers interleave whole lines only; the store ends up
        # with exactly one record per fresh evaluation.
        lines = store_eval_lines(store_path)
        assert len(lines) == total_misses
        keys = {(d["space"], d["key"], json.dumps(d["provenance"], sort_keys=True))
                for d in lines}
        assert len(keys) == len(lines)  # record() never duplicated a key
        sup.close_pool()
        registry.close()

    def test_noisy_job_bypasses_store(self, tmp_path):
        store_path = tmp_path / "evals.jsonl"
        registry, sup, _ = make_service(
            tmp_path, pool_size=1, eval_store=store_path
        )
        rec, _ = sup.submit(jspec({**FAST, "noise": 0.01}))
        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert "memo" not in done.result
        assert not os.path.exists(store_path)
        sup.close_pool()
        registry.close()

    def test_kill_and_resume_with_torn_store_tail(self, tmp_path):
        """A worker dies mid-append: the torn final store line is repaired
        by the next writer and the resumed job still matches baseline."""
        params = dict(SLOW)
        reference = baseline_fingerprint(tmp_path, params)
        store_path = tmp_path / "evals.jsonl"
        registry, sup, _ = make_service(
            tmp_path, pool_size=1, eval_store=store_path
        )
        jobs_dir = str(tmp_path / "jobs")
        rec, _ = sup.submit(jspec(params))

        tick_until(
            sup,
            lambda: bool(
                sup.active_leases()
                and checkpoint_records(jobs_dir, rec.job_id)
            ),
        )
        time.sleep(chaos_uniform(600, 0.0, 0.1))
        lease = sup.active_leases()[0]
        if lease.process.is_alive():
            os.kill(lease.pid, signal.SIGKILL)
        # Simulate the kill landing mid-append: a torn final store line.
        with open(store_path, "a") as f:
            f.write('{"space": "torn", "key": "{\\"x\\"')

        tick_until(sup, lambda: registry.get(rec.job_id).state == JobState.DONE)
        done = registry.get(rec.job_id)
        assert done.result["fingerprint"] == reference
        evals = checkpoint_records(jobs_dir, rec.job_id)
        assert len(evals) == params["budget"]
        # The resumed attempt's writer repaired the tear: every line in
        # the store parses and the torn fragment is gone.
        for d in store_eval_lines(store_path):
            assert d["space"] != "torn"
        sup.close_pool()
        registry.close()

    def test_methodology_job_uses_store(self, tmp_path):
        params = {"budget": 6, "variations": 4, "seed": 0}
        reference = baseline_fingerprint(tmp_path, params, kind="methodology")
        store_path = tmp_path / "evals.jsonl"
        registry, sup, _ = make_service(
            tmp_path, pool_size=1, eval_store=store_path
        )
        first, _ = sup.submit(jspec(params, kind="methodology"))
        tick_until(
            sup, lambda: registry.get(first.job_id).state == JobState.DONE,
            timeout=120.0,
        )
        second, _ = sup.submit(jspec(params, kind="methodology"))
        tick_until(
            sup, lambda: registry.get(second.job_id).state == JobState.DONE,
            timeout=120.0,
        )
        done1 = registry.get(first.job_id)
        done2 = registry.get(second.job_id)
        assert done1.result["fingerprint"] == reference
        assert done2.result["fingerprint"] == reference
        assert done2.result["memo"]["misses"] == 0
        assert done2.result["memo"]["cross_job_hits"] > 0
        sup.close_pool()
        registry.close()
