"""REST front-end: routes, honest shed statuses, client helpers."""

import threading

import pytest

from repro.service import (
    AdmissionController,
    JobRegistry,
    JobSpec,
    JobState,
    ServiceClientError,
    ServiceServer,
    Supervisor,
    cancel_job,
    health,
    job_status,
    list_jobs,
    submit_job,
    wait_for_job,
)

FAST = {"engine": "bo", "budget": 8, "seed": 0}


@pytest.fixture
def static_service(tmp_path):
    """Server over a supervisor that is never ticked — queue mechanics
    are fully observable because nothing gets leased."""
    registry = JobRegistry(tmp_path / "registry")
    supervisor = Supervisor(
        registry,
        jobs_dir=str(tmp_path / "jobs"),
        admission=AdmissionController(max_queue=2, tenant_fail_threshold=1),
        workers=1,
    )
    with ServiceServer(supervisor) as server:
        yield server
    registry.close()


@pytest.fixture
def live_service(tmp_path):
    """Server plus a background supervision loop that executes jobs."""
    registry = JobRegistry(tmp_path / "registry")
    supervisor = Supervisor(registry, jobs_dir=str(tmp_path / "jobs"), workers=1)
    thread = threading.Thread(
        target=supervisor.run, kwargs={"poll_interval": 0.01}, daemon=True
    )
    thread.start()
    with ServiceServer(supervisor) as server:
        yield server
    supervisor.request_drain()
    thread.join(timeout=30)
    registry.close()


class TestRoutes:
    def test_submit_runs_to_completion(self, live_service):
        rec = submit_job(
            live_service.url, "campaign", tenant="t1", params=FAST
        )
        assert rec["state"] == JobState.QUEUED
        done = wait_for_job(live_service.url, rec["job_id"], timeout=60)
        assert done["state"] == JobState.DONE
        assert done["result"]["fingerprint"]
        assert done["tenant"] == "t1"

    def test_health_and_listing(self, static_service):
        submit_job(static_service.url, "campaign", params=FAST)
        status = health(static_service.url)
        assert status["status"] == "ok"
        assert status["queue_depth"] == 1
        assert status["workers"] == 1
        jobs = list_jobs(static_service.url)
        assert len(jobs) == 1 and jobs[0]["state"] == JobState.QUEUED

    def test_job_status_includes_params(self, static_service):
        rec = submit_job(static_service.url, "campaign", params=FAST)
        full = job_status(static_service.url, rec["job_id"])
        assert full["params"] == FAST
        assert full["result"] is None

    def test_cancel_queued_job(self, static_service):
        rec = submit_job(static_service.url, "campaign", params=FAST)
        out = cancel_job(static_service.url, rec["job_id"])
        assert out["state"] == JobState.CANCELLED


class TestErrors:
    def test_unknown_job_is_404(self, static_service):
        with pytest.raises(ServiceClientError) as err:
            job_status(static_service.url, "no-such-job")
        assert err.value.status == 404
        with pytest.raises(ServiceClientError) as err:
            cancel_job(static_service.url, "no-such-job")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, static_service):
        from repro.service.server import _request

        with pytest.raises(ServiceClientError) as err:
            _request(f"{static_service.url}/nope")
        assert err.value.status == 404

    def test_invalid_kind_is_400(self, static_service):
        with pytest.raises(ServiceClientError) as err:
            submit_job(static_service.url, "nonsense")
        assert err.value.status == 400
        from repro.service.server import _request

        with pytest.raises(ServiceClientError) as err:
            _request(f"{static_service.url}/jobs", method="POST", payload={})
        assert err.value.status == 400


class TestShedding:
    def test_queue_full_is_429_with_reason(self, static_service):
        submit_job(static_service.url, "campaign", params=FAST)
        submit_job(static_service.url, "campaign", params=FAST)
        with pytest.raises(ServiceClientError) as err:
            submit_job(static_service.url, "campaign", params=FAST)
        assert err.value.status == 429
        assert err.value.payload["reason"] == "queue_full"
        assert err.value.payload["state"] == JobState.REJECTED

    def test_quarantined_tenant_is_403(self, static_service):
        admission = static_service.supervisor.admission
        admission.record_failure("bad")  # threshold=1 trips immediately
        with pytest.raises(ServiceClientError) as err:
            submit_job(
                static_service.url, "campaign", tenant="bad", params=FAST
            )
        assert err.value.status == 403
        assert err.value.payload["reason"] == "tenant_quarantined"

    def test_draining_is_503_and_health_reports_it(self, static_service):
        static_service.supervisor.request_drain()
        with pytest.raises(ServiceClientError) as err:
            submit_job(static_service.url, "campaign", params=FAST)
        assert err.value.status == 503
        assert err.value.payload["reason"] == "draining"
        assert health(static_service.url)["status"] == "draining"

    def test_rejections_are_jobs_too(self, static_service):
        # A shed submission still leaves an auditable rejected record.
        submit_job(static_service.url, "campaign", params=FAST)
        submit_job(static_service.url, "campaign", params=FAST)
        with pytest.raises(ServiceClientError):
            submit_job(static_service.url, "campaign", params=FAST)
        states = [j["state"] for j in list_jobs(static_service.url)]
        assert states.count(JobState.REJECTED) == 1
        assert states.count(JobState.QUEUED) == 2
