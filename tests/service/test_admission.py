"""Admission control: bounded queue, tenant quotas, quarantine, drain."""

import pytest

from repro.service import AdmissionController, JobRegistry, JobSpec, JobState
from repro.service.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_TENANT_QUARANTINED,
    REASON_TENANT_QUOTA,
)


def spec(tenant="default"):
    return JobSpec(kind="campaign", tenant=tenant)


class TestDecisions:
    def test_admits_when_capacity_available(self, tmp_path):
        ctrl = AdmissionController(max_queue=4)
        with JobRegistry(tmp_path) as reg:
            decision = ctrl.decide(spec(), reg)
            assert decision.admitted
            assert decision.reason == "admitted"

    def test_queue_full_sheds(self, tmp_path):
        ctrl = AdmissionController(max_queue=2)
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec())
            reg.submit(spec())
            decision = ctrl.decide(spec(), reg)
            assert not decision.admitted
            assert decision.reason == REASON_QUEUE_FULL
            # Leasing a job frees queue capacity.
            reg.lease(reg.queued()[0].job_id, owner="w0")
            assert ctrl.decide(spec(), reg).admitted

    def test_tenant_quota_counts_active_not_queued(self, tmp_path):
        ctrl = AdmissionController(max_queue=16, tenant_quota=2)
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec("t1"))
            leased = reg.submit(spec("t1"))
            reg.lease(leased.job_id, owner="w0")  # leased still counts
            decision = ctrl.decide(spec("t1"), reg)
            assert decision.reason == REASON_TENANT_QUOTA
            # Other tenants are unaffected.
            assert ctrl.decide(spec("t2"), reg).admitted
            # Terminal jobs release quota.
            reg.transition(leased.job_id, JobState.CANCELLED)
            assert ctrl.decide(spec("t1"), reg).admitted

    def test_quarantine_trips_per_tenant(self, tmp_path):
        ctrl = AdmissionController(max_queue=16, tenant_fail_threshold=3)
        with JobRegistry(tmp_path) as reg:
            for _ in range(2):
                assert not ctrl.record_failure("bad")
            assert ctrl.decide(spec("bad"), reg).admitted
            assert ctrl.record_failure("bad")  # third failure trips
            decision = ctrl.decide(spec("bad"), reg)
            assert decision.reason == REASON_TENANT_QUARANTINED
            # The breaker cell is per tenant; "good" is unaffected.
            assert ctrl.decide(spec("good"), reg).admitted

    def test_draining_sheds_everything(self, tmp_path):
        ctrl = AdmissionController(max_queue=16)
        with JobRegistry(tmp_path) as reg:
            decision = ctrl.decide(spec(), reg, draining=True)
            assert decision.reason == REASON_DRAINING

    def test_rejections_counted_and_snapshotted(self, tmp_path):
        ctrl = AdmissionController(max_queue=1, tenant_fail_threshold=1)
        with JobRegistry(tmp_path) as reg:
            reg.submit(spec())
            ctrl.decide(spec(), reg)
            ctrl.decide(spec(), reg)
            ctrl.decide(spec(), reg, draining=True)
            state = ctrl.state_dict()
            assert state["rejections"] == {
                REASON_QUEUE_FULL: 2,
                REASON_DRAINING: 1,
            }
            assert state["breaker"] is not None

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError, match="tenant_quota"):
            AdmissionController(tenant_quota=0)

    def test_failure_recording_without_breaker_is_noop(self):
        ctrl = AdmissionController()
        assert ctrl.record_failure("anyone") is False
        assert ctrl.state_dict()["breaker"] is None
