"""ServiceEventBus semantics (driven deterministically via poll_once)
plus the offline half: read-only registry loading and ServiceReport.
"""

import json
import os

import pytest

from repro.service import (
    JobRegistry,
    JobSpec,
    JobState,
    ServiceEventBus,
    ServiceReport,
    Supervisor,
    job_trace_path,
    load_registry_records,
)
from repro.service.registry import RegistryError
from repro.telemetry import JsonlSink

FAST = {"engine": "bo", "budget": 6, "seed": 0}


def run_one_job(tmp_path, params=FAST, *, job_traces=True):
    """Registry + inline supervisor, one finished job.  Returns
    (registry, supervisor, record)."""
    registry = JobRegistry(tmp_path / "registry")
    sup = Supervisor(
        registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True,
        job_traces=job_traces,
    )
    rec, decision = sup.submit(JobSpec(kind="campaign", params=dict(params)))
    assert decision.admitted
    sup.run(drain_when_idle=True, poll_interval=0.0)
    return registry, sup, registry.get(rec.job_id)


def drain_sub(sub):
    out = []
    while True:
        item = sub.get(timeout=0)
        if item is None:
            return out
        out.append(item)


class TestBusEventMapping:
    def test_full_lifecycle_event_order(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        # Bus created before the WAL is read: replay from an empty seq
        # horizon is exercised by the snapshot path instead.
        bus = sup.event_bus()
        sub = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        events = [e for _, e in drain_sub(sub)]
        names = [e["event"] for e in events]
        # Catch-up snapshot first, then the trace, then completion.
        assert names[0] == "job_state"
        assert events[0]["snapshot"] is True
        assert "tune_start" in names
        assert names.count("combo_result") == FAST["budget"]
        assert "job_progress" in names
        assert names[-1] == "job_done"
        # job_done strictly after every combo_result.
        assert max(i for i, n in enumerate(names) if n == "combo_result") \
            < names.index("job_done")
        done = events[-1]
        assert done["state"] == JobState.DONE
        assert done["fingerprint"] == rec.result["fingerprint"]
        assert done["best_objective"] == rec.result["best_objective"]
        sub.close()
        bus.close()
        registry.close()

    def test_combo_result_payload(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        sub = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        combos = [
            e for _, e in drain_sub(sub) if e["event"] == "combo_result"
        ]
        assert [c["seq"] for c in combos] == list(range(FAST["budget"]))
        for c in combos:
            assert c["job"] == rec.job_id
            assert c["status"] == "ok"
            assert isinstance(c["objective"], float)
            assert isinstance(c["best"], float)
            assert "config_hash" in c
        # best is monotonically non-increasing (minimization).
        bests = [c["best"] for c in combos]
        assert bests == sorted(bests, reverse=True)
        bus.close()
        registry.close()

    def test_progress_payload(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        sub = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        progress = [
            e for _, e in drain_sub(sub) if e["event"] == "job_progress"
        ]
        assert progress
        last = progress[-1]
        assert last["done"] == FAST["budget"]
        assert last["budget"] == FAST["budget"]
        assert last["best"] is not None
        assert "eta_seconds" in last and "throughput" in last
        bus.close()
        registry.close()

    def test_live_polling_interleaves_wal_and_trace(self, tmp_path):
        """Events submitted after the bus exists arrive via WAL tailing
        (not the snapshot), carrying kind/tenant."""
        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
        )
        bus = sup.event_bus()
        sub = bus.subscribe()
        rec, _ = sup.submit(JobSpec(kind="campaign", tenant="t9", params=FAST))
        bus.poll_once()
        submitted = [e for _, e in drain_sub(sub) if e["event"] == "job_state"]
        assert submitted[0]["tenant"] == "t9"
        assert submitted[0]["kind"] == "campaign"
        assert "snapshot" not in submitted[0]
        sup.run(drain_when_idle=True, poll_interval=0.0)
        bus.poll_once()
        names = [e["event"] for _, e in drain_sub(sub)]
        assert names[-1] == "job_done"
        bus.close()
        registry.close()

    def test_all_terminal_states_emit_job_done(self, tmp_path):
        """Failed jobs terminate their streams too — a watcher never
        hangs on a job that errored."""
        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1,
            inline=True, max_attempts=1,
        )
        rec, _ = sup.submit(
            JobSpec(kind="campaign", params={**FAST, "engine": "nonsense"})
        )
        sup.run(drain_when_idle=True, poll_interval=0.0)
        assert registry.get(rec.job_id).state == JobState.FAILED
        bus = sup.event_bus()
        sub = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        events = [e for _, e in drain_sub(sub)]
        assert events[-1]["event"] == "job_done"
        assert events[-1]["state"] == JobState.FAILED
        assert events[-1]["error"]
        bus.close()
        registry.close()


class TestCursorResume:
    def test_resume_after_cursor_is_exact(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        first = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        all_items = drain_sub(first)
        first.close()
        mid = all_items[len(all_items) // 2][0]
        resumed = bus.subscribe(job_id=rec.job_id, after=mid)
        got = drain_sub(resumed)
        assert got == all_items[len(all_items) // 2 + 1:]
        resumed.close()
        bus.close()
        registry.close()

    def test_no_duplicates_across_many_resume_points(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        base = bus.subscribe(job_id=rec.job_id)
        bus.poll_once()
        items = drain_sub(base)
        cursors = [c for c, _ in items]
        for cut in cursors:
            sub = bus.subscribe(job_id=rec.job_id, after=cut)
            tail = [c for c, _ in drain_sub(sub)]
            assert tail == [c for c in cursors if c > cut]
            sub.close()
        bus.close()
        registry.close()


class TestPollerLifecycle:
    def test_no_poller_until_first_subscriber(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        assert not bus.poller_running
        sub = bus.subscribe()
        assert bus.poller_running
        sub.close()
        deadline = __import__("time").monotonic() + 5.0
        while bus.poller_running:
            if __import__("time").monotonic() > deadline:
                pytest.fail("poller did not stop after last unsubscribe")
            __import__("time").sleep(0.01)
        bus.close()
        registry.close()

    def test_poller_restarts_for_new_subscriber(self, tmp_path):
        import time

        registry, sup, rec = run_one_job(tmp_path)
        bus = sup.event_bus()
        sub1 = bus.subscribe()
        sub1.close()
        deadline = time.monotonic() + 5.0
        while bus.poller_running and time.monotonic() < deadline:
            time.sleep(0.01)
        sub2 = bus.subscribe(job_id=rec.job_id)
        assert bus.poller_running
        # And it actually delivers.
        deadline = time.monotonic() + 10.0
        names = []
        while time.monotonic() < deadline:
            item = sub2.get(timeout=0.5)
            if item is None:
                continue
            names.append(item[1]["event"])
            if names[-1] == "job_done":
                break
        assert names[-1] == "job_done"
        sub2.close()
        bus.close()
        registry.close()

    def test_supervisor_event_bus_is_lazy_singleton(self, tmp_path):
        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(registry, jobs_dir=str(tmp_path / "jobs"), inline=True)
        assert sup._event_bus is None  # nothing exists unobserved
        bus = sup.event_bus()
        assert sup.event_bus() is bus
        sup.close_event_bus()
        assert sup._event_bus is None
        registry.close()


class TestOfflineRegistryReader:
    def test_reads_live_registry_without_writing(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        wal = registry.wal_path
        before = open(wal, "rb").read()
        records = load_registry_records(tmp_path / "registry")
        assert open(wal, "rb").read() == before  # strictly read-only
        assert [r.job_id for r in records] == [rec.job_id]
        assert records[0].state == JobState.DONE
        assert records[0].result["fingerprint"] == rec.result["fingerprint"]
        registry.close()

    def test_survives_compaction(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        registry.compact()
        records = load_registry_records(tmp_path / "registry")
        assert records[0].state == JobState.DONE
        registry.close()

    def test_tolerates_torn_tail_only_at_end(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        registry.close()
        wal = os.path.join(tmp_path, "registry", "registry.wal.jsonl")
        with open(wal, "a") as f:
            f.write('{"event": "transition", "seq": 99')  # torn final line
        records = load_registry_records(tmp_path / "registry")
        assert records[0].state == JobState.DONE

    def test_rejects_mid_file_corruption(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path)
        registry.close()
        wal = os.path.join(tmp_path, "registry", "registry.wal.jsonl")
        lines = open(wal).read().splitlines()
        lines[1] = "garbage"
        with open(wal, "w") as f:
            f.write("\n".join(lines) + "\n")
        with pytest.raises(RegistryError):
            load_registry_records(tmp_path / "registry")


class TestServiceReport:
    def test_cross_job_aggregation(self, tmp_path):
        registry = JobRegistry(tmp_path / "registry")
        sup = Supervisor(
            registry, jobs_dir=str(tmp_path / "jobs"), workers=1, inline=True
        )
        recs = []
        for seed in (0, 1):
            rec, _ = sup.submit(
                JobSpec(kind="campaign", params={**FAST, "seed": seed})
            )
            recs.append(rec)
        sup.run(drain_when_idle=True, poll_interval=0.0)
        report = ServiceReport.from_service_dir(tmp_path)
        assert len(report.jobs) == 2
        for summary in report.jobs:
            assert summary.state == JobState.DONE
            assert summary.evaluations == FAST["budget"]
            assert summary.best_objective is not None
            assert summary.fingerprint
        merged = report.merged_timing()
        # Merged totals = sum of per-job totals for every stage.
        for region, (total, count) in merged.entries.items():
            per_job = [
                j.timing.entries.get(region, (0.0, 0)) for j in report.jobs
            ]
            assert total == pytest.approx(sum(t for t, _ in per_job))
            assert count == sum(c for _, c in per_job)
        text = report.format()
        for rec in recs:
            assert rec.job_id in text
        assert "cross-job stage wall-time attribution" in text
        registry.close()

    def test_jobs_without_traces_still_reported(self, tmp_path):
        registry, sup, rec = run_one_job(tmp_path, job_traces=False)
        assert not os.path.exists(
            job_trace_path(os.path.join(tmp_path, "jobs", rec.job_id))
        )
        report = ServiceReport.from_service_dir(tmp_path)
        assert report.jobs[0].evaluations == 0  # no trace: honest zero
        assert report.jobs[0].state == JobState.DONE
        registry.close()
