"""Tests for EncodedPool / SharedMatrix and the executor's shared-memory
pool lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, EncodedPool, SharedMatrix
from repro.bo.pool import SharedMatrix as _SM
from repro.search.runner import SearchCampaign, SearchSpec
from repro.space import Integer, Real, SearchSpace


def small_space(name="pool-space"):
    return SearchSpace(
        [Integer("bs", 1, 64), Real("f", 0.1, 10.0, log=True)], name=name
    )


def _objective(cfg):
    return cfg["bs"] * 0.01 + abs(np.log(cfg["f"]))


@pytest.fixture
def pool():
    sp = small_space()
    cfgs = sp.sample_batch(100, np.random.default_rng(0), unique=True)
    return sp, EncodedPool.from_configs(sp, cfgs)


class TestEncodedPool:
    def test_from_configs_encodes_once_bitwise(self, pool):
        sp, p = pool
        np.testing.assert_array_equal(p.X, sp.encode_batch(p.configs))
        assert len(p) == 100
        assert p.keys == [
            tuple(c[k] for k in sp.names) for c in p.configs
        ]

    def test_row_count_mismatch_rejected(self, pool):
        sp, p = pool
        with pytest.raises(ValueError):
            EncodedPool(p.configs[:-1], p.X)

    def test_local_backend_by_default(self, pool):
        _, p = pool
        assert not p.is_shared
        assert p.backend == "local"

    def test_ensure_shared_and_release_roundtrip(self, pool):
        _, p = pool
        before = p.X.copy()
        assert p.ensure_shared()
        assert p.is_shared and p.backend == "shared"
        np.testing.assert_array_equal(p.X, before)
        assert p.ensure_shared()  # idempotent
        p.release()
        assert not p.is_shared
        np.testing.assert_array_equal(p.X, before)
        p.release()  # no-op on a local pool

    def test_shared_view_is_read_only(self, pool):
        _, p = pool
        assert p.ensure_shared()
        try:
            with pytest.raises(ValueError):
                p.X[0, 0] = 123.0
        finally:
            p.release()


class TestSharedMatrix:
    def test_requires_2d(self):
        with pytest.raises(ValueError):
            SharedMatrix(np.zeros(4))

    def test_pickle_roundtrip_is_a_handle_not_a_copy(self):
        arr = np.random.default_rng(1).random((500, 8))
        sm = SharedMatrix(arr)
        try:
            payload = pickle.dumps(sm)
            # handle-sized, not data-sized (500*8*8 = 32000 bytes)
            assert len(payload) < 1000
            attached = pickle.loads(payload)
            assert not attached.owner
            np.testing.assert_array_equal(attached.array, arr)
            attached.close()  # non-owner close never unlinks
            np.testing.assert_array_equal(sm.array, arr)
        finally:
            sm.close()

    def test_owner_flag(self):
        sm = SharedMatrix(np.zeros((2, 2)))
        try:
            assert sm.owner
        finally:
            sm.close()


class TestOptimizerWithPool:
    def test_fixed_pool_proposals_come_from_pool(self, pool):
        sp, p = pool
        result = BayesianOptimizer(
            sp, _objective, max_evaluations=12, random_state=0,
            candidate_pool=p,
        ).run()
        pool_keys = set(p.keys)
        # Proposed (non-initial-design) configs come from the pool.
        for rec in result.database.records[5:]:
            key = tuple(rec.config[k] for k in sp.names)
            assert key in pool_keys

    def test_shared_and_local_pool_runs_bit_identical(self, pool):
        sp, p = pool
        r_local = BayesianOptimizer(
            sp, _objective, max_evaluations=12, random_state=0,
            candidate_pool=p,
        ).run()
        assert p.ensure_shared()
        try:
            r_shared = BayesianOptimizer(
                sp, _objective, max_evaluations=12, random_state=0,
                candidate_pool=p,
            ).run()
        finally:
            p.release()
        assert [r.config for r in r_local.database] == [
            r.config for r in r_shared.database
        ]
        assert r_local.best_objective == r_shared.best_objective


class TestCampaignSharedPoolLifecycle:
    def _specs(self, pool_cfgs):
        sp1, sp2 = small_space("g1"), small_space("g2")
        return [
            SearchSpec(sp1, _objective, max_evaluations=10,
                       candidate_pool=EncodedPool.from_configs(sp1, pool_cfgs)),
            SearchSpec(sp2, _objective, max_evaluations=10,
                       candidate_pool=EncodedPool.from_configs(sp2, pool_cfgs)),
        ]

    @pytest.fixture
    def pool_cfgs(self):
        return small_space("gen").sample_batch(
            200, np.random.default_rng(0), unique=True
        )

    def test_parallel_equals_sequential_with_shared_pool(self, pool_cfgs):
        specs_par = self._specs(pool_cfgs)
        res_par = SearchCampaign(
            specs_par, random_state=7, parallel=True, n_workers=2
        ).run()
        res_seq = SearchCampaign(
            self._specs(pool_cfgs), random_state=7, parallel=False
        ).run()
        for a, b in zip(res_par.searches, res_seq.searches):
            assert [r.config for r in a.database] == [
                r.config for r in b.database
            ]
            assert a.best_objective == b.best_objective
        # The executor released every segment it promoted.
        for spec in specs_par:
            assert not spec.candidate_pool.is_shared

    def test_executor_releases_pools_even_on_member_failure(self, pool_cfgs):
        def boom(cfg):
            raise RuntimeError("objective exploded")

        sp = small_space("g1")
        spec = SearchSpec(
            sp, boom, max_evaluations=6,
            candidate_pool=EncodedPool.from_configs(sp, pool_cfgs),
        )
        # All-failed searches raise inside the engine; the executor's
        # finally block must still release the promoted segment.
        with pytest.raises(Exception):
            SearchCampaign(
                [spec, spec], random_state=1, parallel=False
            ).run()
        assert not spec.candidate_pool.is_shared

    def test_shared_payload_smaller_than_local(self, pool_cfgs):
        sp = small_space("g1")
        big = EncodedPool.from_configs(
            sp,
            small_space("gen").sample_batch(
                1500, np.random.default_rng(1), unique=True
            ),
        )
        spec = SearchSpec(sp, _objective, candidate_pool=big)
        local_bytes = len(pickle.dumps(spec))
        assert big.ensure_shared()
        try:
            shared_bytes = len(pickle.dumps(spec))
        finally:
            big.release()
        # The (m, d) matrix (1500*2*8 = 24k) collapses to a handle.
        assert shared_bytes < local_bytes - 20_000
