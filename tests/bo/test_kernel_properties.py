"""Property-based kernel/GP invariants (seeded splitmix64 generators).

Every case is a deterministic function of its seed (see
``tests/bo/harness/generators``), so a failing case id is a complete
reproduction recipe.  Seeds 0–39 run everywhere; the long tail carries
the ``slow`` marker and runs fully in CI (locally: ``-m "not slow"``).

Invariants checked, per generated (kernel, data) case:

* kernel matrix symmetry and diag consistency,
* positive-definiteness after the GP's jitter,
* posterior variance non-negativity,
* monotone shrinkage — conditioning on more data never increases the
  posterior variance at any probe point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo.gp import GaussianProcess

from .harness.generators import (
    SplitMix64,
    objective_values,
    random_kernel,
    training_matrix,
)

FAST_SEEDS = range(40)
SLOW_SEEDS = range(40, 240)

ALL_SEEDS = [pytest.param(s, id=f"case{s}") for s in FAST_SEEDS] + [
    pytest.param(s, id=f"case{s}", marks=pytest.mark.slow) for s in SLOW_SEEDS
]


def _case(seed: int):
    """Deterministic (kernel, X, y, probes) draw for one case id."""
    rng = SplitMix64(seed)
    dim = rng.int_between(1, 5)
    n = rng.int_between(3, 24)
    kernel = random_kernel(rng, dim)
    X = training_matrix(rng, n, dim)
    y = objective_values(rng, X)
    probes = training_matrix(rng, rng.int_between(2, 12), dim)
    return kernel, X, y, probes


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_kernel_matrix_invariants(seed):
    kernel, X, _, probes = _case(seed)
    K = kernel(X)

    # Symmetry (exact: the implementations compute K from symmetric
    # pairwise distances) and shape.
    assert K.shape == (X.shape[0], X.shape[0])
    np.testing.assert_allclose(K, K.T, rtol=0, atol=1e-12)

    # The diagonal must equal the dedicated diag() evaluation.
    np.testing.assert_allclose(np.diag(K), kernel.diag(X), rtol=1e-12)

    # Cross-covariance consistency: K(X, X) == K computed pairwise.
    np.testing.assert_allclose(kernel(X, X), K, rtol=0, atol=1e-12)

    # PSD after the GP's base jitter: the smallest eigenvalue of
    # K + jitter*I must be positive (this is what fit() factorizes).
    jitter = 1e-10
    w = np.linalg.eigvalsh(K + jitter * np.eye(K.shape[0]))
    assert w.min() > -1e-10, f"min eigenvalue {w.min()} after jitter"


@pytest.mark.parametrize("seed", ALL_SEEDS)
def test_posterior_variance_invariants(seed):
    kernel, X, y, probes = _case(seed)
    gp = GaussianProcess(kernel=kernel, noise=1e-4, random_state=0)
    gp.fit(X, y, optimize=False)

    mu, std = gp.predict(probes)
    assert np.all(np.isfinite(mu))
    assert np.all(std >= 0.0), "posterior std must be non-negative"

    # Monotone shrinkage: conditioning on one more observation never
    # increases the posterior variance anywhere (up to solver roundoff).
    rng = SplitMix64(seed ^ 0xD1F7)
    x_new = training_matrix(rng, 1, X.shape[1])
    y_new = objective_values(rng, x_new)
    before = gp.predict(probes)[1]

    grown = GaussianProcess(kernel=kernel.clone(), noise=1e-4, random_state=0)
    grown.noise = gp.noise
    grown.jitter = gp.jitter
    grown.fit(np.vstack([X, x_new]), np.append(y, y_new), optimize=False)
    after = grown.predict(probes)[1]

    # Shrinkage holds for the *normalized* process; compare in that scale
    # so the y-renormalization the extra point causes doesn't obscure it.
    assert np.all(
        after / grown._y_std <= before / gp._y_std + 1e-6
    ), "posterior variance grew after adding an observation"


@pytest.mark.parametrize("seed", [pytest.param(s, id=f"case{s}") for s in range(20)])
def test_kernel_clone_is_independent(seed):
    """clone() must copy hyperparameters, not alias them."""
    rng = SplitMix64(seed)
    kernel = random_kernel(rng, rng.int_between(1, 4))
    copy = kernel.clone()
    np.testing.assert_array_equal(kernel.theta, copy.theta)
    copy.theta = copy.theta + 1.0
    assert not np.array_equal(kernel.theta, copy.theta)
