"""Tests for the related-work high-dimensional BO strategies."""

import numpy as np
import pytest

from repro.bo import AdditiveBO, DropoutBO, RandomEmbeddingBO
from repro.search import RandomSearch
from repro.space import ExpressionConstraint, Real, SearchSpace


def space(d=12):
    return SearchSpace([Real(f"x{i}", 0.0, 1.0) for i in range(d)], name="hd")


def low_effective_dim(c):
    """12 visible dims, 3 effective dims."""
    return (c["x0"] - 0.3) ** 2 + (c["x5"] - 0.7) ** 2 + (c["x9"] - 0.5) ** 2 + 0.01


class TestRandomEmbedding:
    def test_finds_low_dim_structure(self):
        r = RandomEmbeddingBO(
            space(), low_effective_dim, latent_dim=4,
            max_evaluations=50, random_state=0,
        ).run()
        assert r.best_objective < 0.15

    def test_projection_always_in_domain(self):
        bo = RandomEmbeddingBO(space(), low_effective_dim, latent_dim=3,
                               random_state=0)
        for z in bo._sample_latent(50):
            cfg = bo._project(z)
            for p in bo.space.parameters:
                assert p.contains(cfg[p.name])

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomEmbeddingBO(space(), low_effective_dim, latent_dim=0)


class TestDropout:
    def test_runs_and_improves(self):
        r = DropoutBO(
            space(), low_effective_dim, active_dims=4,
            max_evaluations=50, random_state=0,
        ).run()
        rs = RandomSearch(space(), low_effective_dim, max_evaluations=50,
                          random_state=0).run()
        assert r.best_objective <= rs.best_objective * 1.2

    def test_respects_constraints(self):
        sp = SearchSpace(
            [Real("a", 0.0, 1.0), Real("b", 0.0, 1.0), Real("c", 0.0, 1.0)],
            [ExpressionConstraint("a + b <= 1.2")],
        )
        r = DropoutBO(sp, lambda cfg: cfg["a"] + cfg["b"] + cfg["c"] + 0.1,
                      active_dims=2, max_evaluations=20, random_state=0).run()
        for rec in r.database:
            assert rec.config["a"] + rec.config["b"] <= 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            DropoutBO(space(), low_effective_dim, active_dims=0)
        with pytest.raises(ValueError):
            DropoutBO(space(3), low_effective_dim, active_dims=5)


class TestAdditive:
    def test_correct_decomposition_works_well(self):
        """Truly additive objective + correct groups: near-optimal."""
        sp = space(8)

        def additive(c):
            return sum((c[f"x{i}"] - 0.4) ** 2 for i in range(8)) + 0.01

        groups = [[f"x{i}" for i in range(0, 4)], [f"x{i}" for i in range(4, 8)]]
        add, rand = [], []
        for seed in range(3):
            r = AdditiveBO(sp, additive, groups, max_evaluations=60,
                           random_state=seed).run()
            add.append(r.best_objective)
            rs = RandomSearch(sp, additive, max_evaluations=60,
                              random_state=seed).run()
            rand.append(rs.best_objective)
        # On average competitive with random search and inside the
        # optimum's basin.  (The other group's contribution acts as
        # observation noise for each group GP, so exact convergence is not
        # expected at this budget.)
        assert np.mean(add) <= np.mean(rand) * 1.1
        assert np.mean(add) < 0.35

    def test_wrong_decomposition_hurts(self):
        """A strong cross-group interaction breaks the additive model —
        the failure mode the methodology's interdependence analysis
        prevents."""
        sp = space(6)

        def coupled(c):
            # x0 and x3 interact multiplicatively across the group split.
            return (c["x0"] * c["x3"] - 0.25) ** 2 + sum(
                (c[f"x{i}"] - 0.5) ** 2 for i in (1, 2, 4, 5)
            ) + 0.01

        wrong = [["x0", "x1", "x2"], ["x3", "x4", "x5"]]
        scores_wrong, scores_joint = [], []
        for seed in range(3):
            w = AdditiveBO(sp, coupled, wrong, max_evaluations=40,
                           random_state=seed).run()
            scores_wrong.append(w.best_objective)
            from repro.bo import BayesianOptimizer

            j = BayesianOptimizer(sp, coupled, max_evaluations=40,
                                  random_state=seed).run()
            scores_joint.append(j.best_objective)
        assert np.mean(scores_joint) <= np.mean(scores_wrong) * 1.1

    def test_groups_must_partition(self):
        sp = space(4)
        with pytest.raises(ValueError):
            AdditiveBO(sp, low_effective_dim, [["x0", "x1"]])
        with pytest.raises(ValueError):
            AdditiveBO(sp, low_effective_dim, [["x0", "x1"], ["x1", "x2", "x3"]])


class TestCommon:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda sp, f: RandomEmbeddingBO(sp, f, latent_dim=3,
                                            max_evaluations=15, random_state=1),
            lambda sp, f: DropoutBO(sp, f, active_dims=3,
                                    max_evaluations=15, random_state=1),
            lambda sp, f: AdditiveBO(
                sp, f,
                [[f"x{i}" for i in range(0, 6)], [f"x{i}" for i in range(6, 12)]],
                max_evaluations=15, random_state=1,
            ),
        ],
    )
    def test_budget_and_result_shape(self, factory):
        r = factory(space(), low_effective_dim).run()
        assert r.n_evaluations == 15
        assert np.isfinite(r.best_objective)
        assert len(r.trajectory) >= 1
