"""Tests for the opt-in approximate surrogates (``approx=`` in the BO loop).

Covers the subset-of-data and inducing-point paths:

* :func:`farthest_point_subset` — deterministic, incumbent-seeded,
  sorted, correct size;
* :class:`InducingPointGP` — DTC posterior close to the exact GP,
  fit time bounded by the inducing count, posterior sampling shaped
  correctly;
* the optimizer knobs — ``approx=`` engages only past
  ``approx_threshold``, the default stays exact, invalid names are
  rejected, and proposals remain deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, GaussianProcess
from repro.bo.highdim import InducingPointGP, farthest_point_subset
from repro.bo.kernels import kernel_by_name
from repro.space import Real, SearchSpace


def _data(n, dim=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, dim))
    y = ((X - 0.4) ** 2).sum(axis=1) + 0.01 * rng.standard_normal(n)
    return X, y


class TestFarthestPointSubset:
    def test_size_and_sorted(self):
        X, y = _data(50)
        idx = farthest_point_subset(X, y, 12)
        assert idx.shape == (12,)
        assert np.all(np.diff(idx) > 0)  # sorted, unique

    def test_contains_incumbent(self):
        X, y = _data(50)
        idx = farthest_point_subset(X, y, 12)
        assert int(np.argmin(y)) in idx

    def test_deterministic(self):
        X, y = _data(80, seed=3)
        a = farthest_point_subset(X, y, 20)
        b = farthest_point_subset(X.copy(), y.copy(), 20)
        np.testing.assert_array_equal(a, b)

    def test_m_at_least_n_returns_all(self):
        X, y = _data(10)
        np.testing.assert_array_equal(
            farthest_point_subset(X, y, 10), np.arange(10)
        )
        np.testing.assert_array_equal(
            farthest_point_subset(X, y, 99), np.arange(10)
        )

    def test_spreads_over_clusters(self):
        # Two tight clusters: a max-min design must pick from both.
        rng = np.random.default_rng(0)
        a = 0.05 * rng.random((30, 2))
        b = 0.05 * rng.random((30, 2)) + 0.9
        X = np.vstack([a, b])
        y = np.arange(60, dtype=float)
        idx = farthest_point_subset(X, y, 6)
        assert np.any(idx < 30) and np.any(idx >= 30)


class TestInducingPointGP:
    def test_close_to_exact_gp(self):
        X, y = _data(300, seed=1)
        exact = GaussianProcess(dim=2, random_state=0).fit(X, y)
        sparse = InducingPointGP(
            kernel_by_name("matern52", 2), random_state=0
        ).fit(X, y, n_inducing=120)
        Xq = np.random.default_rng(9).random((64, 2))
        mu_e, std_e = exact.predict(Xq)
        mu_s, std_s = sparse.predict(Xq)
        # DTC is an approximation: demand tight agreement in mean and
        # rank correlation, not bit-identity.
        assert np.max(np.abs(mu_e - mu_s)) < 0.05
        assert np.corrcoef(mu_e, mu_s)[0, 1] > 0.999
        assert np.all(std_s >= 0.0)

    def test_all_points_inducing_matches_exact_closely(self):
        X, y = _data(60, seed=2)
        exact = GaussianProcess(dim=2, random_state=0).fit(X, y, optimize=False)
        sparse = InducingPointGP(
            kernel_by_name("matern52", 2), random_state=0
        ).fit(X, y, optimize=False, n_inducing=60)
        Xq = np.random.default_rng(4).random((32, 2))
        mu_e, _ = exact.predict(Xq)
        mu_s, _ = sparse.predict(Xq)
        np.testing.assert_allclose(mu_s, mu_e, atol=1e-6)

    def test_posterior_samples_shape_and_determinism(self):
        X, y = _data(100, seed=5)
        sparse = InducingPointGP(
            kernel_by_name("matern52", 2), random_state=0
        ).fit(X, y, n_inducing=40)
        Xq = np.random.default_rng(1).random((16, 2))
        s1 = sparse.sample_posterior(Xq, n_samples=3,
                                     rng=np.random.default_rng(7))
        s2 = sparse.sample_posterior(Xq, n_samples=3,
                                     rng=np.random.default_rng(7))
        assert s1.shape == (3, 16)
        np.testing.assert_array_equal(s1, s2)

    def test_fit_mode_attrs(self):
        X, y = _data(50)
        sparse = InducingPointGP(
            kernel_by_name("matern52", 2), random_state=0
        ).fit(X, y, n_inducing=20)
        assert sparse.last_fit_mode == "inducing"
        assert sparse.n_inducing == 20
        assert sparse.n_train == 50
        assert sparse.is_fit


def _quadratic_space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="q")


def _quadratic(cfg):
    return (cfg["a"] - 0.3) ** 2 + (cfg["b"] - 0.7) ** 2 + 0.01


class TestOptimizerApproxKnob:
    def test_invalid_approx_rejected(self):
        with pytest.raises(ValueError, match="approx"):
            BayesianOptimizer(
                _quadratic_space(), _quadratic, approx="vecchia"
            )

    def test_default_stays_exact(self):
        opt = BayesianOptimizer(
            _quadratic_space(), _quadratic, max_evaluations=10, random_state=0
        )
        opt.run()
        assert opt.approx is None
        assert opt.last_surrogate == "exact"

    @pytest.mark.parametrize("mode", ["sod", "inducing"])
    def test_engages_past_threshold_only(self, mode):
        opt = BayesianOptimizer(
            _quadratic_space(), _quadratic, max_evaluations=20,
            random_state=0, approx=mode, approx_size=10, approx_threshold=12,
        )
        result = opt.run()
        assert len(result.database) == 20
        # Past the threshold the last fit ran the approximate surrogate.
        assert opt.last_surrogate == mode
        assert opt.last_fit_mode == mode

    @pytest.mark.parametrize("mode", ["sod", "inducing"])
    def test_below_threshold_identical_to_exact(self, mode):
        base = BayesianOptimizer(
            _quadratic_space(), _quadratic, max_evaluations=12, random_state=4
        ).run()
        approx = BayesianOptimizer(
            _quadratic_space(), _quadratic, max_evaluations=12,
            random_state=4, approx=mode, approx_threshold=500,
        ).run()
        assert [r.config for r in base.database] == [
            r.config for r in approx.database
        ]

    @pytest.mark.parametrize("mode", ["sod", "inducing"])
    def test_deterministic_given_seed(self, mode):
        def run():
            return BayesianOptimizer(
                _quadratic_space(), _quadratic, max_evaluations=18,
                random_state=11, approx=mode, approx_size=8,
                approx_threshold=10,
            ).run()

        a, b = run(), run()
        assert [r.config for r in a.database] == [r.config for r in b.database]

    def test_approx_still_converges(self):
        result = BayesianOptimizer(
            _quadratic_space(), _quadratic, max_evaluations=25,
            random_state=0, approx="sod", approx_size=12, approx_threshold=10,
        ).run()
        assert result.best_objective < 0.08
