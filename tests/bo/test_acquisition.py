"""Tests for acquisition functions and the constrained maximizer."""

import numpy as np
import pytest

from repro.bo import (
    ExpectedImprovement,
    GaussianProcess,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    ThompsonSampling,
    acquisition_by_name,
    maximize_acquisition,
)
from repro.space import ExpressionConstraint, Integer, Real, SearchSpace


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    X = rng.random((20, 2))
    y = (X[:, 0] - 0.3) ** 2 + (X[:, 1] - 0.7) ** 2
    return GaussianProcess(dim=2, random_state=0).fit(X, y)


@pytest.fixture
def space():
    return SearchSpace(
        [Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)],
        [ExpressionConstraint("a + b <= 1.5")],
        name="acq",
    )


class TestExpectedImprovement:
    def test_nonnegative(self, model):
        X = np.random.default_rng(1).random((50, 2))
        ei = ExpectedImprovement()(model, X, incumbent=0.2)
        assert np.all(ei >= 0)

    def test_zero_improvement_when_incumbent_unbeatable(self, model):
        X = np.random.default_rng(1).random((50, 2))
        ei = ExpectedImprovement(xi=0.0)(model, X, incumbent=-100.0)
        assert np.all(ei < 1e-6)

    def test_prefers_low_mean_at_equal_std(self):
        # Two training points; candidates mirror them so stds match.
        X = np.array([[0.2, 0.2], [0.8, 0.8]])
        y = np.array([0.0, 1.0])
        m = GaussianProcess(dim=2, noise=1e-6, optimize_noise=False, random_state=0).fit(X, y)
        scores = ExpectedImprovement()(m, X, incumbent=0.5)
        assert scores[0] > scores[1]


class TestProbabilityOfImprovement:
    def test_bounded(self, model):
        X = np.random.default_rng(1).random((50, 2))
        pi = ProbabilityOfImprovement()(model, X, incumbent=0.2)
        assert np.all((pi >= 0) & (pi <= 1))


class TestLCB:
    def test_beta_schedule(self):
        lcb = LowerConfidenceBound(beta=3.0, beta_final=0.5)
        lcb.update(0, 10)
        assert lcb.beta == pytest.approx(3.0)
        lcb.update(9, 10)
        assert lcb.beta == pytest.approx(0.5)

    def test_higher_beta_rewards_uncertainty(self, model):
        X_near = np.array([[0.3, 0.7]])
        X_far = np.array([[0.99, 0.01]])
        lo = LowerConfidenceBound(beta=0.01)
        hi = LowerConfidenceBound(beta=10.0)
        # With large beta the uncertain far point scores relatively better.
        rel_lo = lo(model, X_far, 0)[0] - lo(model, X_near, 0)[0]
        rel_hi = hi(model, X_far, 0)[0] - hi(model, X_near, 0)[0]
        assert rel_hi > rel_lo

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LowerConfidenceBound(beta=0.0)


class TestThompson:
    def test_deterministic_given_seed(self, model):
        X = np.random.default_rng(2).random((10, 2))
        a = ThompsonSampling(random_state=5)(model, X, 0.0)
        b = ThompsonSampling(random_state=5)(model, X, 0.0)
        assert np.allclose(a, b)


class TestFactory:
    @pytest.mark.parametrize("name", ["ei", "pi", "lcb", "ts"])
    def test_known(self, name):
        assert acquisition_by_name(name) is not None

    def test_unknown(self):
        with pytest.raises(ValueError):
            acquisition_by_name("ucbish")


class TestMaximizer:
    def test_returns_feasible(self, model, space):
        rng = np.random.default_rng(0)
        cfg = maximize_acquisition(
            ExpectedImprovement(), model, space, incumbent=0.5, rng=rng
        )
        assert space.is_valid(cfg)

    def test_excludes_evaluated(self, model):
        # Tiny discrete space: with all but one config excluded, the
        # remaining one must be suggested.
        sp = SearchSpace([Integer("a", 0, 1), Integer("b", 0, 1)])
        rng = np.random.default_rng(0)
        X = sp.encode_batch([{"a": 0, "b": 0}])
        m = GaussianProcess(dim=2, random_state=0).fit(X, np.array([1.0]))
        exclude = [{"a": 0, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 0}]
        cfg = maximize_acquisition(
            ExpectedImprovement(), m, sp, 1.0, rng, n_candidates=64, exclude=exclude
        )
        assert cfg == {"a": 1, "b": 1}

    def test_moves_toward_minimum(self, model, space):
        # The quadratic has its minimum at (0.3, 0.7); EI should suggest
        # something much closer to it than a random point on average.
        rng = np.random.default_rng(3)
        cfg = maximize_acquisition(
            ExpectedImprovement(), model, space, incumbent=0.05, rng=rng,
            n_candidates=2048,
        )
        dist = np.hypot(cfg["a"] - 0.3, cfg["b"] - 0.7)
        assert dist < 0.45


class TestDegeneratePosterior:
    """Regression: near-zero posterior std must not produce negative EI.

    A GP trained on (numerically) duplicated points has an essentially
    zero posterior std *at* those points; catastrophic cancellation in
    ``imp * cdf(z) + std * pdf(z)`` used to return tiny negative EI
    values (~-1e-17) there, which outranked genuine zeros and could
    steer the argmax.
    """

    @pytest.fixture
    def degenerate(self):
        # Duplicate the same point (plus eps-perturbed copies) so the
        # posterior collapses onto the observation.
        base = np.array([[0.5, 0.5]])
        X = np.vstack([base] * 3 + [base + 1e-9, [[0.9, 0.1]]])
        y = np.array([1.0, 1.0, 1.0, 1.0, 2.0])
        return GaussianProcess(dim=2, random_state=0).fit(X, y, optimize=False)

    def test_ei_nonnegative_at_training_points(self, degenerate):
        # Score exactly the collapsed points with an unbeatable incumbent:
        # improvement is negative, std ~ 0 -> the cancellation-prone branch.
        X = np.vstack([[[0.5, 0.5]]] * 4 + [[[0.9, 0.1]]])
        for incumbent in (0.5, 1.0, 1.0 - 1e-12):
            ei = ExpectedImprovement()(degenerate, X, incumbent=incumbent)
            assert np.all(ei >= 0.0), f"negative EI at incumbent={incumbent}: {ei}"
            assert np.all(np.isfinite(ei))

    def test_pi_bounded_at_training_points(self, degenerate):
        X = np.vstack([[[0.5, 0.5]]] * 4 + [[[0.9, 0.1]]])
        pi = ProbabilityOfImprovement()(degenerate, X, incumbent=0.5)
        assert np.all(pi >= 0.0) and np.all(pi <= 1.0)

    def test_ei_zero_not_outranked_by_cancellation(self, degenerate):
        # All candidates sit at the degenerate point: every EI is exactly
        # 0 after the clamp, so the argmax is the first index, not
        # whichever candidate's rounding error was least negative.
        X = np.vstack([[[0.5, 0.5]]] * 8)
        ei = ExpectedImprovement()(degenerate, X, incumbent=0.5)
        assert np.all(ei == 0.0)


class TestThompsonRngKeying:
    """TS draws must be keyed by the caller's stream when provided."""

    def test_explicit_rng_overrides_private_state(self, model):
        X = np.random.default_rng(2).random((10, 2))
        ts = ThompsonSampling(random_state=5)
        a = ts(model, X, 0.0, rng=np.random.default_rng(42))
        b = ThompsonSampling(random_state=99)(
            model, X, 0.0, rng=np.random.default_rng(42)
        )
        # Same caller stream -> same draw, regardless of private state.
        assert np.array_equal(a, b)

    def test_explicit_rng_does_not_consume_private_state(self, model):
        X = np.random.default_rng(2).random((10, 2))
        ts = ThompsonSampling(random_state=5)
        before = ts.rng.bit_generator.state
        ts(model, X, 0.0, rng=np.random.default_rng(0))
        assert ts.rng.bit_generator.state == before

    def test_fallback_to_private_rng_without_caller_stream(self, model):
        X = np.random.default_rng(2).random((10, 2))
        a = ThompsonSampling(random_state=5)(model, X, 0.0)
        b = ThompsonSampling(random_state=5)(model, X, 0.0)
        assert np.array_equal(a, b)
