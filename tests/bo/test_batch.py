"""Tests for constant-liar batch BO."""

import numpy as np
import pytest

from repro.bo import BatchBayesianOptimizer, BayesianOptimizer
from repro.space import Integer, Real, SearchSpace


def space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="q")


def objective(c):
    return (c["a"] - 0.3) ** 2 + (c["b"] - 0.7) ** 2 + 0.05


class TestSuggestBatch:
    def test_batch_is_diverse(self):
        opt = BatchBayesianOptimizer(
            space(), objective, batch_size=4, max_evaluations=30, random_state=0
        )
        for cfg in space().latin_hypercube(6, np.random.default_rng(0)):
            from repro.bo import Evaluation

            opt.database.append(
                Evaluation(config=cfg, objective=objective(cfg), cost=1.0)
            )
        batch = opt.suggest_batch()
        assert len(batch) == 4
        keys = {tuple(c.values()) for c in batch}
        assert len(keys) == 4  # no duplicate suggestions within a round

    def test_cold_start_batch_random(self):
        opt = BatchBayesianOptimizer(
            space(), objective, batch_size=3, max_evaluations=30, random_state=0
        )
        assert len(opt.suggest_batch()) == 3


class TestRun:
    def test_budget_respected(self):
        r = BatchBayesianOptimizer(
            space(), objective, batch_size=4, max_evaluations=22, random_state=0
        ).run()
        assert 22 <= r.n_evaluations <= 25  # last round may not divide evenly
        assert len(r.database.ok_records()) >= 22

    def test_quality_matches_sequential(self):
        batch_best, seq_best = [], []
        for seed in range(3):
            b = BatchBayesianOptimizer(
                space(), objective, batch_size=4, max_evaluations=24,
                random_state=seed,
            ).run()
            s = BayesianOptimizer(
                space(), objective, max_evaluations=24, random_state=seed
            ).run()
            batch_best.append(b.best_objective)
            seq_best.append(s.best_objective)
        assert np.mean(batch_best) <= np.mean(seq_best) * 1.5

    def test_parallel_cost_accounting(self):
        """A round of q evaluations is charged the max cost, so the batch
        optimizer's simulated evaluation wall-clock is far below the
        sequential sum."""
        r = BatchBayesianOptimizer(
            space(), objective, batch_size=4, max_evaluations=24, random_state=0
        ).run()
        total = sum(rec.cost for rec in r.database)
        assert r.evaluation_cost < 0.5 * total

    def test_discrete_space(self):
        sp = SearchSpace([Integer("n", 0, 15)])
        r = BatchBayesianOptimizer(
            sp, lambda c: abs(c["n"] - 11) + 1.0, batch_size=3,
            max_evaluations=12, random_state=0,
        ).run()
        assert r.best_config["n"] == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchBayesianOptimizer(space(), objective, batch_size=0)
        with pytest.raises(ValueError):
            BatchBayesianOptimizer(space(), objective, lie="median")
