"""Seeded property-based generators (splitmix64 — no new dependencies).

The harness needs hundreds of reproducible "random" cases without pulling
in a property-testing framework.  A :class:`SplitMix64` stream — the same
output mix :mod:`repro.faults.injection` uses for its fault channels —
gives every case a deterministic identity: case *i* of seed *s* is the
same on every machine, every run, forever, so a failing case number is a
complete bug report.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bo.kernels import Kernel, kernel_by_name
from repro.space import (
    Categorical,
    Constant,
    ExpressionConstraint,
    Integer,
    Ordinal,
    Real,
    SearchSpace,
)

__all__ = [
    "SplitMix64",
    "training_matrix",
    "objective_values",
    "random_kernel",
    "update_sequence",
    "random_space",
]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """Splitmix64 output mix (Steele, Lea & Flood 2014)."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class SplitMix64:
    """Minimal deterministic PRNG for generator streams.

    Same constants as ``repro.faults.injection``; deliberately tiny —
    uniforms, integers, choices, and Box–Muller normals are all the
    generators need.
    """

    def __init__(self, seed: int):
        self._state = int(seed) & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix64(self._state)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * (self.next_u64() / 2.0**64)

    def int_between(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return low + self.next_u64() % (high - low + 1)

    def choice(self, seq):
        return seq[self.next_u64() % len(seq)]

    def normal(self) -> float:
        """One standard normal via Box–Muller."""
        u1 = max(self.next_u64() / 2.0**64, 1e-300)
        u2 = self.next_u64() / 2.0**64
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def spawn(self, key: int) -> "SplitMix64":
        """Derived independent stream (e.g. one per case index)."""
        return SplitMix64(_mix64((self._state ^ _mix64(key & _MASK64)) & _MASK64))


# ----------------------------------------------------------------------
# Numeric generators (kernel / GP properties)
# ----------------------------------------------------------------------

def training_matrix(rng: SplitMix64, n: int, dim: int) -> np.ndarray:
    """``(n, dim)`` inputs in the unit cube, deduplicated by jitter.

    Points are uniform with a small per-coordinate perturbation so exact
    duplicates (which make ``K`` singular regardless of jitter) cannot
    occur, keeping the generated cases about the *math*, not about
    degenerate data.
    """
    X = np.empty((n, dim))
    for i in range(n):
        for j in range(dim):
            X[i, j] = rng.uniform()
    return X


def objective_values(rng: SplitMix64, X: np.ndarray, noise: float = 0.05) -> np.ndarray:
    """Smooth deterministic targets: random quadratic bowl + noise."""
    dim = X.shape[1]
    center = np.array([rng.uniform() for _ in range(dim)])
    weights = np.array([rng.uniform(0.5, 2.0) for _ in range(dim)])
    y = ((X - center) ** 2 * weights).sum(axis=1)
    return y + noise * np.array([rng.normal() for _ in range(X.shape[0])])


_KERNEL_NAMES = ("rbf", "matern32", "matern52")


def random_kernel(rng: SplitMix64, dim: int) -> Kernel:
    """A kernel with randomized (bounded) log-hyperparameters."""
    kernel = kernel_by_name(rng.choice(_KERNEL_NAMES), dim)
    # theta is log-space: keep lengthscales/variance in a sane range so
    # the conditioning of K stays a property of the math, not the draw.
    theta = np.array(
        [rng.uniform(math.log(0.2), math.log(3.0)) for _ in kernel.theta]
    )
    kernel.theta = theta
    return kernel


def update_sequence(
    rng: SplitMix64,
    *,
    dim: int | None = None,
    n_initial: int | None = None,
    n_chunks: int | None = None,
) -> tuple[np.ndarray, np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
    """An initial training block plus a list of update chunks.

    Returns ``(X0, y0, [(X1, y1), (X2, y2), ...])`` where chunk sizes vary
    between 1 and 3 rows — exactly the shapes
    :meth:`repro.bo.gp.GaussianProcess.update` sees in the BO loop (one
    new observation) and the constant-liar batch proposer (a few).
    """
    dim = dim if dim is not None else rng.int_between(1, 4)
    n_initial = n_initial if n_initial is not None else rng.int_between(3, 10)
    n_chunks = n_chunks if n_chunks is not None else rng.int_between(1, 6)
    X0 = training_matrix(rng, n_initial, dim)
    y0 = objective_values(rng, X0)
    chunks = []
    for _ in range(n_chunks):
        m = rng.int_between(1, 3)
        Xc = training_matrix(rng, m, dim)
        chunks.append((Xc, objective_values(rng, Xc)))
    return X0, y0, chunks


# ----------------------------------------------------------------------
# Search-space generator (space properties)
# ----------------------------------------------------------------------

def random_space(rng: SplitMix64, *, max_params: int = 5) -> SearchSpace:
    """A random mixed search space, optionally constrained.

    Covers every parameter type :mod:`repro.space` serializes (linear and
    log Real/Integer, Categorical, Ordinal, Constant) plus — in about a
    third of the draws — an always-satisfiable expression constraint
    between two numeric parameters, so repair sampling paths get
    exercised too.
    """
    n_params = rng.int_between(1, max_params)
    params = []
    numeric: list[tuple[str, float, float]] = []  # (name, low, high)
    for i in range(n_params):
        name = f"p{i}"
        kind = rng.int_between(0, 5)
        if kind == 0:
            low = rng.uniform(-5.0, 0.0)
            high = low + rng.uniform(0.5, 10.0)
            params.append(Real(name, low, high))
            numeric.append((name, low, high))
        elif kind == 1:
            low = rng.uniform(1e-3, 1.0)
            high = low * rng.uniform(10.0, 1e3)
            params.append(Real(name, low, high, log=True))
            numeric.append((name, low, high))
        elif kind == 2:
            low = rng.int_between(-8, 4)
            high = low + rng.int_between(1, 40)
            params.append(Integer(name, low, high))
            numeric.append((name, low, high))
        elif kind == 3:
            low = rng.int_between(1, 4)
            high = low * rng.int_between(4, 64)
            params.append(Integer(name, low, high, log=True))
            numeric.append((name, low, high))
        elif kind == 4:
            n_choices = rng.int_between(2, 5)
            params.append(Categorical(name, [f"c{j}" for j in range(n_choices)]))
        else:
            n_values = rng.int_between(2, 6)
            params.append(Ordinal(name, [2**j for j in range(n_values)]))
    if rng.uniform() < 0.25:
        params.append(Constant(f"p{n_params}", rng.choice(["fixed", 7, 2.5])))
    constraints = []
    if numeric and rng.uniform() < 0.35:
        # Satisfiable by construction (the threshold sits strictly inside
        # the range) but rejects real probability mass, so constrained
        # sampling and repair actually run.
        name, low, high = numeric[0]
        threshold = low + 0.7 * (high - low)
        constraints.append(
            ExpressionConstraint(f"{name} <= {threshold!r}", name="cap")
        )
    return SearchSpace(params, constraints, name=f"gen-{rng.next_u64() % 10**6}")
