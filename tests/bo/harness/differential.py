"""Differential runner: the fast path must not change what BO proposes.

Runs seeded BO campaigns twice — incremental Cholesky updates on vs. off —
over a deterministic family of objectives and compares the *entire*
proposal sequence (every configuration the optimizer evaluated, in
order).  The fast path is only shippable because this holds exactly: the
rank-1-extended factor agrees with the full refit to floating-point
rounding, and the periodic K-refit bounds the accumulated drift, which
this runner also collects from the ``gp_fit`` telemetry spans and
reports.

Usable three ways:

* imported by ``tests/bo/test_incremental_vs_refit.py``,
* imported by ``benchmarks/bench_gp_incremental.py`` (the acceptance
  criterion ties the speedup claim to proposal identity on these seeds),
* run directly in CI::

      PYTHONPATH=src python -m tests.bo.harness.differential --seeds 0,1,2
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bo.optimizer import BayesianOptimizer
from repro.space import Integer, Real, SearchSpace
from repro.telemetry import Telemetry
from repro.telemetry.sinks import MemorySink

from .generators import SplitMix64

__all__ = ["DifferentialReport", "make_space", "make_objective",
           "run_campaign", "run_differential", "main"]


def make_space(seed: int) -> SearchSpace:
    """Deterministic small mixed space (continuous + integer) per seed."""
    rng = SplitMix64(seed * 7919 + 13)
    dims = rng.int_between(2, 4)
    params = []
    for i in range(dims):
        if rng.uniform() < 0.7:
            low = rng.uniform(-2.0, 0.0)
            params.append(Real(f"x{i}", low, low + rng.uniform(1.0, 4.0)))
        else:
            params.append(Integer(f"x{i}", 1, rng.int_between(8, 32)))
    return SearchSpace(params, name=f"diff-{seed}")


def make_objective(space: SearchSpace, seed: int):
    """Deterministic multimodal objective over the encoded unit cube."""
    rng = SplitMix64(seed * 104729 + 7)
    d = space.dimension
    center = np.array([rng.uniform(0.2, 0.8) for _ in range(d)])
    weights = np.array([rng.uniform(0.5, 3.0) for _ in range(d)])
    freq = np.array([rng.uniform(2.0, 6.0) for _ in range(d)])

    def objective(config: dict[str, Any]) -> float:
        x = space.encode(config)
        bowl = float(((x - center) ** 2 * weights).sum())
        ripple = float(0.1 * np.sin(freq * x).sum())
        return bowl + ripple

    return objective


@dataclass
class CampaignRun:
    """One executed campaign: its proposals and its gp_fit span record."""

    proposals: list[tuple]
    modes: list[str]
    drifts: list[float]

    @property
    def n_incremental(self) -> int:
        return sum(1 for m in self.modes if m == "incremental")

    @property
    def max_drift(self) -> float:
        return max(self.drifts, default=0.0)


@dataclass
class DifferentialReport:
    """Fast-path-on vs. fast-path-off comparison for one seed."""

    seed: int
    identical: bool
    n_proposals: int
    n_incremental_fits: int
    max_drift: float
    first_divergence: int | None = None

    def line(self) -> str:
        status = "identical" if self.identical else (
            f"DIVERGED at proposal {self.first_divergence}"
        )
        return (
            f"seed {self.seed:>3}: {status}  "
            f"({self.n_proposals} proposals, "
            f"{self.n_incremental_fits} incremental fits, "
            f"max drift {self.max_drift:.3e})"
        )


def run_campaign(
    seed: int,
    *,
    incremental: bool,
    max_evaluations: int = 30,
    n_initial: int = 5,
    full_refit_every: int = 4,
    acquisition: str = "ei",
    database=None,
) -> CampaignRun:
    """One seeded BO campaign; gp_fit modes/drifts come from telemetry."""
    space = make_space(seed)
    sink = MemorySink()
    telemetry = Telemetry([sink])
    opt = BayesianOptimizer(
        space,
        make_objective(space, seed),
        n_initial=n_initial,
        max_evaluations=max_evaluations,
        incremental=incremental,
        full_refit_every=full_refit_every,
        acquisition=acquisition,
        random_state=seed,
        database=database,
        tracer=telemetry.tracer(f"diff-{seed}"),
    )
    result = opt.run()
    proposals = [
        tuple(sorted(r.config.items())) for r in result.database
    ]
    fits = [e for e in sink.events
            if e.get("kind") == "span" and e.get("name") == "gp_fit"]
    modes = [e["attrs"]["mode"] for e in fits]
    drifts = [e["attrs"]["drift"] for e in fits if "drift" in e["attrs"]]
    return CampaignRun(proposals=proposals, modes=modes, drifts=drifts)


def run_differential(
    seed: int, *, max_evaluations: int = 30, full_refit_every: int = 4,
    acquisition: str = "ei",
) -> DifferentialReport:
    """Compare fast-path-on vs. fast-path-off campaigns for one seed.

    ``acquisition`` selects which acquisition drives both arms, so the
    proposal-identity guarantee is checked per acquisition path — the
    batched EI/PI/LCB ufunc scoring and the stream-keyed Thompson draw
    all go through the same comparison.
    """
    on = run_campaign(
        seed, incremental=True, max_evaluations=max_evaluations,
        full_refit_every=full_refit_every, acquisition=acquisition,
    )
    off = run_campaign(
        seed, incremental=False, max_evaluations=max_evaluations,
        full_refit_every=full_refit_every, acquisition=acquisition,
    )
    identical = on.proposals == off.proposals
    first = None
    if not identical:
        for i, (a, b) in enumerate(zip(on.proposals, off.proposals)):
            if a != b:
                first = i
                break
        else:
            first = min(len(on.proposals), len(off.proposals))
    return DifferentialReport(
        seed=seed,
        identical=identical,
        n_proposals=len(on.proposals),
        n_incremental_fits=on.n_incremental,
        max_drift=on.max_drift,
        first_divergence=first,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential harness: incremental-GP on vs. off"
    )
    parser.add_argument(
        "--seeds", default="0,1,2",
        help="comma-separated campaign seeds (default: 0,1,2)",
    )
    parser.add_argument(
        "--max-evaluations", type=int, default=30,
        help="evaluation budget per campaign (default: 30)",
    )
    parser.add_argument(
        "--full-refit-every", type=int, default=4,
        help="K-refit knob under test (default: 4)",
    )
    parser.add_argument(
        "--acquisitions", default="ei",
        help="comma-separated acquisition names to differential-test "
             "(default: ei; e.g. ei,pi,lcb,ts)",
    )
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    acquisitions = [a.strip() for a in args.acquisitions.split(",") if a.strip()]
    failures = 0
    n_runs = 0
    for acq in acquisitions:
        for seed in seeds:
            n_runs += 1
            report = run_differential(
                seed,
                max_evaluations=args.max_evaluations,
                full_refit_every=args.full_refit_every,
                acquisition=acq,
            )
            print(f"[{acq:>3}] {report.line()}")
            if not report.identical:
                failures += 1
            if report.n_incremental_fits == 0:
                print(f"[{acq:>3}] seed {seed:>3}: WARNING — "
                      "no incremental fits exercised")
                failures += 1
    if failures:
        print(f"{failures} of {n_runs} runs FAILED")
        return 1
    print(f"all {n_runs} runs passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
