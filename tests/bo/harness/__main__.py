"""CLI entry point: ``python -m tests.bo.harness --seeds 0,1,2``."""

from .differential import main

if __name__ == "__main__":
    raise SystemExit(main())
