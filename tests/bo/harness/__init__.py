"""Correctness harness for the incremental-GP fast path.

Two pillars, both dependency-free (seeded splitmix64 streams matching
``repro.faults.injection`` — no hypothesis, no new packages):

:mod:`~tests.bo.harness.generators`
    Seeded property-based generators: a :class:`SplitMix64` PRNG plus
    small deterministic builders for training matrices, kernels, update
    sequences, and random search spaces.  The property suites
    (``tests/bo/test_kernel_properties.py``,
    ``tests/space/test_space_properties.py``,
    ``tests/bo/test_incremental_vs_refit.py``) draw their cases here.

:mod:`~tests.bo.harness.differential`
    The differential runner: executes seeded BO campaigns with the fast
    path on vs. off, asserts identical proposal sequences, and records
    the numerical drift the ``gp_fit`` spans measure at each periodic
    full refit.  Also runnable as a CLI for CI::

        PYTHONPATH=src python -m tests.bo.harness.differential --seeds 0,1,2
"""

from .differential import DifferentialReport, run_campaign, run_differential
from .generators import (
    SplitMix64,
    objective_values,
    random_kernel,
    random_space,
    training_matrix,
    update_sequence,
)

__all__ = [
    "SplitMix64",
    "DifferentialReport",
    "objective_values",
    "random_kernel",
    "random_space",
    "run_campaign",
    "run_differential",
    "training_matrix",
    "update_sequence",
]
