"""Property suite: every acquisition, random GPs, random pools.

Seeded :class:`SplitMix64` cases (no new dependencies — see
``tests/bo/harness/generators``) assert the acquisition-layer contract
the batched hot path relies on:

* every acquisition in ``_ACQUISITIONS`` returns finite,
  correctly-signed scores over arbitrary posteriors and pools;
* the batched path (one ``predict`` over the ``(m, d)`` matrix, then a
  pure-ufunc ``score``) matches a per-candidate reference loop;
* ``score_candidates`` masks non-finite scores so they can never win
  the argmax.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import GaussianProcess, score_candidates
from repro.bo.acquisition import _ACQUISITIONS, ThompsonSampling

from .harness.generators import (
    SplitMix64,
    objective_values,
    random_kernel,
    training_matrix,
)

N_CASES = 25
_SEED = 0xACC


def _case(i: int):
    """Deterministic case *i*: a fit GP plus a random candidate pool."""
    rng = SplitMix64(_SEED).spawn(i)
    dim = rng.int_between(1, 4)
    n = rng.int_between(4, 15)
    m = rng.int_between(1, 60)
    X = training_matrix(rng, n, dim)
    y = objective_values(rng, X)
    model = GaussianProcess(
        kernel=random_kernel(rng, dim), random_state=0
    ).fit(X, y, optimize=False)
    pool = training_matrix(rng, m, dim)
    incumbent = float(np.min(y)) - rng.uniform(-0.5, 0.5)
    return model, pool, incumbent


@pytest.mark.parametrize("case", range(N_CASES))
@pytest.mark.parametrize("name", sorted(_ACQUISITIONS))
def test_scores_finite_and_correctly_signed(name, case):
    model, pool, incumbent = _case(case)
    acq = _ACQUISITIONS[name]()
    rng = np.random.default_rng(case)
    scores = np.asarray(acq(model, pool, incumbent, rng))
    assert scores.shape == (pool.shape[0],)
    assert np.all(np.isfinite(scores)), f"{name} case {case}: non-finite"
    if name == "ei":
        assert np.all(scores >= 0.0), f"EI case {case}: negative"
    elif name == "pi":
        assert np.all((scores >= 0.0) & (scores <= 1.0))
    elif name == "ts":
        # TS scores are negated posterior draws: bounded by the
        # posterior scale, not astronomically large.
        assert np.all(np.abs(scores) < 1e6)


@pytest.mark.parametrize("case", range(N_CASES))
@pytest.mark.parametrize("name", ["ei", "pi", "lcb"])
def test_batched_matches_per_candidate_loop(name, case):
    """One batched call == scoring each candidate row separately.

    The per-row loop is the pre-vectorization reference semantics; the
    marginal posterior of candidate *i* does not depend on its pool
    neighbours, so batching may only change BLAS kernel choice (gemv vs
    gemm), never the math.
    """
    model, pool, incumbent = _case(case)
    acq = _ACQUISITIONS[name]()
    batched = np.asarray(acq(model, pool, incumbent))
    loop = np.concatenate(
        [np.asarray(acq(model, pool[i : i + 1], incumbent))
         for i in range(pool.shape[0])]
    )
    np.testing.assert_allclose(batched, loop, rtol=1e-9, atol=1e-12)
    # and the proposal each path would make is the same candidate
    assert int(np.argmax(batched)) == int(np.argmax(loop))


@pytest.mark.parametrize("case", range(N_CASES))
def test_score_via_ufunc_split_matches_call(case):
    """`score(mu, std, incumbent)` composed with one predict == __call__."""
    model, pool, incumbent = _case(case)
    mu, std = model.predict(pool)
    for name in ("ei", "pi", "lcb"):
        acq = _ACQUISITIONS[name]()
        np.testing.assert_array_equal(
            acq.score(mu, std, incumbent), acq(model, pool, incumbent)
        )


@pytest.mark.parametrize("case", range(10))
def test_thompson_batched_draw_deterministic_per_stream(case):
    model, pool, incumbent = _case(case)
    a = ThompsonSampling()(model, pool, incumbent, np.random.default_rng(case))
    b = ThompsonSampling()(model, pool, incumbent, np.random.default_rng(case))
    assert np.array_equal(a, b)


@pytest.mark.parametrize("name", sorted(_ACQUISITIONS))
def test_score_candidates_masks_nonfinite(name):
    """A candidate whose score overflows is masked, never argmax'd."""
    model, pool, incumbent = _case(3)
    acq = _ACQUISITIONS[name]()

    class _Bad:
        def __call__(self, model, X, incumbent, rng=None):
            s = np.asarray(acq(model, X, incumbent, rng), dtype=float)
            s[0] = np.nan
            s[-1] = np.inf if len(s) > 1 else s[-1]
            return s

    scores = score_candidates(_Bad(), model, pool, incumbent,
                              np.random.default_rng(0))
    assert scores[0] == -np.inf
    assert np.all(scores[np.isfinite(scores)] > -np.inf)
