"""Tests for the evaluation database: records, checkpoints, crash
recovery."""

import json
import os

import numpy as np
import pytest

from repro.bo import Evaluation, EvaluationDatabase, EvaluationStatus


def rec(obj, a=1, status=EvaluationStatus.OK, cost=None):
    return Evaluation(
        config={"a": a},
        objective=obj,
        cost=cost if cost is not None else max(obj, 0.0) if np.isfinite(obj) else 0.0,
        status=status,
    )


class TestEvaluation:
    def test_ok_requires_finite(self):
        with pytest.raises(ValueError):
            Evaluation(config={}, objective=float("nan"))

    def test_failed_allows_nan(self):
        e = Evaluation(config={}, objective=float("nan"), status=EvaluationStatus.FAILED)
        assert not e.ok

    def test_unknown_status(self):
        with pytest.raises(ValueError):
            Evaluation(config={}, objective=1.0, status="weird")

    def test_roundtrip_dict(self):
        e = Evaluation(
            config={"a": np.int64(3), "x": np.float64(1.5)},
            objective=np.float64(2.0),
            cost=2.0,
            meta={"arr": np.array([1.0, 2.0])},
        )
        d = e.to_dict()
        json.dumps(d)  # must be JSON-serializable
        e2 = Evaluation.from_dict(d)
        assert e2.config == {"a": 3, "x": 1.5}
        assert e2.objective == 2.0


class TestDatabase:
    def test_best_and_trajectory(self):
        db = EvaluationDatabase()
        for v in (5.0, 3.0, 4.0, 1.0, 2.0):
            db.append(rec(v))
        assert db.best().objective == 1.0
        assert np.allclose(db.best_so_far(), [5, 3, 3, 1, 1])

    def test_best_ignores_failures(self):
        db = EvaluationDatabase()
        db.append(rec(float("nan"), status=EvaluationStatus.FAILED))
        db.append(rec(2.0))
        assert db.best().objective == 2.0
        assert len(db.failed_configs()) == 1
        assert len(db.ok_records()) == 1

    def test_best_empty_raises(self):
        with pytest.raises(LookupError):
            EvaluationDatabase().best()

    def test_total_cost(self):
        db = EvaluationDatabase()
        db.append(rec(2.0))
        db.append(rec(3.0))
        assert db.total_cost() == pytest.approx(5.0)

    def test_len_iter_getitem(self):
        db = EvaluationDatabase()
        db.extend([rec(1.0), rec(2.0)])
        assert len(db) == 2
        assert [r.objective for r in db] == [1.0, 2.0]
        assert db[1].objective == 2.0


class TestCheckpointing:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "db.json"
        db = EvaluationDatabase(path, task="cs1")
        db.append(rec(2.0))
        db.append(rec(1.0))

        db2 = EvaluationDatabase(path)
        assert db2.task == "cs1"
        assert len(db2) == 2
        assert db2.best().objective == 1.0

    def test_crash_recovery_resumes(self, tmp_path):
        """A new database pointed at an existing checkpoint replays it."""
        path = tmp_path / "db.json"
        db = EvaluationDatabase(path)
        db.append(rec(3.0))
        del db  # "crash"

        resumed = EvaluationDatabase(path)
        resumed.append(rec(1.5))
        assert len(resumed) == 2

        final = EvaluationDatabase(path)
        assert [r.objective for r in final] == [3.0, 1.5]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "db.json"
        db = EvaluationDatabase(path)
        for i in range(5):
            db.append(rec(float(i + 1)))
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []

    def test_checkpoint_always_parseable(self, tmp_path):
        path = tmp_path / "db.json"
        db = EvaluationDatabase(path)
        for i in range(3):
            db.append(rec(float(i + 1)))
            with open(path) as f:
                payload = json.load(f)
            assert len(payload["records"]) == i + 1

    def test_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "db.json"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))
        assert path.exists()


class TestJsonlCheckpointing:
    """Append-only JSONL incremental checkpoints (O(1) I/O per append)."""

    def test_jsonl_inferred_from_suffix(self, tmp_path):
        db = EvaluationDatabase(tmp_path / "db.jsonl")
        assert db.format == "jsonl"
        db_json = EvaluationDatabase(tmp_path / "db.json")
        assert db_json.format == "json"

    def test_invalid_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EvaluationDatabase(tmp_path / "db.json", format="xml")

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path, task="cs1")
        db.append(rec(2.0))
        db.append(rec(1.0))
        db.extend([rec(3.0)])

        loaded = EvaluationDatabase(path)
        assert loaded.task == "cs1"
        assert [r.objective for r in loaded] == [2.0, 1.0, 3.0]

    def test_append_writes_one_line_not_a_rewrite(self, tmp_path):
        """The O(N^2)-I/O fix: appending grows the file by exactly one
        line instead of rewriting the entire database."""
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))
        lines_before = path.read_text().splitlines()
        db.append(rec(2.0))
        lines_after = path.read_text().splitlines()
        assert len(lines_after) == len(lines_before) + 1
        assert lines_after[: len(lines_before)] == lines_before

    def test_torn_final_line_is_skipped(self, tmp_path):
        """A crash mid-append leaves a partial last line; the loader must
        recover every complete record."""
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))
        db.append(rec(2.0))
        with open(path, "a") as f:
            f.write('{"config": {"a": 1}, "obj')  # torn write

        loaded = EvaluationDatabase(path)
        assert [r.objective for r in loaded] == [1.0, 2.0]

    def test_append_after_torn_line_stays_parsable(self, tmp_path):
        """Loading repairs a torn tail in place, so the next append
        starts a fresh line instead of concatenating onto the fragment
        (which would corrupt the checkpoint for every later load)."""
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))
        db.append(rec(2.0))
        with open(path, "a") as f:
            f.write('{"config": {"a": 1}, "obj')  # torn write

        resumed = EvaluationDatabase(path)  # load truncates the fragment
        resumed.append(rec(3.0))

        reloaded = EvaluationDatabase(path)
        assert [r.objective for r in reloaded] == [1.0, 2.0, 3.0]
        for line in path.read_text().splitlines():
            json.loads(line)  # every line is complete JSON again

    def test_torn_only_line_removes_file(self, tmp_path):
        """A crash during the very first append leaves just a fragment;
        the loader drops the file so the next append rewrites a header."""
        path = tmp_path / "db.jsonl"
        path.write_text('{"format": "repro-eval')
        db = EvaluationDatabase(path)
        assert list(db) == []
        assert not path.exists()
        db.append(rec(1.0))
        assert [r.objective for r in EvaluationDatabase(path)] == [1.0]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))
        text = path.read_text()
        with open(path, "w") as f:
            f.write(text.replace('"status": "ok"', '"status": "ok'))
            f.write("\n")
        with pytest.raises(json.JSONDecodeError):
            EvaluationDatabase(path)

    def test_loader_autodetects_legacy_snapshot_at_jsonl_path(self, tmp_path):
        """Back-compat: a legacy JSON snapshot is readable regardless of
        the path suffix, and subsequent appends continue in JSONL."""
        path = tmp_path / "db.jsonl"
        legacy = EvaluationDatabase(task="old")
        legacy.append(rec(4.0))
        legacy.save(path)  # legacy single-document snapshot

        db = EvaluationDatabase(path)
        assert db.task == "old"
        assert len(db) == 1
        # The snapshot was converted in place: appends stay line-oriented
        # and reloadable.
        db.append(rec(2.0))
        again = EvaluationDatabase(path)
        assert [r.objective for r in again] == [4.0, 2.0]

    def test_save_jsonl_snapshot(self, tmp_path):
        db = EvaluationDatabase(task="t")
        db.append(rec(1.0))
        db.append(rec(2.0))
        path = tmp_path / "snap.jsonl"
        db.save(path, format="jsonl")
        loaded = EvaluationDatabase(path)
        assert loaded.task == "t"
        assert [r.objective for r in loaded] == [1.0, 2.0]
        with pytest.raises(ValueError):
            db.save(path, format="csv")

    def test_first_append_persists_preexisting_memory_records(self, tmp_path):
        """Records accumulated before the checkpoint file exists are all
        written on the first append."""
        path = tmp_path / "db.jsonl"
        db = EvaluationDatabase(path)
        db.append(rec(1.0))  # creates the file, writes header + record
        db2 = EvaluationDatabase(path)
        assert [r.objective for r in db2] == [1.0]
