"""Tests for the BO loop: convergence, accounting, failures, recovery."""

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, EvaluationDatabase, EvaluationStatus
from repro.search import RandomSearch
from repro.space import Integer, Real, SearchSpace


def quadratic_space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="quad")


def quadratic(cfg):
    return (cfg["a"] - 0.3) ** 2 + (cfg["b"] - 0.7) ** 2 + 0.01


class TestConvergence:
    def test_beats_random_search_on_quadratic(self):
        sp = quadratic_space()
        bo_bests, rs_bests = [], []
        for seed in range(3):
            bo = BayesianOptimizer(sp, quadratic, max_evaluations=30, random_state=seed)
            bo_bests.append(bo.run().best_objective)
            rs = RandomSearch(sp, quadratic, max_evaluations=30, random_state=seed)
            rs_bests.append(rs.run().best_objective)
        assert np.mean(bo_bests) <= np.mean(rs_bests)

    def test_finds_near_optimum(self):
        sp = quadratic_space()
        r = BayesianOptimizer(sp, quadratic, max_evaluations=40, random_state=0).run()
        assert r.best_objective < 0.05

    def test_trajectory_monotone(self):
        sp = quadratic_space()
        r = BayesianOptimizer(sp, quadratic, max_evaluations=20, random_state=1).run()
        traj = r.trajectory
        assert len(traj) == 20
        assert np.all(np.diff(traj) <= 0)


class TestBudgets:
    def test_default_budget_is_10x_dims(self):
        opt = BayesianOptimizer(quadratic_space(), quadratic)
        assert opt.max_evaluations == 20

    def test_exact_evaluation_count(self):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=17, random_state=0
        ).run()
        assert r.n_evaluations == 17
        assert len(r.database) == 17

    def test_n_initial_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(quadratic_space(), quadratic, n_initial=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(
                quadratic_space(), quadratic, n_initial=10, max_evaluations=5
            )


class TestAccounting:
    def test_search_time_components(self):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=15, random_state=0
        ).run()
        # Objective value doubles as simulated cost.
        assert r.evaluation_cost == pytest.approx(
            sum(rec.cost for rec in r.database), rel=1e-9
        )
        assert r.modeling_overhead > 0
        assert r.search_time == pytest.approx(r.evaluation_cost + r.modeling_overhead)

    def test_modeling_overhead_cubic_in_n(self):
        small = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=10, random_state=0
        ).run()
        large = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=40, random_state=0
        ).run()
        # O(N^3) accumulation: 4x evaluations >> 4x modeling cost.
        assert large.modeling_overhead > 8 * small.modeling_overhead


class TestFailureHandling:
    def test_objective_raising_is_recorded(self):
        sp = SearchSpace([Integer("n", 0, 9)], name="f")

        def flaky(cfg):
            if cfg["n"] == 3:
                raise RuntimeError("simulated crash")
            return float(cfg["n"]) + 1.0

        r = BayesianOptimizer(sp, flaky, max_evaluations=9, random_state=0).run()
        statuses = {rec.status for rec in r.database}
        assert r.best_objective >= 1.0
        # The crash configuration is never the winner.
        assert r.best_config["n"] != 3
        assert statuses <= {EvaluationStatus.OK, EvaluationStatus.FAILED}

    def test_timeout_recorded(self):
        sp = quadratic_space()

        def slow(cfg):
            return 100.0 if cfg["a"] > 0.5 else 1.0

        opt = BayesianOptimizer(
            sp, slow, max_evaluations=12, evaluation_timeout=50.0, random_state=0
        )
        r = opt.run()
        timeouts = [rec for rec in r.database if rec.status == EvaluationStatus.TIMEOUT]
        assert timeouts, "expected at least one timeout record"
        for rec in timeouts:
            assert rec.cost <= 50.0
        assert r.best_objective == pytest.approx(1.0)

    def test_all_failures_terminates(self):
        sp = quadratic_space()

        def always_fails(cfg):
            raise RuntimeError("broken")

        opt = BayesianOptimizer(sp, always_fails, max_evaluations=5, random_state=0)
        with pytest.raises(LookupError):
            opt.run()  # database.best() on zero successes


class TestCrashRecovery:
    def test_resume_from_checkpoint(self, tmp_path):
        path = tmp_path / "bo.json"
        sp = quadratic_space()

        db = EvaluationDatabase(path)
        first = BayesianOptimizer(
            sp, quadratic, max_evaluations=10, database=db, random_state=0
        )
        first.run()
        assert len(db) == 10

        # "crash" then resume with a larger budget: replays, evaluates only
        # the remainder.
        db2 = EvaluationDatabase(path)
        assert len(db2) == 10
        second = BayesianOptimizer(
            sp, quadratic, max_evaluations=15, database=db2, random_state=1
        )
        r = second.run()
        assert r.n_evaluations == 5
        assert len(r.database) == 15

    def test_resume_with_met_budget_runs_nothing(self, tmp_path):
        path = tmp_path / "bo.json"
        sp = quadratic_space()
        db = EvaluationDatabase(path)
        BayesianOptimizer(sp, quadratic, max_evaluations=8, database=db, random_state=0).run()

        db2 = EvaluationDatabase(path)
        r = BayesianOptimizer(
            sp, quadratic, max_evaluations=8, database=db2, random_state=1
        ).run()
        assert r.n_evaluations == 0


class TestObjectiveMeta:
    def test_tuple_objective_captures_meta(self):
        sp = quadratic_space()

        def obj(cfg):
            return quadratic(cfg), {"region": "slater"}

        r = BayesianOptimizer(sp, obj, max_evaluations=6, random_state=0).run()
        assert all(rec.meta.get("region") == "slater" for rec in r.database)


class TestAcquisitionChoices:
    @pytest.mark.parametrize("acq", ["ei", "pi", "lcb", "ts"])
    def test_all_acquisitions_run(self, acq):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=12,
            acquisition=acq, random_state=0,
        ).run()
        assert r.best_objective < 0.5
