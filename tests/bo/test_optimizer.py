"""Tests for the BO loop: convergence, accounting, failures, recovery."""

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, EvaluationDatabase, EvaluationStatus
from repro.search import RandomSearch
from repro.space import Integer, Real, SearchSpace


def quadratic_space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="quad")


def quadratic(cfg):
    return (cfg["a"] - 0.3) ** 2 + (cfg["b"] - 0.7) ** 2 + 0.01


class TestConvergence:
    def test_beats_random_search_on_quadratic(self):
        sp = quadratic_space()
        bo_bests, rs_bests = [], []
        for seed in range(3):
            bo = BayesianOptimizer(sp, quadratic, max_evaluations=30, random_state=seed)
            bo_bests.append(bo.run().best_objective)
            rs = RandomSearch(sp, quadratic, max_evaluations=30, random_state=seed)
            rs_bests.append(rs.run().best_objective)
        assert np.mean(bo_bests) <= np.mean(rs_bests)

    def test_finds_near_optimum(self):
        sp = quadratic_space()
        r = BayesianOptimizer(sp, quadratic, max_evaluations=40, random_state=0).run()
        assert r.best_objective < 0.05

    def test_trajectory_monotone(self):
        sp = quadratic_space()
        r = BayesianOptimizer(sp, quadratic, max_evaluations=20, random_state=1).run()
        traj = r.trajectory
        assert len(traj) == 20
        assert np.all(np.diff(traj) <= 0)


class TestBudgets:
    def test_default_budget_is_10x_dims(self):
        opt = BayesianOptimizer(quadratic_space(), quadratic)
        assert opt.max_evaluations == 20

    def test_exact_evaluation_count(self):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=17, random_state=0
        ).run()
        assert r.n_evaluations == 17
        assert len(r.database) == 17

    def test_n_initial_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(quadratic_space(), quadratic, n_initial=0)
        with pytest.raises(ValueError):
            BayesianOptimizer(
                quadratic_space(), quadratic, n_initial=10, max_evaluations=5
            )


class TestAccounting:
    def test_search_time_components(self):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=15, random_state=0
        ).run()
        # Objective value doubles as simulated cost.
        assert r.evaluation_cost == pytest.approx(
            sum(rec.cost for rec in r.database), rel=1e-9
        )
        assert r.modeling_overhead > 0
        assert r.search_time == pytest.approx(r.evaluation_cost + r.modeling_overhead)

    def test_modeling_overhead_cubic_in_n(self):
        small = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=10, random_state=0
        ).run()
        large = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=40, random_state=0
        ).run()
        # O(N^3) accumulation: 4x evaluations >> 4x modeling cost.
        assert large.modeling_overhead > 8 * small.modeling_overhead


class TestFailureHandling:
    def test_objective_raising_is_recorded(self):
        sp = SearchSpace([Integer("n", 0, 9)], name="f")

        def flaky(cfg):
            if cfg["n"] == 3:
                raise RuntimeError("simulated crash")
            return float(cfg["n"]) + 1.0

        r = BayesianOptimizer(sp, flaky, max_evaluations=9, random_state=0).run()
        statuses = {rec.status for rec in r.database}
        assert r.best_objective >= 1.0
        # The crash configuration is never the winner.
        assert r.best_config["n"] != 3
        assert statuses <= {EvaluationStatus.OK, EvaluationStatus.FAILED}

    def test_timeout_recorded(self):
        sp = quadratic_space()

        def slow(cfg):
            return 100.0 if cfg["a"] > 0.5 else 1.0

        opt = BayesianOptimizer(
            sp, slow, max_evaluations=12, evaluation_timeout=50.0, random_state=0
        )
        r = opt.run()
        timeouts = [rec for rec in r.database if rec.status == EvaluationStatus.TIMEOUT]
        assert timeouts, "expected at least one timeout record"
        for rec in timeouts:
            assert rec.cost <= 50.0
        assert r.best_objective == pytest.approx(1.0)

    def test_all_failures_terminates(self):
        sp = quadratic_space()

        def always_fails(cfg):
            raise RuntimeError("broken")

        opt = BayesianOptimizer(sp, always_fails, max_evaluations=5, random_state=0)
        with pytest.raises(LookupError):
            opt.run()  # database.best() on zero successes


class TestEvaluateBranches:
    """Direct coverage of the FAILED/TIMEOUT/non-finite paths and their
    simulated-cost accounting (no real machine seconds in `cost`)."""

    def test_failed_cost_is_simulated_penalty_not_wall_clock(self):
        sp = quadratic_space()

        def crash(cfg):
            raise RuntimeError("boom")

        opt = BayesianOptimizer(sp, crash, max_evaluations=5, random_state=0)
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.status == EvaluationStatus.FAILED
        assert rec.cost == 0.0  # no timeout configured -> default penalty 0
        assert rec.meta["measured_seconds"] >= 0.0
        assert "error" in rec.meta

    def test_failed_cost_uses_timeout_as_default_penalty(self):
        def crash(cfg):
            raise RuntimeError("boom")

        opt = BayesianOptimizer(
            quadratic_space(), crash, max_evaluations=5,
            evaluation_timeout=30.0, random_state=0,
        )
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.status == EvaluationStatus.FAILED
        assert rec.cost == 30.0

    def test_explicit_failure_cost_overrides_timeout(self):
        def crash(cfg):
            raise RuntimeError("boom")

        opt = BayesianOptimizer(
            quadratic_space(), crash, max_evaluations=5,
            evaluation_timeout=30.0, failure_cost=7.0, random_state=0,
        )
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.cost == 7.0

    def test_timeout_charged_at_cap(self):
        opt = BayesianOptimizer(
            quadratic_space(), lambda cfg: 120.0, max_evaluations=5,
            evaluation_timeout=50.0, random_state=0,
        )
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.status == EvaluationStatus.TIMEOUT
        assert rec.cost == 50.0
        assert rec.meta["measured_seconds"] >= 0.0

    def test_nonfinite_with_timeout_is_timeout_at_penalty(self):
        opt = BayesianOptimizer(
            quadratic_space(), lambda cfg: float("inf"), max_evaluations=5,
            evaluation_timeout=50.0, random_state=0,
        )
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.status == EvaluationStatus.TIMEOUT
        assert rec.cost == 50.0

    def test_nonfinite_without_timeout_is_failed(self):
        opt = BayesianOptimizer(
            quadratic_space(), lambda cfg: float("nan"), max_evaluations=5,
            random_state=0,
        )
        rec = opt._evaluate({"a": 0.5, "b": 0.5})
        assert rec.status == EvaluationStatus.FAILED
        assert rec.cost == 0.0

    def test_total_cost_stays_in_simulated_units(self):
        """A crashing objective must not leak perf_counter seconds into
        the summed evaluation cost ledger."""
        sp = SearchSpace([Integer("n", 0, 9)], name="f")

        def flaky(cfg):
            if cfg["n"] == 3:
                raise RuntimeError("simulated crash")
            return float(cfg["n"]) + 1.0

        r = BayesianOptimizer(sp, flaky, max_evaluations=9, random_state=0).run()
        failed = [rec for rec in r.database if not rec.ok]
        assert all(rec.cost == 0.0 for rec in failed)
        ok_sum = sum(rec.cost for rec in r.database if rec.ok)
        assert r.evaluation_cost == pytest.approx(ok_sum)


class TestCrashRecovery:
    def test_resume_from_checkpoint(self, tmp_path):
        path = tmp_path / "bo.json"
        sp = quadratic_space()

        db = EvaluationDatabase(path)
        first = BayesianOptimizer(
            sp, quadratic, max_evaluations=10, database=db, random_state=0
        )
        first.run()
        assert len(db) == 10

        # "crash" then resume with a larger budget: replays, evaluates only
        # the remainder.
        db2 = EvaluationDatabase(path)
        assert len(db2) == 10
        second = BayesianOptimizer(
            sp, quadratic, max_evaluations=15, database=db2, random_state=1
        )
        r = second.run()
        assert r.n_evaluations == 5
        assert len(r.database) == 15

    def test_resume_with_met_budget_runs_nothing(self, tmp_path):
        path = tmp_path / "bo.json"
        sp = quadratic_space()
        db = EvaluationDatabase(path)
        BayesianOptimizer(sp, quadratic, max_evaluations=8, database=db, random_state=0).run()

        db2 = EvaluationDatabase(path)
        r = BayesianOptimizer(
            sp, quadratic, max_evaluations=8, database=db2, random_state=1
        ).run()
        assert r.n_evaluations == 0

    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        """Round-trip acceptance: kill a checkpointed search mid-run,
        resume with the same seed, and the incumbent, every record, and
        the evaluation count match an uninterrupted run."""
        sp = quadratic_space()
        uninterrupted = BayesianOptimizer(
            sp, quadratic, max_evaluations=20, random_state=3
        ).run()

        calls = {"n": 0}

        def killer(cfg):
            calls["n"] += 1
            if calls["n"] > 12:
                raise KeyboardInterrupt  # hard kill, not a FAILED record
            return quadratic(cfg)

        path = tmp_path / "ck.jsonl"
        with pytest.raises(KeyboardInterrupt):
            BayesianOptimizer(
                sp, killer, max_evaluations=20,
                database=EvaluationDatabase(path), random_state=3,
            ).run()
        n_done = len(EvaluationDatabase(path))
        assert n_done == 12

        resumed = BayesianOptimizer(
            sp, quadratic, max_evaluations=20,
            database=EvaluationDatabase(path), random_state=3,
        ).run()
        # Completed evaluations replayed, only the remainder re-run ...
        assert resumed.n_evaluations == 20 - n_done
        assert len(resumed.database) == 20
        # ... and the whole history matches never having crashed.
        assert resumed.best_config == uninterrupted.best_config
        assert resumed.best_objective == uninterrupted.best_objective
        for a, b in zip(resumed.database, uninterrupted.database):
            assert a.config == b.config
            assert a.objective == b.objective

    def test_resume_mid_initial_design(self, tmp_path):
        """A crash inside the LHS initial design resumes with the same
        design points (dedicated init stream)."""
        sp = quadratic_space()
        uninterrupted = BayesianOptimizer(
            sp, quadratic, max_evaluations=12, random_state=9
        ).run()

        calls = {"n": 0}

        def killer(cfg):
            calls["n"] += 1
            if calls["n"] > 3:  # n_initial defaults to 5: die inside it
                raise KeyboardInterrupt
            return quadratic(cfg)

        path = tmp_path / "ck.jsonl"
        with pytest.raises(KeyboardInterrupt):
            BayesianOptimizer(
                sp, killer, max_evaluations=12,
                database=EvaluationDatabase(path), random_state=9,
            ).run()
        assert len(EvaluationDatabase(path)) == 3

        resumed = BayesianOptimizer(
            sp, quadratic, max_evaluations=12,
            database=EvaluationDatabase(path), random_state=9,
        ).run()
        assert resumed.n_evaluations == 9
        assert resumed.best_config == uninterrupted.best_config
        for a, b in zip(resumed.database, uninterrupted.database):
            assert a.config == b.config

    def test_seed_sequence_random_state_accepted(self):
        seed = np.random.SeedSequence(11)
        a = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=10, random_state=seed
        ).run()
        b = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=10,
            random_state=np.random.SeedSequence(11),
        ).run()
        assert a.best_config == b.best_config


class TestObjectiveMeta:
    def test_tuple_objective_captures_meta(self):
        sp = quadratic_space()

        def obj(cfg):
            return quadratic(cfg), {"region": "slater"}

        r = BayesianOptimizer(sp, obj, max_evaluations=6, random_state=0).run()
        assert all(rec.meta.get("region") == "slater" for rec in r.database)


class TestAcquisitionChoices:
    @pytest.mark.parametrize("acq", ["ei", "pi", "lcb", "ts"])
    def test_all_acquisitions_run(self, acq):
        r = BayesianOptimizer(
            quadratic_space(), quadratic, max_evaluations=12,
            acquisition=acq, random_state=0,
        ).run()
        assert r.best_objective < 0.5
