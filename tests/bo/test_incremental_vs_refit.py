"""Differential tests: incremental Cholesky updates vs. full refits.

The fast path's contract, verified three ways:

* **GP level** — after any seeded sequence of rank-1 updates, posterior
  mean and standard deviation agree with a same-hyperparameter full
  refit to ``<= 1e-8`` everywhere (they are the same math, reordered).
* **Optimizer level** — whole BO campaigns propose *identical*
  configuration sequences with the fast path on vs. off
  (``tests/bo/harness/differential``), and the gp_fit spans record
  bounded drift at each periodic K-refit.
* **Crash recovery** — a campaign killed mid-run and resumed from its
  evaluation database rebuilds the incremental state deterministically
  from history (it is never serialized) and continues bit-identically,
  down to the surrogate's Cholesky factor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo.gp import GaussianProcess
from repro.bo.history import EvaluationDatabase
from repro.bo.optimizer import BayesianOptimizer

from .harness.differential import make_objective, make_space, run_campaign, run_differential
from .harness.generators import SplitMix64, random_kernel, training_matrix, update_sequence

GP_SEEDS = [pytest.param(s, id=f"case{s}") for s in range(30)] + [
    pytest.param(s, id=f"case{s}", marks=pytest.mark.slow) for s in range(30, 120)
]

ATOL = 1e-8


@pytest.mark.parametrize("seed", GP_SEEDS)
def test_posterior_agreement_after_update_chain(seed):
    """Mean/std agree <=1e-8 between the incremental chain and a refit."""
    rng = SplitMix64(seed)
    X0, y0, chunks = update_sequence(rng)
    dim = X0.shape[1]
    probes = training_matrix(rng, 8, dim)

    kernel = random_kernel(rng.spawn(1), dim)
    incremental = GaussianProcess(kernel=kernel.clone(), noise=1e-4, random_state=0)
    incremental.fit(X0, y0, optimize=False)

    X_all, y_all = X0, y0
    for Xc, yc in chunks:
        incremental.update(Xc, yc)
        X_all = np.vstack([X_all, Xc])
        y_all = np.append(y_all, yc)

        reference = GaussianProcess(
            kernel=kernel.clone(), noise=1e-4, random_state=0
        )
        reference.jitter = incremental.jitter
        reference.fit(X_all, y_all, optimize=False)

        mu_inc, std_inc = incremental.predict(probes)
        mu_ref, std_ref = reference.predict(probes)
        np.testing.assert_allclose(mu_inc, mu_ref, rtol=0, atol=ATOL)
        np.testing.assert_allclose(std_inc, std_ref, rtol=0, atol=ATOL)

    assert incremental.last_fit_mode == "incremental"
    assert incremental.n_incremental == sum(len(yc) for _, yc in chunks)
    # The extended factor is the exact factor of the extended matrix.
    np.testing.assert_allclose(
        incremental.cholesky_factor,
        reference.cholesky_factor,
        rtol=0,
        atol=ATOL,
    )


@pytest.mark.parametrize("seed", [pytest.param(s, id=f"case{s}") for s in range(20)])
def test_cross_column_cache_consistency(seed):
    """Cached candidate-pool predictions match fresh ones after updates."""
    rng = SplitMix64(seed)
    X0, y0, chunks = update_sequence(rng)
    dim = X0.shape[1]
    pool = training_matrix(rng, 16, dim)  # one pool object, scored repeatedly

    gp = GaussianProcess(kernel=random_kernel(rng.spawn(2), dim),
                         noise=1e-4, random_state=0)
    gp.fit(X0, y0, optimize=False)
    gp.predict(pool)  # prime the cross-column cache
    for Xc, yc in chunks:
        gp.update(Xc, yc)
        mu_cached, std_cached = gp.predict(pool)  # rides the cache
        mu_fresh, std_fresh = gp.predict(pool.copy())  # cache miss by identity
        np.testing.assert_allclose(mu_cached, mu_fresh, rtol=0, atol=ATOL)
        np.testing.assert_allclose(std_cached, std_fresh, rtol=0, atol=ATOL)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_campaign_proposals_identical(seed):
    report = run_differential(seed)
    assert report.identical, report.line()
    # The comparison must actually exercise the fast path, and the drift
    # the K-refits measure must stay within the documented bound.
    assert report.n_incremental_fits > 0
    assert report.max_drift < 1e-6


@pytest.mark.parametrize("seed", [0, 5])
def test_kill_resume_bit_identical_with_fast_path(seed):
    """Incremental state rebuilt from history == never-killed state."""
    space = make_space(seed)
    objective = make_objective(space, seed)

    def build(db=None, max_evaluations=30):
        return BayesianOptimizer(
            space, objective, n_initial=5, max_evaluations=max_evaluations,
            incremental=True, full_refit_every=4, random_state=seed,
            database=db,
        )

    uninterrupted = build()
    uninterrupted.run()

    # Kill after 17 records: replay the first 17 evaluations into a fresh
    # database (what a checkpoint file would hold) and resume.
    killed = build(max_evaluations=17)
    partial = killed.run()
    checkpoint = EvaluationDatabase()
    checkpoint.extend(partial.database.records)
    resumed = build(db=checkpoint)
    resumed.run()

    a = [tuple(sorted(r.config.items())) for r in uninterrupted.database]
    b = [tuple(sorted(r.config.items())) for r in resumed.database]
    assert a == b

    # Stronger than proposal identity: the surrogate state itself is
    # bit-identical, because resume replays the exact fit schedule
    # (incremental chains included) rather than loading serialized state.
    np.testing.assert_array_equal(
        uninterrupted.model.cholesky_factor, resumed.model.cholesky_factor
    )
    np.testing.assert_array_equal(
        uninterrupted.model.train_X, resumed.model.train_X
    )
    assert uninterrupted.model.n_incremental == resumed.model.n_incremental
    assert uninterrupted._gp_jitter == resumed._gp_jitter


def test_incremental_off_never_updates():
    """The control arm really is the classic full-refit loop."""
    run = run_campaign(3, incremental=False)
    assert run.n_incremental == 0
    assert all(m == "full" for m in run.modes)


def test_incremental_on_mostly_updates():
    run = run_campaign(3, incremental=True)
    assert run.n_incremental > len(run.modes) // 3
    assert all(d < 1e-6 for d in run.drifts)
