"""Tests for the Gaussian-process surrogate."""

import numpy as np
import pytest

from repro.bo import RBF, GaussianProcess, GPFitError, Matern52


def toy_data(n=20, d=2, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2
    if noise:
        y = y + rng.normal(0, noise, n)
    return X, y


class TestFit:
    def test_interpolates_noise_free_data(self):
        X, y = toy_data(15)
        gp = GaussianProcess(dim=2, noise=1e-8, optimize_noise=False, random_state=0)
        gp.fit(X, y)
        mu, std = gp.predict(X)
        assert np.allclose(mu, y, atol=1e-3)
        assert np.all(std < 0.1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess(dim=2).predict(np.zeros((1, 2)))

    def test_empty_data_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess(dim=2).fit(np.empty((0, 2)), np.empty(0))

    def test_nonfinite_data_raises(self):
        with pytest.raises(GPFitError):
            GaussianProcess(dim=1).fit(np.array([[0.5]]), np.array([np.nan]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            GaussianProcess(dim=2).fit(np.zeros((3, 2)), np.zeros(4))

    def test_requires_kernel_or_dim(self):
        with pytest.raises(ValueError):
            GaussianProcess()
        assert GaussianProcess(kernel=RBF(3)).kernel.dim == 3

    def test_single_point_fit(self):
        gp = GaussianProcess(dim=1, random_state=0)
        gp.fit(np.array([[0.5]]), np.array([2.0]))
        mu = gp.predict(np.array([[0.5]]), return_std=False)
        assert mu[0] == pytest.approx(2.0, abs=1e-3)

    def test_constant_targets(self):
        gp = GaussianProcess(dim=1, random_state=0)
        gp.fit(np.linspace(0, 1, 5).reshape(-1, 1), np.full(5, 3.0))
        mu = gp.predict(np.array([[0.3]]), return_std=False)
        assert mu[0] == pytest.approx(3.0, abs=1e-2)


class TestPrediction:
    def test_uncertainty_grows_away_from_data(self):
        X = np.array([[0.1], [0.2], [0.3]])
        y = np.array([1.0, 2.0, 1.5])
        gp = GaussianProcess(dim=1, random_state=0).fit(X, y)
        _, std_near = gp.predict(np.array([[0.2]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_mean_only(self):
        X, y = toy_data(10)
        gp = GaussianProcess(dim=2, random_state=0).fit(X, y)
        out = gp.predict(X, return_std=False)
        assert out.shape == (10,)

    def test_generalization_beats_mean_baseline(self):
        X, y = toy_data(40, seed=1, noise=0.05)
        Xt, yt = toy_data(40, seed=2, noise=0.0)
        gp = GaussianProcess(dim=2, random_state=0).fit(X, y)
        pred = gp.predict(Xt, return_std=False)
        mse_gp = np.mean((pred - yt) ** 2)
        mse_mean = np.mean((np.mean(y) - yt) ** 2)
        assert mse_gp < 0.3 * mse_mean

    def test_normalization_handles_large_scales(self):
        X, y = toy_data(20)
        gp = GaussianProcess(dim=2, random_state=0).fit(X, 1e6 * y + 5e7)
        pred = gp.predict(X, return_std=False)
        assert np.allclose(pred, 1e6 * y + 5e7, rtol=1e-2)


class TestHyperparameters:
    def test_mle_improves_likelihood(self):
        X, y = toy_data(25, noise=0.05)
        gp0 = GaussianProcess(kernel=Matern52(2), random_state=0)
        gp0.fit(X, y, optimize=False)
        ll_before = gp0.log_marginal_likelihood()
        gp1 = GaussianProcess(kernel=Matern52(2), random_state=0)
        gp1.fit(X, y, optimize=True)
        ll_after = gp1.log_marginal_likelihood()
        assert ll_after >= ll_before - 1e-6

    def test_noise_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            GaussianProcess(dim=1, noise=-1.0)


class TestMeanFunction:
    def test_prior_mean_dominates_far_from_data(self):
        prior = lambda X: 10.0 * np.ones(X.shape[0])  # noqa: E731
        X = np.array([[0.05]])
        y = np.array([10.2])
        gp = GaussianProcess(dim=1, mean_function=prior, random_state=0).fit(X, y)
        mu = gp.predict(np.array([[0.95]]), return_std=False)
        # Far from the single observation the posterior falls back to the prior.
        assert mu[0] == pytest.approx(10.0, abs=0.5)

    def test_residual_modeling(self):
        X, y = toy_data(20)
        prior = lambda Z: np.sin(4 * Z[:, 0])  # noqa: E731  (part of truth)
        gp = GaussianProcess(dim=2, mean_function=prior, random_state=0).fit(X, y)
        pred = gp.predict(X, return_std=False)
        assert np.allclose(pred, y, atol=0.05)


class TestPosteriorSampling:
    def test_sample_shapes_and_spread(self):
        X, y = toy_data(10)
        gp = GaussianProcess(dim=2, random_state=0).fit(X, y)
        Z = np.random.default_rng(1).random((6, 2))
        S = gp.sample_posterior(Z, n_samples=64)
        assert S.shape == (64, 6)
        mu, std = gp.predict(Z)
        assert np.allclose(S.mean(axis=0), mu, atol=4 * std.max() / 8 + 0.2)


class TestJitterPersistence:
    """Regression: escalated Cholesky jitter must persist across fits.

    Previously every fit() restarted the escalation ladder at the base
    jitter, so a sequence of near-singular fits paid the same failed
    factorization attempts over and over.
    """

    @staticmethod
    def _strict_cholesky(gp, X, calls, min_jitter=1e-7):
        """A cholesky stand-in rejecting diagonals below ``min_jitter``.

        LAPACK's potrf tolerates genuinely singular kernels surprisingly
        well, so near-singularity is *simulated*: the GP adds
        ``noise + jitter`` to the kernel diagonal, and (with noise 0) the
        stand-in refuses to factorize until the escalation ladder reaches
        ``min_jitter`` — a deterministic stress of the retry logic.
        """
        import repro.bo.gp as gp_module

        real = gp_module.cholesky
        k_diag = float(gp.kernel.diag(X[:1])[0])

        def strict(A, *args, **kwargs):
            jitter = A[0, 0] - k_diag
            calls.append(jitter)
            if jitter < min_jitter:
                raise np.linalg.LinAlgError("simulated near-singular")
            return real(A, *args, **kwargs)

        return strict

    def test_escalated_jitter_persists(self, monkeypatch):
        import repro.bo.gp as gp_module

        rng = np.random.default_rng(0)
        X, y = rng.random((12, 2)), rng.random(12)
        gp = GaussianProcess(dim=2, noise=0.0, optimize_noise=False,
                             random_state=0)
        base = gp.jitter
        calls: list = []
        monkeypatch.setattr(
            gp_module, "cholesky", self._strict_cholesky(gp, X, calls)
        )

        gp.fit(X, y, optimize=False)
        assert gp.jitter > base          # escalation happened (1e-10 -> 1e-6)
        assert len(calls) > 1            # ... after real failed attempts
        escalated = gp.jitter

        # The regression: a refit must start from the escalated value,
        # succeeding on its first factorization attempt instead of
        # replaying the whole failed ladder.
        calls.clear()
        gp.fit(X, y, optimize=False)
        assert gp.jitter == escalated
        assert len(calls) == 1

    def test_unfactorizable_matrix_still_raises(self, monkeypatch):
        import repro.bo.gp as gp_module

        rng = np.random.default_rng(0)
        X, y = rng.random((6, 2)), rng.random(6)
        gp = GaussianProcess(dim=2, noise=0.0, optimize_noise=False,
                             random_state=0)
        monkeypatch.setattr(
            gp_module, "cholesky",
            self._strict_cholesky(gp, X, [], min_jitter=np.inf),
        )
        with pytest.raises(GPFitError):
            gp.fit(X, y, optimize=False)

    def test_jitter_setter_validates(self):
        gp = GaussianProcess(dim=2)
        with pytest.raises(ValueError):
            gp.jitter = 0.0
        with pytest.raises(ValueError):
            gp.jitter = -1e-10
        gp.jitter = 1e-6
        assert gp.jitter == 1e-6
