"""Unit and property tests for the GP covariance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bo import RBF, Matern32, Matern52, kernel_by_name

KERNEL_CLASSES = [RBF, Matern32, Matern52]


def unit_points(n, d, seed=0):
    return np.random.default_rng(seed).random((n, d))


@pytest.mark.parametrize("cls", KERNEL_CLASSES)
class TestKernelProperties:
    def test_symmetric(self, cls):
        k = cls(3)
        X = unit_points(12, 3)
        K = k(X)
        assert np.allclose(K, K.T)

    def test_diagonal_is_variance(self, cls):
        k = cls(3, variance=2.5)
        X = unit_points(10, 3)
        assert np.allclose(np.diag(k(X)), 2.5)
        assert np.allclose(k.diag(X), 2.5)

    def test_positive_semidefinite(self, cls):
        k = cls(4)
        X = unit_points(15, 4, seed=3)
        eig = np.linalg.eigvalsh(k(X))
        assert eig.min() > -1e-8

    def test_decreases_with_distance(self, cls):
        k = cls(1)
        x0 = np.array([[0.0]])
        ds = np.linspace(0.0, 1.0, 11).reshape(-1, 1)
        vals = k(x0, ds)[0]
        assert np.all(np.diff(vals) <= 1e-12)

    def test_cross_shape(self, cls):
        k = cls(2)
        K = k(unit_points(5, 2), unit_points(7, 2, seed=1))
        assert K.shape == (5, 7)

    def test_dimension_check(self, cls):
        k = cls(3)
        with pytest.raises(ValueError):
            k(unit_points(5, 2))

    def test_theta_roundtrip(self, cls):
        k = cls(3, variance=2.0, lengthscales=np.array([0.5, 1.0, 2.0]))
        t = k.theta.copy()
        k.theta = t
        assert k.variance == pytest.approx(2.0)
        assert np.allclose(k.lengthscales, [0.5, 1.0, 2.0])

    def test_theta_shape_validated(self, cls):
        k = cls(3)
        with pytest.raises(ValueError):
            k.theta = np.zeros(2)

    def test_invalid_hyperparameters(self, cls):
        with pytest.raises(ValueError):
            cls(2, variance=-1.0)
        with pytest.raises(ValueError):
            cls(2, lengthscales=0.0)
        with pytest.raises(ValueError):
            cls(0)

    def test_clone_independent(self, cls):
        k = cls(2, variance=3.0)
        c = k.clone()
        c.theta = np.zeros(3)
        assert k.variance == pytest.approx(3.0)

    def test_ard_lengthscales_matter(self, cls):
        # A tiny lengthscale on axis 0 makes axis-0 distance dominate.
        k = cls(2, lengthscales=np.array([0.01, 100.0]))
        a = np.array([[0.0, 0.0]])
        near_axis1 = np.array([[0.0, 1.0]])
        near_axis0 = np.array([[0.1, 0.0]])
        assert k(a, near_axis1)[0, 0] > k(a, near_axis0)[0, 0]


class TestFactory:
    @pytest.mark.parametrize("name", ["rbf", "matern32", "matern52", "RBF"])
    def test_known(self, name):
        assert kernel_by_name(name, 3).dim == 3

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_by_name("spline", 3)


class TestNumerics:
    def test_identical_points_give_variance(self):
        k = RBF(3, variance=1.7)
        X = np.tile(unit_points(1, 3), (4, 1))
        assert np.allclose(k(X), 1.7)

    @given(
        arrays(
            np.float64,
            (6, 2),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_psd_property(self, X):
        K = Matern52(2)(X)
        eig = np.linalg.eigvalsh(K + 1e-9 * np.eye(6))
        assert eig.min() >= -1e-8
