"""Kill-and-resume bit-identity for every acquisition function.

The optimizer's crash-recovery contract — replayed evaluations plus
deterministic per-iteration streams give a continuation identical to an
uninterrupted run — must hold for *all* acquisitions, including the two
stateful ones this file exists for:

* ``ts`` (Thompson sampling) draws from a private generator whose state
  was lost on resume; the fix keys the draw to the optimizer's replayed
  per-iteration stream.
* ``lcb`` with beta decay depends on the update schedule; the fix
  replays ``update()`` for completed iterations so beta matches the
  uninterrupted run at the resume point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo import BayesianOptimizer, EvaluationDatabase
from repro.bo.acquisition import LowerConfidenceBound
from repro.space import Real, SearchSpace

ACQS = ["ei", "pi", "lcb", "ts"]


def quadratic_space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="quad")


def quadratic(cfg):
    return (cfg["a"] - 0.3) ** 2 + (cfg["b"] - 0.7) ** 2 + 0.01


def _acq_arg(name):
    # Force the decaying-beta branch for lcb: constant beta would pass
    # trivially without the schedule replay.
    if name == "lcb":
        return LowerConfidenceBound(beta=3.0, beta_final=0.5)
    return name


def _run(acq, *, seed=3, budget=20, database=None, objective=quadratic):
    kwargs = {"database": database} if database is not None else {}
    return BayesianOptimizer(
        quadratic_space(),
        objective,
        max_evaluations=budget,
        acquisition=_acq_arg(acq),
        random_state=seed,
        **kwargs,
    )


@pytest.mark.parametrize("kill_after", [7, 12])
@pytest.mark.parametrize("acq", ACQS)
def test_kill_and_resume_bit_identical(acq, kill_after, tmp_path):
    uninterrupted = _run(acq).run()

    calls = {"n": 0}

    def killer(cfg):
        calls["n"] += 1
        if calls["n"] > kill_after:
            raise KeyboardInterrupt  # hard kill, not a FAILED record
        return quadratic(cfg)

    path = tmp_path / "ck.jsonl"
    with pytest.raises(KeyboardInterrupt):
        _run(acq, database=EvaluationDatabase(path), objective=killer).run()
    assert len(EvaluationDatabase(path)) == kill_after

    resumed = _run(acq, database=EvaluationDatabase(path)).run()
    assert resumed.n_evaluations == 20 - kill_after
    assert len(resumed.database) == 20
    assert resumed.best_config == uninterrupted.best_config
    assert resumed.best_objective == uninterrupted.best_objective
    for a, b in zip(resumed.database, uninterrupted.database):
        assert a.config == b.config, f"{acq}: divergent config after resume"
        assert a.objective == b.objective


@pytest.mark.parametrize("acq", ACQS)
def test_same_seed_same_run(acq):
    a = _run(acq).run()
    b = _run(acq).run()
    assert [r.config for r in a.database] == [r.config for r in b.database]


def test_lcb_beta_matches_uninterrupted_after_resume(tmp_path):
    """Replay must land beta exactly where the uninterrupted run had it."""
    budget, kill_after = 20, 12

    opt_full = _run("lcb", budget=budget)
    opt_full.run()
    beta_full = opt_full.acquisition.beta

    calls = {"n": 0}

    def killer(cfg):
        calls["n"] += 1
        if calls["n"] > kill_after:
            raise KeyboardInterrupt
        return quadratic(cfg)

    path = tmp_path / "ck.jsonl"
    with pytest.raises(KeyboardInterrupt):
        _run("lcb", budget=budget, database=EvaluationDatabase(path),
             objective=killer).run()

    opt_resumed = _run("lcb", budget=budget, database=EvaluationDatabase(path))
    opt_resumed.run()
    assert opt_resumed.acquisition.beta == beta_full

    # And the replay alone (before any new iterations) reproduces the
    # beta an uninterrupted run had at the kill point.
    opt_replay = _run("lcb", budget=budget, database=EvaluationDatabase(path))
    opt_replay._replay_acquisition_schedule()
    ref = LowerConfidenceBound(beta=3.0, beta_final=0.5)
    n_ok = sum(1 for r in opt_replay.database.records[:5] if r.ok)
    for rec in opt_replay.database.records[5:]:
        ref.update(n_ok, budget)
        if rec.ok:
            n_ok += 1
    assert opt_replay.acquisition.beta == ref.beta
    assert opt_replay.acquisition.beta != 3.0  # decay actually engaged
