"""Tests for transfer learning (stacked-GP prior + seeded design)."""

import numpy as np
import pytest

from repro.bo import (
    BayesianOptimizer,
    Evaluation,
    EvaluationDatabase,
    GPFitError,
    TransferLearner,
    transfer_bo,
)
from repro.space import Real, SearchSpace


def space():
    return SearchSpace([Real("a", 0.0, 1.0), Real("b", 0.0, 1.0)], name="t")


def source_task(cfg):
    """Source: minimum at (0.4, 0.6)."""
    return (cfg["a"] - 0.4) ** 2 + (cfg["b"] - 0.6) ** 2 + 0.02


def target_task(cfg):
    """Related target: minimum at (0.45, 0.55), 2x scale."""
    return 2.0 * ((cfg["a"] - 0.45) ** 2 + (cfg["b"] - 0.55) ** 2) + 0.04


def build_source_db(n=30, seed=0):
    sp = space()
    rng = np.random.default_rng(seed)
    db = EvaluationDatabase(task="source")
    for cfg in sp.sample_batch(n, rng):
        v = source_task(cfg)
        db.append(Evaluation(config=cfg, objective=v, cost=v))
    return db


class TestTransferLearner:
    def test_mean_function_tracks_source(self):
        sp = space()
        tl = TransferLearner(sp, build_source_db(), random_state=0)
        X = sp.encode_batch(
            [{"a": 0.4, "b": 0.6}, {"a": 0.0, "b": 0.0}]
        )
        mu = tl.mean_function(X)
        assert mu[0] < mu[1]  # source optimum predicted better

    def test_seed_configs_are_source_winners(self):
        sp = space()
        db = build_source_db()
        tl = TransferLearner(sp, db, random_state=0)
        seeds = tl.suggest_seed_configs(3)
        assert len(seeds) == 3
        best = db.best().config
        assert seeds[0] == {k: best[k] for k in sp.names}

    def test_requires_source(self):
        with pytest.raises(ValueError):
            TransferLearner(space(), [], random_state=0)

    def test_incompatible_source_raises(self):
        sp = space()
        db = EvaluationDatabase()
        db.append(Evaluation(config={"other": 1.0}, objective=1.0))
        with pytest.raises(GPFitError):
            TransferLearner(sp, db, random_state=0)

    def test_source_superset_space_transfers(self):
        """Records gathered on a superset space still feed a sub-space."""
        sp = space()
        db = EvaluationDatabase()
        rng = np.random.default_rng(0)
        for cfg in sp.sample_batch(15, rng):
            full = dict(cfg, extra=42)
            db.append(Evaluation(config=full, objective=source_task(cfg)))
        tl = TransferLearner(sp, db, random_state=0)
        assert tl.mean_function(sp.encode_batch([{"a": 0.4, "b": 0.6}])).shape == (1,)

    def test_auto_scale_calibration(self):
        sp = space()
        tl = TransferLearner(sp, build_source_db(), scale="auto", random_state=0)
        target_db = EvaluationDatabase()
        rng = np.random.default_rng(1)
        for cfg in sp.sample_batch(10, rng):
            target_db.append(Evaluation(config=cfg, objective=target_task(cfg)))
        tl.calibrate(target_db)
        assert tl._scale == pytest.approx(2.0, rel=0.6)


class TestTransferBO:
    def test_transfer_at_least_matches_cold_start(self):
        sp = space()
        db = build_source_db(40)
        diffs = []
        for seed in range(3):
            warm = transfer_bo(
                sp, target_task, db, max_evaluations=15, random_state=seed
            )
            cold = BayesianOptimizer(
                sp, target_task, max_evaluations=15, random_state=seed
            ).run()
            diffs.append(cold.best_objective - warm.best_objective)
        # On average, warm start is no worse.
        assert np.mean(diffs) >= -0.01

    def test_seeded_records_present(self):
        sp = space()
        r = transfer_bo(
            sp, target_task, build_source_db(), n_seed_from_source=2,
            max_evaluations=10, random_state=0,
        )
        assert len(r.database) == 10
