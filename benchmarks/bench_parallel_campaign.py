"""Parallel campaign executor — wall-clock speedup on the Table III set.

The paper's cost model counts a strategy's wall-clock as the *max* over
its member searches because independent searches run in parallel.  The
sequential campaign runner only simulated that; this benchmark runs the
Table III strategy sets through the real process-pool executor and
measures genuine concurrency:

* **G1, G2, G3, G4 BO** — four independent 5-dim searches (N = 50), the
  balanced fan-out where parallel wall-clock approaches total/4,
* **G1, G2, G3+G4 BO** — the methodology's suggestion (two 5-dim N = 50
  searches plus one 10-dim N = 100), where the merged search dominates
  the critical path.

Each evaluation sleeps for ``EVAL_DELAY`` seconds to stand in for the
application run that dominates real tuning cost (the paper's evaluations
are TDDFT executions on separate allocations, so members overlap even
when the benchmark host has a single core).

Shape assertions:
* the parallel path returns *bit-identical* per-member results to the
  sequential path (same seeds, same suggestions, same noise streams),
* for the balanced 4-way strategy, measured parallel wall-clock is
  < 0.7x the sequential aggregate search-process time.
"""

import time

from repro.search import SearchCampaign, SearchSpec
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, write_result

CASE = 3
N_WORKERS = 4
EVAL_DELAY = 0.04  # simulated application runtime per evaluation (seconds)


class GroupObjective:
    """Picklable per-group objective (process-pool friendly): the groups'
    contribution to the full objective on the same log scale as F, with a
    sleep standing in for the application run."""

    def __init__(self, case, seed, names):
        self.function = SyntheticFunction(case, random_state=seed)
        self.names = tuple(names)

    def __call__(self, cfg):
        time.sleep(EVAL_DELAY)
        outs = self.function.group_objectives(cfg)
        return float(sum(outs[n] for n in self.names))


def build_specs(f, f_seed, strategy):
    sp = f.search_space()
    if strategy == "independent":
        return [
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES[g]), name=g),
                GroupObjective(CASE, f_seed, [g]),
                max_evaluations=budget(50),
            )
            for g in ("Group 1", "Group 2", "Group 3", "Group 4")
        ]
    if strategy == "methodology":
        g34 = sp.subspace(
            list(GROUP_VARIABLES["Group 3"] + GROUP_VARIABLES["Group 4"]),
            name="Group 3+4",
        )
        return [
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES["Group 1"]), name="Group 1"),
                GroupObjective(CASE, f_seed, ["Group 1"]),
                max_evaluations=budget(50),
            ),
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES["Group 2"]), name="Group 2"),
                GroupObjective(CASE, f_seed, ["Group 2"]),
                max_evaluations=budget(50),
            ),
            SearchSpec(
                g34,
                GroupObjective(CASE, f_seed, ["Group 3", "Group 4"]),
                max_evaluations=budget(100),
            ),
        ]
    raise ValueError(strategy)


def run_comparison():
    f_seed = 1000 * CASE
    f = SyntheticFunction(CASE, random_state=f_seed)
    results = {}
    for strategy in ("independent", "methodology"):
        # Build fresh specs per campaign: SyntheticFunction draws noise
        # from a stateful generator, so both runs must start from the
        # same stream state for bit-identical comparison.
        seq = SearchCampaign(
            build_specs(f, f_seed, strategy), strategy=strategy, random_state=7
        ).run()
        par = SearchCampaign(
            build_specs(f, f_seed, strategy), strategy=strategy, random_state=7,
            parallel=True, n_workers=N_WORKERS,
        ).run()
        results[strategy] = (seq, par)
    return results


def test_parallel_campaign_speedup(benchmark):
    results = once(benchmark, run_comparison)

    rows = []
    for strategy, (seq, par) in results.items():
        speedup = seq.measured_total_time / max(par.measured_wall_time, 1e-9)
        rows.append(
            [
                strategy,
                len(seq.searches),
                f"{seq.measured_total_time:.2f}s",
                f"{max(s.measured_time for s in par.searches):.2f}s",
                f"{par.measured_wall_time:.2f}s",
                f"{speedup:.2f}x",
            ]
        )
    write_result(
        "parallel_campaign",
        format_table(
            [
                "Strategy",
                "members",
                "sequential total",
                "slowest member",
                "parallel wall",
                "speedup",
            ],
            rows,
        ),
    )

    for strategy, (seq, par) in results.items():
        assert par.executed_parallel, f"{strategy}: pool did not engage"
        # Determinism: parallel execution must not change any member result.
        for a, b in zip(seq.searches, par.searches):
            assert a.best_config == b.best_config, (strategy, a.name)
            assert a.best_objective == b.best_objective
            assert a.n_evaluations == b.n_evaluations

    # Balanced 4-way fan-out: real concurrency cuts wall-clock well below
    # the sequential aggregate (acceptance: < 0.7x).
    seq, par = results["independent"]
    assert par.measured_wall_time < 0.7 * seq.measured_total_time, (
        f"parallel wall {par.measured_wall_time:.2f}s not < 0.7x "
        f"sequential total {seq.measured_total_time:.2f}s"
    )
