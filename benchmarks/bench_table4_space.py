"""Table IV — the RT-TDDFT tuning parameters and search-space size.

Regenerates the parameter table from the implemented search space and
checks the cardinality structure: per GPU kernel 4 x 32 x 32
configurations, 32 x 32 for nstreams x nbatches, and the MPI-grid factor
``N_nstb x N_nkpb x N_nspb``.

Note on the paper's headline number: Table IV prints the GPU-parameter
product as 41,943,040.  The actual product of the listed cardinalities is
``(4*32*32)^5 * 32 * 32 = 1.18e18``; 41,943,040 equals
``(4*32*32) * (32*32) * 10`` and appears to be a typo.  We report the true
product and additionally the *valid* fraction under the occupancy
constraint (which the paper's frameworks must handle).
"""

import numpy as np

from repro.tddft import KERNEL_KEYS, RTTDDFTApplication, a100, case_study

from _helpers import format_table, once, write_result


def build_table():
    gpu = a100()
    rows = []
    apps = {}
    for cs in (1, 2):
        app = RTTDDFTApplication(case_study(cs), random_state=0)
        sp = app.search_space()
        apps[cs] = (app, sp)
    app1, sp1 = apps[1]

    rows.append(["nstb, nkpb, nspb (CS1)",
                 f"{sp1['nstb'].cardinality} x {sp1['nkpb'].cardinality} x "
                 f"{sp1['nspb'].cardinality}"])
    _, sp2 = apps[2]
    rows.append(["nstb, nkpb, nspb (CS2)",
                 f"{sp2['nstb'].cardinality} x {sp2['nkpb'].cardinality} x "
                 f"{sp2['nspb'].cardinality}"])
    for k in KERNEL_KEYS:
        rows.append(
            [f"u_{k.upper()}, tb_{k.upper()}, tb_sm_{k.upper()}",
             f"{sp1[f'u_{k}'].cardinality} x {sp1[f'tb_{k}'].cardinality} x "
             f"{sp1[f'tb_sm_{k}'].cardinality}"]
        )
    rows.append(["nstreams, nbatches",
                 f"{sp1['nstreams'].cardinality} x {sp1['nbatches'].cardinality}"])

    gpu_product = (4 * 32 * 32) ** 5 * 32 * 32
    rows.append(["GPU-parameter product", f"{gpu_product:.3e}"])

    # Valid fraction of one kernel's (tb, tb_sm) grid under the paper's
    # occupancy rule tb * tb_sm <= max threads per SM.
    valid = sum(
        1
        for tb in gpu.tb_values()
        for sm in gpu.tb_sm_values()
        if gpu.threadblock_valid(tb, sm)
    )
    rows.append(
        ["valid (tb, tb_sm) pairs / kernel", f"{valid} / {32 * 32}"]
    )
    return rows, apps, gpu_product, valid


def test_table4_search_space(benchmark):
    rows, apps, gpu_product, valid = once(benchmark, build_table)
    write_result("table4_space", format_table(["Parameter", "Configurations"], rows))

    app1, sp1 = apps[1]
    _, sp2 = apps[2]
    # 20 tunable parameters for both case studies.
    assert sp1.dimension == 20 and sp2.dimension == 20
    # Per-kernel 4 x 32 x 32 structure.
    for k in KERNEL_KEYS:
        assert sp1[f"u_{k}"].cardinality == 4
        assert sp1[f"tb_{k}"].cardinality == 32
        assert sp1[f"tb_sm_{k}"].cardinality == 32
    assert gpu_product == (4 * 32 * 32) ** 5 * 1024
    # The occupancy rule discards most raw (tb, tb_sm) pairs.
    assert valid < 0.3 * 1024

    # Expert constraints: the degenerate CS1 dims are pinned and CS2's
    # k-point factor spans the divisors of 36.
    assert sp1["nkpb"].cardinality == 1 and sp1["nspb"].cardinality == 1
    assert sp2["nkpb"].cardinality == 9
