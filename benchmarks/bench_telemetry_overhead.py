"""Telemetry overhead — the observation layer must be (nearly) free.

Runs the paper's Table III "methodology" strategy set (two 5-dim BO
searches at N=50 plus the merged 10-dim search at N=100) on synthetic
case 3 three ways: bare (``telemetry=None``, the zero-overhead default),
with full telemetry into an in-memory sink, and with full telemetry into
a JSONL trace file (spans, per-evaluation events, metrics — everything
``--trace-dir`` records).

Assertions:

* the traced campaigns are **bit-identical** to the bare one (same best
  configurations, same evaluation counts) — telemetry is a pure
  observer,
* the measured overhead of the enabled instrumentation stays **under
  3%** — measured as the *minimum over adjacent (off, on) run pairs* of
  the wall-clock ratio.  Pairing cancels the low-frequency scheduler /
  frequency drift that dwarfs the effect being measured (GP modeling
  dominates at Table III scale, so per-evaluation span/event emission is
  microseconds against milliseconds); a genuine systematic slowdown
  would survive pairing, noise does not.
"""

import tempfile
import time
from pathlib import Path

from repro.search import SearchCampaign, SearchSpec
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction
from repro.telemetry import JsonlSink, MemorySink, Telemetry

from _helpers import budget, format_table, once, reps, write_result

MAX_OVERHEAD = 0.03


def group_objective(f, names):
    def obj(cfg):
        outs = f.group_objectives(cfg)
        return float(sum(outs[n] for n in names))

    return obj


def methodology_specs(f):
    sp = f.search_space()
    g34 = sp.subspace(
        list(GROUP_VARIABLES["Group 3"] + GROUP_VARIABLES["Group 4"]),
        name="Group 3+4",
    )
    return [
        SearchSpec(
            sp.subspace(list(GROUP_VARIABLES["Group 1"]), name="Group 1"),
            group_objective(f, ["Group 1"]),
            max_evaluations=budget(50),
        ),
        SearchSpec(
            sp.subspace(list(GROUP_VARIABLES["Group 2"]), name="Group 2"),
            group_objective(f, ["Group 2"]),
            max_evaluations=budget(50),
        ),
        SearchSpec(
            g34,
            group_objective(f, ["Group 3", "Group 4"]),
            max_evaluations=budget(100),
        ),
    ]


def run_campaign(mode, seed=0, trace_dir=None):
    f = SyntheticFunction(3, random_state=seed)
    telemetry = None
    if mode == "memory":
        telemetry = Telemetry([MemorySink()])
    elif mode == "jsonl":
        telemetry = Telemetry(
            [JsonlSink(Path(trace_dir) / "campaign.trace.jsonl")]
        )
    t0 = time.perf_counter()
    result = SearchCampaign(
        methodology_specs(f), random_state=seed, telemetry=telemetry
    ).run()
    elapsed = time.perf_counter() - t0
    if telemetry is not None:
        telemetry.close()
    combined = result.combined_config
    return {
        "elapsed": elapsed,
        "best": f(combined),
        "configs": [s.best_config for s in result.searches],
        "n_evals": [s.n_evaluations for s in result.searches],
    }


def test_telemetry_overhead(benchmark):
    def body():
        runs = {"bare": [], "memory": [], "jsonl": []}
        with tempfile.TemporaryDirectory() as td:
            for i in range(max(5, reps())):
                runs["bare"].append(run_campaign("bare"))
                runs["memory"].append(run_campaign("memory"))
                runs["jsonl"].append(
                    run_campaign("jsonl", trace_dir=Path(td) / str(i))
                )
        return runs

    runs = once(benchmark, body)
    bare, memory, jsonl = (
        runs["bare"][0], runs["memory"][0], runs["jsonl"][0]
    )

    # Pure observer: traced campaigns change nothing observable.
    assert memory["configs"] == bare["configs"]
    assert memory["n_evals"] == bare["n_evals"]
    assert jsonl["configs"] == bare["configs"]
    assert jsonl["n_evals"] == bare["n_evals"]

    # Overhead bound: adjacent (off, on) pairs cancel machine drift; a
    # real systematic cost would show up in every pair.
    def paired_overhead(key):
        return min(
            on["elapsed"] / off["elapsed"] - 1.0
            for off, on in zip(runs["bare"], runs[key])
        )

    t_bare = min(r["elapsed"] for r in runs["bare"])
    t_memory = min(r["elapsed"] for r in runs["memory"])
    t_jsonl = min(r["elapsed"] for r in runs["jsonl"])
    overhead = paired_overhead("memory")

    rows = [
        ("telemetry off", f"{t_bare:.2f}", "-", f"{bare['best']:.3f}"),
        ("memory sink", f"{t_memory:.2f}",
         f"{100 * overhead:+.1f}%", f"{memory['best']:.3f}"),
        ("jsonl trace", f"{t_jsonl:.2f}",
         f"{100 * paired_overhead('jsonl'):+.1f}%", f"{jsonl['best']:.3f}"),
    ]
    write_result(
        "telemetry_overhead",
        format_table(
            ["campaign", "time [s]", "overhead", "minima found"], rows
        )
        + f"\n\nbound: telemetry overhead < {100 * MAX_OVERHEAD:.0f}%"
        " (memory sink vs off, min over adjacent run pairs)",
    )
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {100 * overhead:.1f}% exceeds "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )
