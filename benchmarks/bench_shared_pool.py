"""Shared worker pool + cross-job evaluation store — the two amortizations.

The service pays two per-job taxes the shared execution plane removes:
forking a fresh worker process per job, and re-measuring configurations
another job on the same space already paid for.  This benchmark runs the
same 8-job workload (two submissions of four distinct campaign jobs —
two tenants tuning the same four spaces) through three services at an
equal worker budget of 4:

* **per-job workers** — PR 7's one-process-per-job supervisor, no store
  (the baseline);
* **shared pool, cold store** — 4 long-lived pooled workers sharing a
  fresh :class:`~repro.search.EvaluationStore`; duplicate jobs are
  served from measurements their twin just wrote;
* **shared pool, warm store** — the same workload resubmitted against
  the store the cold arm populated: the steady-state service, where the
  paper's "reuse logs of past runs" saving applies to every job.

Evaluations carry a simulated measurement cost (``eval_cost``) so the
expensive-evaluation regime the paper targets — where a served cache
hit is a genuine saving — is what is measured, not synthetic-function
arithmetic.

Assertions (ISSUE 10 acceptance):

* every job in every arm finishes ``done`` with a fingerprint
  **byte-identical** to an unpooled, cold-store inline run of the same
  job;
* the steady-state shared plane (warm arm) completes the 8 jobs with
  **>= 2x the throughput** of per-job processes;
* a second identical job submitted after its twin reports **>= 90%
  cross-job cache hits** and **zero** duplicated objective evaluations
  (zero fresh misses, no new store records).
"""

import time
from pathlib import Path

from repro.search.store import EvaluationStore
from repro.service import JobRegistry, JobSpec, JobState, Supervisor, run_job

from _helpers import budget, format_table, once, reps, write_result

MIN_SPEEDUP = 2.0
MIN_CROSS_HIT_RATE = 0.9
WORKERS = 4
EVAL_COST = 0.15  # seconds per simulated measurement

#: Four distinct campaign jobs; the workload submits each twice.
DISTINCT = [
    {"engine": "bo", "budget": budget(12), "seed": s, "case": c,
     "eval_cost": EVAL_COST}
    for s, c in [(0, 1), (1, 2), (2, 3), (3, 4)]
]
WORKLOAD = DISTINCT + DISTINCT  # 8 jobs, 2 waves of the same 4 spaces


def reference_fingerprints(base: Path) -> list[str]:
    """Unpooled, cold-store inline runs: the bit-identity references.

    Run with ``eval_cost=0``: the simulated measurement cost is pure
    wall-clock and must not enter the fingerprint — which the arms'
    equality assertions then verify against these fast references.
    """
    out = []
    for i, params in enumerate(DISTINCT):
        spec = JobSpec(
            kind="campaign", params={**params, "eval_cost": 0.0}
        )
        out.append(run_job(spec, base / f"ref-{i}")["fingerprint"])
    return out


def run_arm(base: Path, *, pool: bool, store: Path | None):
    """Run the 8-job workload through one service configuration."""
    registry = JobRegistry(base / "registry")
    kwargs = {"pool_size": WORKERS} if pool else {"workers": WORKERS}
    if store is not None:
        kwargs["eval_store"] = str(store)
    sup = Supervisor(registry, jobs_dir=str(base / "jobs"),
                     job_traces=False, **kwargs)
    recs = [
        sup.submit(JobSpec(kind="campaign", params=dict(p)))[0]
        for p in WORKLOAD
    ]
    t0 = time.perf_counter()
    assert sup.run(drain_when_idle=True, poll_interval=0.005) is True
    elapsed = time.perf_counter() - t0
    results = []
    for rec in recs:
        done = registry.get(rec.job_id)
        assert done.state == JobState.DONE, (done.job_id, done.error)
        results.append(done.result)
    registry.close()
    return {"elapsed": elapsed, "results": results}


def memo_totals(results):
    totals = {"misses": 0, "cross_job_hits": 0, "hits": 0}
    for r in results:
        for k in totals:
            totals[k] += r.get("memo", {}).get(k, 0)
    return totals


def second_identical_job(base: Path):
    """Acceptance (b): twin job after completion, same service + store."""
    registry = JobRegistry(base / "registry")
    sup = Supervisor(
        registry, jobs_dir=str(base / "jobs"), pool_size=1,
        eval_store=str(base / "store.jsonl"), job_traces=False,
    )
    params = DISTINCT[0]
    pair = []
    for _ in range(2):
        rec, _ = sup.submit(JobSpec(kind="campaign", params=dict(params)))
        assert sup.run(drain_when_idle=True, poll_interval=0.005) is True
        pair.append(registry.get(rec.job_id).result)
    store = EvaluationStore(base / "store.jsonl")
    n_records = len(store)
    registry.close()
    return {"pair": pair, "store_records": n_records}


def test_shared_pool_throughput_and_reuse(benchmark, tmp_path_factory):
    def body():
        base = tmp_path_factory.mktemp("shared-pool")
        reference = reference_fingerprints(base / "reference")
        arms = {}
        best = {"perjob": [], "pool_cold": [], "pool_warm": []}
        for i in range(reps()):
            store = base / f"store-{i}.jsonl"
            runs = {
                "perjob": run_arm(base / f"perjob-{i}", pool=False, store=None),
                "pool_cold": run_arm(
                    base / f"cold-{i}", pool=True, store=store
                ),
                # Same workload, same store, fresh workdirs: wave 3+ of
                # the service's life, every measurement already paid for.
                "pool_warm": run_arm(
                    base / f"warm-{i}", pool=True, store=store
                ),
            }
            for name, run in runs.items():
                best[name].append(run["elapsed"])
                arms[name] = run  # keep the last rep's results
        twin = second_identical_job(base / "twin")
        return {
            "reference": reference,
            "arms": arms,
            "elapsed": {k: min(v) for k, v in best.items()},
            "twin": twin,
        }

    data = once(benchmark, body)
    reference, arms = data["reference"], data["arms"]
    elapsed = data["elapsed"]
    n_jobs = len(WORKLOAD)

    # Bit-identity: pooling and the store never change a result.
    for arm in arms.values():
        for result, fingerprint in zip(arm["results"], reference * 2):
            assert result["fingerprint"] == fingerprint

    throughput = {k: n_jobs / v for k, v in elapsed.items()}
    speedup = {k: throughput[k] / throughput["perjob"] for k in throughput}
    memo = {k: memo_totals(arm["results"]) for k, arm in arms.items()}

    pair = data["twin"]["pair"]
    twin_budget = DISTINCT[0]["budget"]
    twin_memo = pair[1]["memo"]
    hit_rate = twin_memo["cross_job_hits"] / twin_budget

    rows = [
        (
            name,
            n_jobs,
            f"{elapsed[name]:.2f}",
            f"{throughput[name]:.2f}",
            f"{speedup[name]:.2f}x",
            memo[name]["misses"] if name != "perjob" else n_jobs * sum(
                p["budget"] for p in DISTINCT
            ) // len(DISTINCT),
            memo[name]["cross_job_hits"] if name != "perjob" else "-",
        )
        for name in ("perjob", "pool_cold", "pool_warm")
    ]
    write_result(
        "shared_pool",
        format_table(
            ("service", "jobs", "wall [s]", "jobs/s", "speedup",
             "fresh evals", "cross hits"),
            rows,
        )
        + f"\n\nworkload: {n_jobs} concurrent campaign jobs (2 submissions "
        f"of 4 distinct spaces), worker budget {WORKERS}, "
        f"budget {DISTINCT[0]['budget']} evals/job, "
        f"eval_cost {EVAL_COST * 1000:.0f} ms/measurement\n"
        f"second identical job: {twin_memo['cross_job_hits']}/{twin_budget} "
        f"cross-job hits ({100 * hit_rate:.0f}%), "
        f"{twin_memo['misses']} fresh evaluations; "
        f"store records unchanged at {data['twin']['store_records']}\n"
        f"bounds: warm shared plane >= {MIN_SPEEDUP:.0f}x per-job "
        f"throughput; twin hit rate >= {MIN_CROSS_HIT_RATE:.0%} with zero "
        f"duplicated evaluations; all fingerprints byte-identical to the "
        f"unpooled cold-store baseline",
    )

    # (a) steady-state shared plane: >= 2x per-job throughput.
    assert speedup["pool_warm"] >= MIN_SPEEDUP
    # The cold shared plane must already be a net win (fork amortization
    # plus duplicate-wave serving), never a regression.
    assert speedup["pool_cold"] >= 1.0
    # (b) second identical job: >= 90% cross-job hits, zero duplicated
    # objective evaluations (no fresh misses, no new store records).
    assert hit_rate >= MIN_CROSS_HIT_RATE
    assert twin_memo["misses"] == 0
    assert pair[0]["fingerprint"] == reference[0]
    assert pair[1]["fingerprint"] == reference[0]
    assert data["twin"]["store_records"] == pair[0]["memo"]["misses"]
