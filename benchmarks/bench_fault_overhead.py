"""Fault-injection overhead — the robustness layer must be (nearly) free.

Runs the paper's Table III "methodology" strategy set (two 5-dim BO
searches at N=50 plus the merged 10-dim search at N=100) on synthetic
case 3, once bare and once wrapped in a *benign* ``FaultPlan`` (seeded
but with every rate at zero, so the injection layer's bookkeeping —
canonicalization, hashing, per-config RNG derivation — runs on every
evaluation without changing any result), plus a transient-fault run with
retry capacity to absorb it.

Assertions:

* the benign plan's campaign is **bit-identical** to the bare one
  (same combined best configuration, same evaluation counts),
* the measured overhead of the injection layer stays **under 5%**
  (min-of-reps wall-clock; GP modeling dominates, so the per-evaluation
  hashing cost is noise at Table III scale).
"""

import time

from repro.faults import FaultPlan
from repro.search import SearchCampaign, SearchSpec
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result

#: Active=True plan (nonzero seed channels nothing): exercises the full
#: FaultyObjective path — hashing, uniform derivation, channel checks —
#: while injecting no faults, so results stay comparable bit-for-bit.
BENIGN_PLAN = FaultPlan(seed=7, transient_rate=1e-12)

TRANSIENT_PLAN = FaultPlan(seed=7, transient_rate=1.0, transient_burst=1)

MAX_OVERHEAD = 0.05


def group_objective(f, names):
    def obj(cfg):
        outs = f.group_objectives(cfg)
        return float(sum(outs[n] for n in names))

    return obj


def methodology_specs(f, fault_plan=None, max_retries=0):
    sp = f.search_space()
    g34 = sp.subspace(
        list(GROUP_VARIABLES["Group 3"] + GROUP_VARIABLES["Group 4"]),
        name="Group 3+4",
    )
    mk = dict(fault_plan=fault_plan, max_retries=max_retries, retry_backoff=0.0)
    return [
        SearchSpec(
            sp.subspace(list(GROUP_VARIABLES["Group 1"]), name="Group 1"),
            group_objective(f, ["Group 1"]),
            max_evaluations=budget(50),
            **mk,
        ),
        SearchSpec(
            sp.subspace(list(GROUP_VARIABLES["Group 2"]), name="Group 2"),
            group_objective(f, ["Group 2"]),
            max_evaluations=budget(50),
            **mk,
        ),
        SearchSpec(
            g34,
            group_objective(f, ["Group 3", "Group 4"]),
            max_evaluations=budget(100),
            **mk,
        ),
    ]


def run_campaign(fault_plan=None, max_retries=0, seed=0):
    f = SyntheticFunction(3, random_state=seed)
    t0 = time.perf_counter()
    result = SearchCampaign(
        methodology_specs(f, fault_plan, max_retries), random_state=seed
    ).run()
    elapsed = time.perf_counter() - t0
    combined = result.combined_config
    return {
        "elapsed": elapsed,
        "best": f(combined),
        "configs": [s.best_config for s in result.searches],
        "n_evals": [s.n_evaluations for s in result.searches],
    }


def test_fault_injection_overhead(benchmark):
    def body():
        runs = {"bare": [], "benign": [], "transient": []}
        for _ in range(max(3, reps())):
            runs["bare"].append(run_campaign())
            runs["benign"].append(run_campaign(BENIGN_PLAN))
            runs["transient"].append(run_campaign(TRANSIENT_PLAN, max_retries=2))
        return runs

    runs = once(benchmark, body)
    bare, benign, transient = (
        runs["bare"][0], runs["benign"][0], runs["transient"][0]
    )

    # Bit-identity: the benign plan changes nothing observable, and the
    # transient plan is fully absorbed by the retries.
    assert benign["configs"] == bare["configs"]
    assert benign["n_evals"] == bare["n_evals"]
    assert transient["configs"] == bare["configs"]
    assert transient["n_evals"] == bare["n_evals"]

    # Overhead bound: min over reps filters scheduler noise.
    t_bare = min(r["elapsed"] for r in runs["bare"])
    t_benign = min(r["elapsed"] for r in runs["benign"])
    overhead = t_benign / t_bare - 1.0

    rows = [
        ("bare", f"{t_bare:.2f}", "-", f"{bare['best']:.3f}"),
        ("benign plan", f"{t_benign:.2f}", f"{100 * overhead:+.1f}%",
         f"{benign['best']:.3f}"),
        ("transient + 2 retries",
         f"{min(r['elapsed'] for r in runs['transient']):.2f}", "-",
         f"{transient['best']:.3f}"),
    ]
    write_result(
        "fault_overhead",
        format_table(
            ["campaign", "time [s]", "overhead", "minima found"], rows
        )
        + f"\n\nbound: injection overhead < {100 * MAX_OVERHEAD:.0f}%",
    )
    assert overhead < MAX_OVERHEAD, (
        f"fault-injection overhead {100 * overhead:.1f}% exceeds "
        f"{100 * MAX_OVERHEAD:.0f}%"
    )
