"""Ablation — the 10-dimension-per-search cap.

The paper grounds the cap "in the feasibility of conducting outstanding BO
searches within a manageable number of iterations".  This ablation runs
the merged Group 2+3 RT-TDDFT search with and without the cap under the
*same evaluation budget* (N = 100):

* capped: 10 tuned parameters, 2 pinned to defaults,
* uncapped: all 12 parameters searched.

Shape: the capped search must not lose more than a small margin (the
pinned parameters are the least influential), while its per-iteration
modeling cost is lower; frequently it wins outright because the lower
dimensionality needs fewer samples to model.
"""

import numpy as np

from repro.bo import BayesianOptimizer
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import budget, format_table, once, reps, write_result

CAPPED = [
    "u_pair", "tb_pair", "tb_sm_pair",
    "u_zcopy", "tb_zcopy", "tb_sm_zcopy",
    "u_dscal", "tb_dscal", "tb_sm_dscal",
    "u_zvec",
]
UNCAPPED = CAPPED + ["tb_zvec", "tb_sm_zvec"]


def run_pair(rep: int):
    app = RTTDDFTApplication(case_study(1), random_state=rep)
    sp = app.search_space()
    obj = lambda c: app.group_runtime("Group 2", c) + app.group_runtime("Group 3", c)  # noqa: E731

    capped = BayesianOptimizer(
        sp.subspace(CAPPED, name="capped-10d"), obj,
        max_evaluations=budget(100), random_state=rep,
    ).run()
    uncapped = BayesianOptimizer(
        sp.subspace(UNCAPPED, name="uncapped-12d"), obj,
        max_evaluations=budget(100), random_state=rep,
    ).run()

    app.noise_scale = 0.0
    return (
        obj(capped.best_config),
        obj(uncapped.best_config),
        capped.modeling_overhead,
        uncapped.modeling_overhead,
    )


def test_ablation_dimension_cap(benchmark):
    def run():
        return [run_pair(rep) for rep in range(max(2, reps()))]

    results = once(benchmark, run)
    capped = np.mean([r[0] for r in results])
    uncapped = np.mean([r[1] for r in results])
    capped_cost = np.mean([r[2] for r in results])
    uncapped_cost = np.mean([r[3] for r in results])

    write_result(
        "ablation_dimcap",
        format_table(
            ["variant", "G2+3 runtime (ms)", "modeling overhead (s)"],
            [
                ["capped (10d)", f"{1000 * capped:.3f}", f"{capped_cost:.2f}"],
                ["uncapped (12d)", f"{1000 * uncapped:.3f}", f"{uncapped_cost:.2f}"],
            ],
        ),
    )

    # Dropping the two least-influential parameters costs little quality:
    assert capped < uncapped * 1.15
    # ... and never increases the modeling bill.
    assert capped_cost <= uncapped_cost * 1.01
