"""Table VI — per-region sensitivity analysis on Case Study 2 (hBN slab).

Same analysis as Table V on the 36-k-point periodic slab.  Additional
CS2-specific checks: nkpb joins nstb as a dominant Slater/total-runtime
driver ("The presence of several k-points in Case Study 2 emphasizes the
significance of nkpb"), and the overall interdependence conclusions match
Case Study 1 ("results for Case Study 1 and Case Study 2 yielded similar
conclusions; therefore, the same search strategy is executed").
"""

import numpy as np

from repro.core import TuningMethodology
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import format_table, once, write_result
from bench_table5_cs1_sensitivity import CUTOFF, render, run_sensitivity


def test_table6_cs2_sensitivity(benchmark):
    app, res = once(benchmark, lambda: run_sensitivity(2))
    render(res, "table6_cs2_sensitivity")
    s = res.sensitivity.scores

    # Same qualitative couplings as Case Study 1.
    for g in ("Group 1", "Group 2", "Group 3"):
        assert s[g]["nbatches"] > CUTOFF
    assert max(s["Group 3"]["tb_pair"], s["Group 3"]["tb_sm_pair"]) > CUTOFF

    # CS2's k-points: nkpb is a top-2 driver of the MPI-level runtime.
    mpi_top2 = [p for p, _ in res.sensitivity.top("MPI Grid", 2)]
    assert "nkpb" in mpi_top2 or "nstb" in mpi_top2
    assert s["MPI Grid"]["nkpb"] > CUTOFF

    # Same search plan as Case Study 1 (the paper's "similar conclusions").
    _, res1 = run_sensitivity(1)
    plan_names = lambda r: [set(p.routines) for p in r.plan.searches]  # noqa: E731
    assert plan_names(res) == plan_names(res1)


def test_table6_plan_structure(benchmark):
    """The resulting plan: MPI -> Slater -> {Group 1, Group 2+3}."""
    app, res = once(benchmark, lambda: run_sensitivity(2, seed=7))
    stages = {tuple(p.routines): p.stage for p in res.plan.searches}
    assert stages[("MPI Grid",)] == 0
    assert stages[("Slater Determinant",)] == 1
    assert stages[("Group 1",)] == 2
    assert stages[("Group 2", "Group 3")] == 2
