"""Ablation — transfer learning from Case Study 1 to Case Study 2.

The paper tunes CS2 "us[ing] transfer learning to benefit from Case Study
1's configuration database".  This ablation runs the merged Group 2+3
search on CS2 three ways under the same budget:

* cold start,
* transfer with the full CS1 database (N = 100 source records),
* transfer with a thin CS1 database (N = 15 source records),

and reports the minima plus the early incumbent (after 10 evaluations) —
where transfer should show its value.
"""

import numpy as np

from repro.bo import BayesianOptimizer, transfer_bo
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import budget, format_table, once, reps, write_result

G23 = [
    "u_pair", "tb_pair", "tb_sm_pair",
    "u_zcopy", "tb_zcopy", "tb_sm_zcopy",
    "u_dscal", "tb_dscal", "tb_sm_dscal",
    "u_zvec",
]


def problem(cs: int, seed: int):
    app = RTTDDFTApplication(case_study(cs), random_state=seed)
    sub = app.search_space().subspace(G23, name=f"G2+3 CS{cs}")
    obj = lambda c: app.group_runtime("Group 2", c) + app.group_runtime("Group 3", c)  # noqa: E731
    return sub, obj


def sweep():
    rows = {"cold": [], "transfer-full": [], "transfer-thin": []}
    early = {"cold": [], "transfer-full": [], "transfer-thin": []}
    for rep in range(max(2, reps())):
        sub1, obj1 = problem(1, seed=rep)
        src_full = BayesianOptimizer(
            sub1, obj1, max_evaluations=budget(100), random_state=rep
        ).run().database
        src_thin = BayesianOptimizer(
            sub1, obj1, max_evaluations=15, random_state=rep
        ).run().database

        for label, runner in (
            ("cold", lambda sub, obj: BayesianOptimizer(
                sub, obj, max_evaluations=budget(100), random_state=rep
            ).run()),
            ("transfer-full", lambda sub, obj: transfer_bo(
                sub, obj, src_full, max_evaluations=budget(100), random_state=rep
            )),
            ("transfer-thin", lambda sub, obj: transfer_bo(
                sub, obj, src_thin, max_evaluations=budget(100), random_state=rep
            )),
        ):
            sub2, obj2 = problem(2, seed=100 + rep)
            r = runner(sub2, obj2)
            rows[label].append(r.best_objective)
            early[label].append(r.trajectory[9])
    return (
        {k: float(np.mean(v)) for k, v in rows.items()},
        {k: float(np.mean(v)) for k, v in early.items()},
    )


def test_ablation_transfer(benchmark):
    final, early = once(benchmark, sweep)
    rows = [
        [label, f"{1000 * early[label]:.3f}", f"{1000 * final[label]:.3f}"]
        for label in ("cold", "transfer-full", "transfer-thin")
    ]
    write_result(
        "ablation_transfer",
        format_table(
            ["variant", "incumbent @10 evals (ms)", "final minimum (ms)"], rows
        ),
    )

    # Transfer accelerates the early search (the Figure 6 effect).
    assert early["transfer-full"] <= early["cold"] * 1.02
    # Final quality is at least on par with cold start.
    assert final["transfer-full"] <= final["cold"] * 1.08
    # A thin source database transfers less reliably but must not be
    # catastrophic (the prior is corrected by target evidence).
    assert final["transfer-thin"] <= final["cold"] * 1.25
