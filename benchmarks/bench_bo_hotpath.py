"""Batched BO hot path — acquisition throughput at thousand-observation scale.

Campaigns that run to N ~ 1000 observations spend their modeling time
scoring candidate pools, and the pre-vectorization loop paid one
``predict`` (an O(N^2) back-substitution plus Python dispatch) *per
candidate*.  The batched path — one ``model.predict`` over the whole
encoded ``(m, d)`` pool followed by a pure-ufunc ``score`` on the
``(mu, std)`` arrays — turns that into three BLAS calls.  This benchmark
measures the ratio and ties it to correctness:

* **acquisition throughput**: wall-clock to score a C-candidate pool,
  per-candidate reference loop vs. one batched call, at N = 500 and
  N = 1000 observations.  Acceptance bounds: **>= 5x at N = 500** (the
  CI smoke guard) and **>= 10x at N = 1000**,
* **proposal identity**: batched and loop argmax must pick the same
  candidate (tolerance-free comparison of the winning index),
* **differential guard**: harness seeds must produce identical proposal
  sequences with the incremental fast path on vs. off for every
  acquisition the batched path ships (ei, pi, lcb, ts).

Sizes are fixed (not ``REPRO_BENCH_SCALE``-scaled): the bounds *are* the
acceptance criteria.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bo.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
    score_candidates,
)
from repro.bo.gp import GaussianProcess
from repro.bo.kernels import kernel_by_name

from _helpers import format_table, once, reps, write_result
from tests.bo.harness.differential import run_differential

SIZES = (500, 1000)
BOUNDS = {500: 5.0, 1000: 10.0}
POOL = 1024        # candidates scored per acquisition call
DIM = 6
HARNESS_SEEDS = (0, 1, 2)
HARNESS_ACQS = ("ei", "pi", "lcb", "ts")

_ACQS = {
    "ei": ExpectedImprovement(),
    "pi": ProbabilityOfImprovement(),
    "lcb": LowerConfidenceBound(),
}


def _fit_gp(n, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, DIM))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n)
    gp = GaussianProcess(kernel=kernel_by_name("matern52", DIM), random_state=0)
    gp.fit(X, y, optimize=False)
    return gp, float(np.min(y))


def _pool(seed=1):
    return np.random.default_rng(seed).random((POOL, DIM))


def time_loop(gp, incumbent, acq, pool):
    """Per-candidate reference: one predict + scalar score per row.

    Each row is handed to ``predict`` as a fresh 1-row array (a distinct
    object, so the cross-column cache cannot help) — exactly the work the
    pre-vectorization maximizer did per candidate.
    """
    t0 = time.perf_counter()
    scores = np.empty(pool.shape[0])
    for i in range(pool.shape[0]):
        row = pool[i : i + 1].copy()
        mu, std = gp.predict(row)
        scores[i] = acq.score(mu, std, incumbent)[0]
    return time.perf_counter() - t0, scores


def time_batched(gp, incumbent, acq, pool):
    """One batched predict over the pool + pure-ufunc score.

    The pool is copied per call so the timing is cache-cold — the real
    loop re-scores the *same* pool object and rides the cross-column
    cache, making this a conservative measurement.
    """
    fresh = pool.copy()
    t0 = time.perf_counter()
    scores = score_candidates(acq, gp, fresh, incumbent)
    return time.perf_counter() - t0, scores


def test_bo_hotpath_throughput(benchmark):
    def body():
        measurements = {}
        for n in SIZES:
            gp, incumbent = _fit_gp(n)
            pool = _pool()
            gp.predict(pool.copy())  # warm BLAS / allocator
            n_reps = max(3, reps())
            per_acq = {}
            for name, acq in _ACQS.items():
                loop_t, loop_s = min(
                    (time_loop(gp, incumbent, acq, pool)
                     for _ in range(1 if n >= 1000 else n_reps)),
                    key=lambda r: r[0],
                )
                batch_t, batch_s = min(
                    (time_batched(gp, incumbent, acq, pool)
                     for _ in range(n_reps)),
                    key=lambda r: r[0],
                )
                # Both paths must propose the same candidate.
                assert int(np.argmax(batch_s)) == int(np.argmax(loop_s)), (
                    f"{name} N={n}: batched argmax "
                    f"{int(np.argmax(batch_s))} != loop {int(np.argmax(loop_s))}"
                )
                np.testing.assert_allclose(
                    batch_s, loop_s, rtol=1e-9, atol=1e-12
                )
                per_acq[name] = (loop_t, batch_t)
            measurements[n] = per_acq
        return measurements

    measurements = once(benchmark, body)

    rows = []
    for n, per_acq in measurements.items():
        for name, (loop_t, batch_t) in per_acq.items():
            rows.append(
                (
                    n,
                    name,
                    f"{loop_t * 1e3:.2f}",
                    f"{batch_t * 1e3:.2f}",
                    f"{loop_t / batch_t:.1f}x",
                    f"{POOL / batch_t:,.0f}",
                )
            )
    table = format_table(
        [
            "N",
            "acq",
            "loop [ms]",
            "batched [ms]",
            "speedup",
            "candidates/s (batched)",
        ],
        rows,
    )

    reports = {
        acq: [run_differential(seed, acquisition=acq)
              for seed in HARNESS_SEEDS]
        for acq in HARNESS_ACQS
    }
    guard_lines = [
        f"[{acq:>3}] {r.line()}"
        for acq in HARNESS_ACQS
        for r in reports[acq]
    ]
    bound_lines = [
        f"bound: EI speedup >= {BOUNDS[n]:.0f}x at N={n} "
        f"(C={POOL} candidates, cache-cold batched call)"
        for n in SIZES
    ]
    write_result(
        "bo_hotpath",
        table
        + "\n\n"
        + "\n".join(bound_lines)
        + "\ndifferential guard (incremental on vs. off, per acquisition):\n  "
        + "\n  ".join(guard_lines),
    )

    for n in SIZES:
        loop_t, batch_t = measurements[n]["ei"]
        speedup = loop_t / batch_t
        assert speedup >= BOUNDS[n], (
            f"batched acquisition speedup {speedup:.1f}x at N={n} below "
            f"{BOUNDS[n]:.0f}x bound"
        )
    for acq, acq_reports in reports.items():
        for report in acq_reports:
            assert report.identical, f"[{acq}] {report.line()}"
            assert report.n_incremental_fits > 0
