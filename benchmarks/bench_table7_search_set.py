"""Table VII — the final set of lower-dimensional searches.

The paper's methodology reduces the 20-parameter RT-TDDFT problem to:

=============  ====  ============================================
MPI Grid        3    nstb, nkpb, nspb
Iterations      2    nbatches, nstreams
Group 1         3    u_VEC, tb_VEC, tb_sm_VEC
Group 2+3      10    PAIR(3) + ZCOPY(3) + DSCAL(3) + one ZVEC
                     parameter; the other two ZVEC parameters are
                     dropped by the 10-dimension cap
=============  ====  ============================================

with the shared cuZcopy kernel ceded to Group 3 (rule 5) so Group 1 tunes
only its cuVec2Zvec parameters.  This bench regenerates the table from the
measured sensitivity data for both case studies.
"""

from _helpers import format_table, once, write_result
from bench_table5_cs1_sensitivity import run_sensitivity

PAIR = {"u_pair", "tb_pair", "tb_sm_pair"}
ZCOPY = {"u_zcopy", "tb_zcopy", "tb_sm_zcopy"}
DSCAL = {"u_dscal", "tb_dscal", "tb_sm_dscal"}
ZVEC = {"u_zvec", "tb_zvec", "tb_sm_zvec"}
VEC = {"u_vec", "tb_vec", "tb_sm_vec"}


def check_plan(plan):
    by_routines = {tuple(s.routines): s for s in plan.searches}

    mpi = by_routines[("MPI Grid",)]
    assert set(mpi.tuned) <= {"nstb", "nkpb", "nspb"}

    slater = by_routines[("Slater Determinant",)]
    assert set(slater.tuned) == {"nbatches", "nstreams"}
    assert slater.dimension == 2

    g1 = by_routines[("Group 1",)]
    # Rule 5: ZCOPY ceded to the higher-impact Group 3.
    assert set(g1.tuned) == VEC
    assert set(g1.dropped) == ZCOPY
    assert all(v == "owned-elsewhere" for v in g1.dropped.values())

    g23 = by_routines[("Group 2", "Group 3")]
    assert g23.dimension == 10
    tuned = set(g23.tuned)
    # PAIR + ZCOPY + DSCAL always kept (9 parameters) ...
    assert PAIR <= tuned and ZCOPY <= tuned and DSCAL <= tuned
    # ... plus exactly one ZVEC parameter; the other two hit the cap.
    assert len(tuned & ZVEC) == 1
    assert set(g23.dropped) == ZVEC - tuned
    assert all(v == "dimension-cap" for v in g23.dropped.values())
    return by_routines


def test_table7_search_set_cs1(benchmark):
    app, res = once(benchmark, lambda: run_sensitivity(1))
    check_plan(res.plan)

    rows = []
    for s in res.plan.searches:
        rows.append(
            ["+".join(s.routines), str(s.stage), str(s.dimension), ", ".join(s.tuned)]
        )
        for p, why in sorted(s.dropped.items()):
            rows.append(["", "", "", f"[dropped {p}: {why}]"])
    write_result(
        "table7_search_set",
        format_table(["Search", "Stage", "Dims", "Parameters"], rows),
    )


def test_table7_search_set_cs2(benchmark):
    _, res = once(benchmark, lambda: run_sensitivity(2))
    check_plan(res.plan)


def test_table7_budgets(benchmark):
    """Each search gets the paper's 10 x dims budget; the merged search
    dominates the evaluation cost."""
    _, res = once(benchmark, lambda: run_sensitivity(1))
    budgets = {tuple(s.routines): s.budget for s in res.plan.searches}
    assert budgets[("Group 2", "Group 3")] == 100
    assert budgets[("Slater Determinant",)] == 20
    assert budgets[("Group 1",)] == 30
