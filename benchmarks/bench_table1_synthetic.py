"""Table I — the five synthetic cases and their Group-3 definitions.

Regenerates the paper's Table I as executable checks: for each case, the
Group-3 formula is evaluated at crafted points and its qualitative
Group-4-influence grading is verified by measuring how strongly x15..x19
move Group 3 relative to Group 3's own variables.  The benchmark timing
itself measures objective-evaluation throughput (the reason synthetic
functions are usable where HPC applications are not).
"""

import numpy as np

from repro.synthetic import CASE_INFLUENCE, SyntheticFunction

from _helpers import format_table, once, write_result


def influence_ratio(case: int) -> float:
    """Leverage of Group-4 variables on Group 3 relative to Group 3's own
    variables (measured, noise-free, averaged over probe points)."""
    f = SyntheticFunction(case, noise_scale=0.0, random_state=0)
    rng = np.random.default_rng(case)
    own, ext = [], []
    for _ in range(50):
        # Probe the bulk of the domain; tiny coordinates would overstate
        # the bounded cosine terms of case 1.
        base = list(rng.uniform(10.0, 33.0, 20))
        b = abs(f.group3_raw(base))
        moved_own = list(base)
        for u in range(10, 15):
            moved_own[u] *= 1.5
        moved_ext = list(base)
        for v in range(15, 20):
            moved_ext[v] *= 1.5
        own.append(abs(abs(f.group3_raw(moved_own)) - b) / max(b, 1e-12))
        ext.append(abs(abs(f.group3_raw(moved_ext)) - b) / max(b, 1e-12))
    return float(np.mean(ext) / max(np.mean(own), 1e-12))


def test_table1_influence_grading(benchmark):
    ratios = once(benchmark, lambda: {c: influence_ratio(c) for c in range(1, 6)})
    rows = [
        [f"Case {c}", CASE_INFLUENCE[c], f"{ratios[c]:.3f}"]
        for c in range(1, 6)
    ]
    write_result(
        "table1_synthetic",
        format_table(
            ["Name", "Group 4's influence (paper)", "measured ext/own leverage"],
            rows,
        ),
    )
    # Shape: the three influence regimes of Table I.
    # Low (cases 1-2): Group 4's leverage is marginal next to Group 3's own.
    assert ratios[1] < 0.1 and ratios[2] < 0.1
    # Medium (case 3): comparable leverage.
    assert 0.3 < ratios[3] < 3.0
    # High/extremely high (cases 4-5): Group 4 dominates, escalating.
    assert ratios[4] > 3.0
    assert ratios[5] > ratios[4]


def test_table1_evaluation_throughput(benchmark):
    """Objective evaluations are cheap — the property that makes the
    synthetic benchmark usable for 'comprehensive benchmark without
    substantial computational costs'."""
    f = SyntheticFunction(3, random_state=0)
    cfg = f.vector_to_config([2.0] * 20)
    benchmark(f, cfg)
