"""Sampler bake-off on the paper's synthetic suite (Tables I & III).

Every gauntlet sampler — the Table III baselines (random, grid, GP-BO,
batch BO) plus the samplers the pluggable architecture added (TPE,
CMA-ES-lite, QMC) — runs the same five Table I synthetic cases through
the same :func:`repro.search.run_search_spec` path the campaign executor
uses, so the numbers are directly comparable to Table III's ledger:
"Minima" is each sampler's best Group-1 objective (the methodology's
5-dim decomposed search, where model guidance is decisive), "time" the
simulated search time from the same cost model as the Table III rows.

Shape assertions (paper-text claims, not absolute numbers):

* every sampler finishes every case with a finite minimum,
* model-based samplers collectively beat random search on every case,
* averaged over the suite, each model-based sampler (GP-BO, batch BO,
  TPE, CMA-ES-lite) individually beats random search,
* the suggest-based samplers carry no O(N^3) surrogate, so their
  simulated search time stays below GP-BO's.
"""

import numpy as np

from repro.search import SearchSpec, run_search_spec
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result

CASES = (1, 2, 3, 4, 5)

#: Gauntlet samplers under comparison; labels match the registry names
#: the CLI's ``--sampler`` accepts.
SAMPLERS = ("random", "grid", "gp-bo", "batch-bo", "tpe", "cma-es-lite", "qmc")

MODEL_BASED = ("gp-bo", "batch-bo", "tpe", "cma-es-lite")


def group1_objective(f):
    """Group 1's contribution to F (sum of log|g|), as in Table III's
    decomposed strategies."""

    def obj(cfg):
        return float(f.group_objectives(cfg)["Group 1"])

    return obj


def run_sampler(f, engine: str, seed: int):
    """Returns (minima_found, simulated_search_time)."""
    space = f.search_space().subspace(
        list(GROUP_VARIABLES["Group 1"]), name="Group 1"
    )
    spec = SearchSpec(
        space,
        group1_objective(f),
        engine=engine,
        max_evaluations=budget(80),
    )
    r = run_search_spec(spec, np.random.SeedSequence(seed))
    return float(r.best_objective), float(r.search_time)


def run_table():
    table = {}
    for case in CASES:
        table[case] = {}
        for engine in SAMPLERS:
            minima, times = [], []
            for rep in range(reps()):
                f = SyntheticFunction(case, random_state=1000 * case + rep)
                m, t = run_sampler(f, engine, seed=10 * case + rep)
                minima.append(m)
                times.append(t)
            table[case][engine] = (float(np.mean(minima)), float(np.mean(times)))
    return table


def test_sampler_bakeoff(benchmark):
    table = once(benchmark, run_table)

    rows = []
    for case in CASES:
        row = [f"Case {case}"]
        for engine in SAMPLERS:
            m, t = table[case][engine]
            row += [f"{m:.2f}", f"{t:.2f}s"]
        rows.append(row)
    headers = ["Case"]
    for engine in SAMPLERS:
        headers += [f"{engine} min", "time"]
    write_result("samplers", format_table(headers, rows))

    for case in CASES:
        for engine in SAMPLERS:
            assert np.isfinite(table[case][engine][0]), (case, engine)
        rs_min, _ = table[case]["random"]
        # Model guidance never collectively loses to uniform sampling.
        assert min(table[case][e][0] for e in MODEL_BASED) < rs_min, case
        # The suggest-based samplers carry no O(N^3) surrogate refit.
        gp_time = table[case]["gp-bo"][1]
        for engine in ("tpe", "qmc", "cma-es-lite"):
            assert table[case][engine][1] < gp_time, (case, engine)

    # Averaged over the suite, each model-based sampler individually
    # beats random search (the Table III "BO > RS on minima" claim,
    # extended to the new samplers).
    rs_mean = np.mean([table[c]["random"][0] for c in CASES])
    for engine in MODEL_BASED:
        assert np.mean([table[c][engine][0] for c in CASES]) < rs_mean, engine
