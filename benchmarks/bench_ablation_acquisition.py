"""Ablation — acquisition function choice for the BO engine.

Runs the merged Group 3+4 search of synthetic Case 4 (N = 100) under each
acquisition function (EI, PI, LCB, Thompson sampling) and compares the
minima found.  Shape: all acquisitions land in the same ballpark and every
one of them beats random search with the same budget — the methodology's
conclusions do not hinge on a specific acquisition.
"""

import numpy as np

from repro.bo import BayesianOptimizer
from repro.search import RandomSearch
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result

ACQS = ("ei", "pi", "lcb", "ts")


def g34_problem(seed: int):
    f = SyntheticFunction(4, random_state=seed)
    sp = f.search_space()
    sub = sp.subspace(
        list(GROUP_VARIABLES["Group 3"] + GROUP_VARIABLES["Group 4"]),
        name="G3+4",
    )
    obj = lambda c: (  # noqa: E731
        f.group_objectives(c)["Group 3"] + f.group_objectives(c)["Group 4"]
    )
    return sub, obj


def sweep():
    out = {a: [] for a in ACQS}
    out["random"] = []
    for rep in range(max(2, reps())):
        sub, obj = g34_problem(seed=rep)
        for acq in ACQS:
            r = BayesianOptimizer(
                sub, obj, max_evaluations=budget(100), acquisition=acq,
                random_state=rep,
            ).run()
            out[acq].append(r.best_objective)
        rs = RandomSearch(sub, obj, max_evaluations=budget(100), random_state=rep).run()
        out["random"].append(rs.best_objective)
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_ablation_acquisition(benchmark):
    out = once(benchmark, sweep)
    rows = [[name, f"{out[name]:.2f}"] for name in (*ACQS, "random")]
    write_result(
        "ablation_acquisition",
        format_table(["acquisition", "G3+4 minimum (case 4)"], rows),
    )

    # Every model-based acquisition beats random search.
    for acq in ACQS:
        assert out[acq] < out["random"]
    # And they agree within a modest band (no acquisition cliff).
    vals = [out[a] for a in ACQS]
    assert max(vals) - min(vals) < 0.5 * abs(np.mean(vals))
