"""Phase-1 evaluation engine — observation cost and warm-start savings.

The methodology's Phase 1 (sensitivity analysis) is the part of the
pipeline whose cost the paper's ``1 + V x d`` formula is about.  This
benchmark quantifies what the evaluation engine buys on the synthetic
case-3 application:

* **cross-target profiling** — the legacy path measures each of the
  ``t`` routine targets with its own objective call per configuration
  (``t x (1 + V x d)`` application runs); one profiled run observes all
  targets at once (``1 + V x d`` runs) with bit-identical scores
  (``noise_scale = 0`` so the comparison is exact),
* **parallel fan-out** — planning consumes all random state up front, so
  the ``V x d`` variation runs fan across a process pool with identical
  results; wall-clock is reported with a simulated per-run application
  delay (the host may have a single core — the run *count* is the
  portable headline, the wall-clock the best-case illustration),
* **warm-start reuse** — Phase-1 observations projected onto the planned
  searches replace that many cold BO evaluations one-for-one.

Shape assertions: profiled run count is exactly ``1 + V x d``, the
unprofiled count exactly ``t x`` that, profiled/parallel scores equal the
sequential-unprofiled scores bit-for-bit, and the warm campaign spends
exactly ``warm_seeded`` fewer evaluations than the cold one.
"""

import time

from repro.core import Routine, RoutineSet, TuningMethodology
from repro.insights import Phase1Evaluator, SensitivityAnalysis
from repro.space import Real, SearchSpace
from repro.synthetic import SyntheticFunction

from _helpers import budget, format_table, once, write_result

CASE = 3
SEED = 0
V = max(4, budget(10) // 2)  # variations per parameter
EVAL_DELAY = 0.005  # simulated application runtime per run (seconds)
N_WORKERS = 4


class CountedDelayedTarget:
    """One routine objective with a simulated application runtime."""

    calls = 0  # class-level: per-target instances share the tally

    def __init__(self, function, group):
        self.function = function
        self.group = group

    def __call__(self, cfg):
        type(self).calls += 1
        time.sleep(EVAL_DELAY)
        return self.function.group_outputs(cfg)[self.group]


class CountedDelayedProfiler:
    """One profiled application run yielding every routine timing."""

    calls = 0

    def __init__(self, function):
        self.function = function

    def __call__(self, cfg):
        type(self).calls += 1
        time.sleep(EVAL_DELAY)
        return self.function.group_outputs(cfg)


def analysis(profiler=None):
    f = SyntheticFunction(CASE, noise_scale=0.0, random_state=SEED)
    base = f.routines()
    if profiler is None:
        members = [
            Routine(r.name, r.parameters,
                    CountedDelayedTarget(f, r.name), weight=r.weight)
            for r in base
        ]
        routines = RoutineSet(members)
    else:
        routines = RoutineSet(list(base), profiler=profiler)
    return SensitivityAnalysis.from_routines(
        f.search_space(), routines, n_variations=V, random_state=SEED
    )


def _fa(c):
    return (c["x"] - 3.0) ** 2 + 1.0


def _fb(c):
    return (c["y"] - 7.0) ** 2 + 2.0


def _profiler(c):
    return {"A": _fa(c), "B": _fb(c)}


def tiny_methodology(**kwargs):
    """A 2-routine application whose plan is two 1-d BO searches —
    small enough to run the warm/cold comparison at full budget."""
    space = SearchSpace(
        [Real("x", 0.1, 10.0), Real("y", 0.1, 10.0)], name="tiny"
    )
    routines = RoutineSet(
        [Routine("A", ("x",), _fa), Routine("B", ("y",), _fb)],
        profiler=_profiler,
    )
    return TuningMethodology(
        space, routines, cutoff=0.25, n_variations=6,
        engine="bo", random_state=SEED, **kwargs,
    )


def run_comparison():
    t = len(SyntheticFunction(CASE).routines())
    d = SyntheticFunction.N_DIM

    CountedDelayedTarget.calls = 0
    t0 = time.perf_counter()
    seq_unprof = analysis().run()
    seq_unprof_wall = time.perf_counter() - t0
    seq_unprof_calls = CountedDelayedTarget.calls

    f = SyntheticFunction(CASE, noise_scale=0.0, random_state=SEED)
    CountedDelayedProfiler.calls = 0
    t0 = time.perf_counter()
    seq_prof = analysis(CountedDelayedProfiler(f)).run()
    seq_prof_wall = time.perf_counter() - t0
    seq_prof_calls = CountedDelayedProfiler.calls

    f = SyntheticFunction(CASE, noise_scale=0.0, random_state=SEED)
    t0 = time.perf_counter()
    par_prof = analysis(CountedDelayedProfiler(f)).run(
        evaluator=Phase1Evaluator(parallel=True, n_workers=N_WORKERS)
    )
    par_prof_wall = time.perf_counter() - t0

    n_cfg = 1 + V * d
    assert seq_prof_calls == n_cfg
    assert seq_unprof_calls == t * n_cfg
    assert seq_prof.scores == seq_unprof.scores
    assert par_prof.scores == seq_unprof.scores

    cold = tiny_methodology().run()
    warm = tiny_methodology(warm_start=True).run()
    assert warm.warm_seeded > 0
    assert (
        warm.campaign.n_evaluations
        == cold.campaign.n_evaluations - warm.warm_seeded
    )

    rows = [
        ["sequential unprofiled", seq_unprof_calls,
         f"{seq_unprof_wall:.2f}", "1.00x"],
        ["sequential profiled", seq_prof_calls,
         f"{seq_prof_wall:.2f}",
         f"{seq_unprof_calls / seq_prof_calls:.2f}x"],
        [f"parallel profiled (w={N_WORKERS})", seq_prof_calls,
         f"{par_prof_wall:.2f}",
         f"{seq_unprof_calls / seq_prof_calls:.2f}x"],
    ]
    lines = [
        f"phase-1 sensitivity, synthetic case {CASE} "
        f"(t = {t} targets, d = {d} parameters, V = {V}, "
        f"noise_scale = 0, {EVAL_DELAY * 1000:.0f} ms simulated run)",
        "",
        format_table(
            ["engine", "application runs", "wall (s)", "run reduction"],
            rows,
        ),
        "",
        "scores are bit-identical across all three rows "
        f"(1 + V x d = {n_cfg} runs; unprofiled pays t x that).",
        "",
        "warm-start reuse (tiny 2-routine app, two 1-d BO searches):",
        format_table(
            ["campaign", "search evaluations", "seeded"],
            [
                ["cold", cold.campaign.n_evaluations, 0],
                ["warm", warm.campaign.n_evaluations, warm.warm_seeded],
            ],
        ),
        "",
        f"warm start replaced {warm.warm_seeded} search evaluations with "
        "already-paid phase-1 observations.",
    ]
    return "\n".join(lines)


def test_phase1_engine(benchmark):
    write_result("phase1", once(benchmark, run_comparison))
