"""Section II comparison — the methodology versus related high-dimensional
BO strategies.

The paper surveys three high-dimensional BO families (random embeddings,
dropout, additive decomposition) and argues for decomposing by *measured*
interdependence instead.  This bench runs all of them on synthetic Case 4
(strong G3-G4 coupling) under the same total budget:

* REMBO-style random embedding (distortion-prone projections),
* dropout BO (d of D dims per iteration),
* additive BO with the *naive* per-routine grouping (assumes G3 and G4
  independent — the wrong decomposition the methodology would have
  corrected),
* the methodology's decomposed campaign (G1, G2, G3+G4),
* random search.

Shape: the methodology's decomposition is the best or tied-best, and in
particular beats additive BO with the wrong grouping.
"""

import numpy as np

from repro.bo import AdditiveBO, DropoutBO, RandomEmbeddingBO
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result
from bench_table3_strategies import run_strategy

TOTAL_BUDGET = 200


def run_all():
    out = {k: [] for k in ("rembo", "dropout", "additive", "methodology", "random")}
    for rep in range(reps()):
        f = SyntheticFunction(4, random_state=500 + rep)
        sp = f.search_space()
        b = budget(TOTAL_BUDGET)

        r = RandomEmbeddingBO(
            sp, f, latent_dim=8, max_evaluations=b, random_state=rep
        ).run()
        out["rembo"].append(f(r.best_config))

        r = DropoutBO(
            sp, f, active_dims=8, max_evaluations=b, random_state=rep
        ).run()
        out["dropout"].append(f(r.best_config))

        naive_groups = [list(GROUP_VARIABLES[g]) for g in GROUP_VARIABLES]
        r = AdditiveBO(
            sp, f, naive_groups, max_evaluations=b, random_state=rep
        ).run()
        out["additive"].append(f(r.best_config))

        m, _ = run_strategy(f, "methodology", seed=rep)
        out["methodology"].append(m)
        m, _ = run_strategy(f, "random", seed=rep)
        out["random"].append(m)
    return {k: float(np.mean(v)) for k, v in out.items()}


def test_related_work_comparison(benchmark):
    out = once(benchmark, run_all)
    rows = [
        [name, f"{out[name]:.2f}"]
        for name in ("methodology", "additive", "dropout", "rembo", "random")
    ]
    write_result(
        "related_work",
        format_table(["strategy", "minimum found (case 4, F)"], rows),
    )

    # The methodology's measured decomposition is best or tied-best.
    best_other = min(out[k] for k in ("rembo", "dropout", "additive", "random"))
    assert out["methodology"] <= best_other + 2.0
    # And beats the *wrong* additive decomposition outright: Case 4's
    # G3-G4 coupling breaks the per-routine independence assumption.
    assert out["methodology"] < out["additive"]
    # Dropout and additive at least keep up with random search.
    for k in ("dropout", "additive"):
        assert out[k] < out["random"] + 2.0
    # REMBO may lose to random here: the clipped random projection
    # distorts this objective badly — the paper's own criticism of
    # embedding strategies ("these projections can create distortions").
    # It must merely stay within a modest band of random search.
    assert out["rembo"] < out["random"] * 1.25
