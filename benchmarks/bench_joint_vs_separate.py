"""Section VIII — joint Group 2+3 search versus separate Group 2, Group 3
searches on the RT-TDDFT application.

The paper: "the joint Group 2+3 strategy suggested by our methodology
outperforms the strategy of independent searches for Group 2 and 3 with a
1% improvement in Case Study 1 ... In Case Study 2, the joint Group 2+3
search similarly realized a performance improvement of 4.6%", and
"conducting two independent searches of N=30 and N=100 evaluations
consumes more resources than the single joint Group 2+3 search of N=100".

Here: run both strategies (averaged over repetitions), score them on the
joint Group 2+3 runtime of the combined configuration, and check the
paper's three claims — the joint search wins, the improvement is modest
(single-digit percent, not an order of magnitude), and the separate
strategy spends more evaluations.
"""

import numpy as np

from repro.bo import BayesianOptimizer
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import budget, format_table, once, reps, write_result

PAIR = ["u_pair", "tb_pair", "tb_sm_pair"]
ZCOPY = ["u_zcopy", "tb_zcopy", "tb_sm_zcopy"]
DSCAL = ["u_dscal", "tb_dscal", "tb_sm_dscal"]
G23_JOINT = PAIR + ZCOPY + DSCAL + ["u_zvec"]
G3_ONLY = ZCOPY + DSCAL + ["u_zvec", "tb_zvec", "tb_sm_zvec", "nstreams"]


def g23_runtime(app, cfg):
    return app.group_runtime("Group 2", cfg) + app.group_runtime("Group 3", cfg)


def run_comparison(cs: int, rep: int):
    app = RTTDDFTApplication(case_study(cs), random_state=100 * cs + rep)
    sp = app.search_space()

    # Joint Group 2+3: one 10-dim search, N = 100.
    joint_sub = sp.subspace(G23_JOINT, name="G2+3")
    joint = BayesianOptimizer(
        joint_sub,
        lambda c: g23_runtime(app, c),
        max_evaluations=budget(100),
        random_state=rep,
    ).run()
    joint_evals = joint.n_evaluations

    # Separate: Group 2 (3 params, N = 30) and Group 3 (10 params, N = 100).
    g2_sub = sp.subspace(PAIR, name="G2")
    g2 = BayesianOptimizer(
        g2_sub,
        lambda c: app.group_runtime("Group 2", c),
        max_evaluations=budget(30),
        random_state=rep,
    ).run()
    g3_names = ZCOPY + DSCAL + ["u_zvec", "tb_zvec", "tb_sm_zvec"]
    g3_sub = sp.subspace(g3_names, name="G3")
    g3 = BayesianOptimizer(
        g3_sub,
        lambda c: app.group_runtime("Group 3", c),
        max_evaluations=budget(100),
        random_state=rep + 1,
    ).run()

    separate_cfg = dict(sp.defaults())
    separate_cfg.update({k: g2.best_config[k] for k in PAIR})
    separate_cfg.update({k: g3.best_config[k] for k in g3_names})
    separate_evals = g2.n_evaluations + g3.n_evaluations

    app.noise_scale = 0.0  # score deterministically
    joint_score = g23_runtime(app, joint.best_config)
    separate_score = g23_runtime(app, separate_cfg)
    return joint_score, separate_score, joint_evals, separate_evals


def test_joint_vs_separate(benchmark):
    def run():
        out = {}
        for cs in (1, 2):
            scores = [run_comparison(cs, rep) for rep in range(reps())]
            out[cs] = tuple(np.mean([s[i] for s in scores]) for i in range(4))
        return out

    out = once(benchmark, run)

    rows = []
    for cs in (1, 2):
        j, s, je, se = out[cs]
        improvement = 100.0 * (s - j) / s
        rows.append(
            [f"Case Study {cs}", f"{1000 * j:.3f} ms", f"{1000 * s:.3f} ms",
             f"{improvement:+.1f}%", f"{je:.0f}", f"{se:.0f}"]
        )
    write_result(
        "joint_vs_separate",
        format_table(
            ["Input", "joint G2+3", "separate G2, G3", "joint improvement",
             "joint evals", "separate evals"],
            rows,
        ),
    )

    for cs in (1, 2):
        j, s, je, se = out[cs]
        # The joint search wins...
        assert j <= s * 1.005
        # ...by a modest margin (interdependence is weak, paper: 1-4.6%).
        assert (s - j) / s < 0.5
        # And it costs fewer evaluations than the two separate searches.
        assert je < se
