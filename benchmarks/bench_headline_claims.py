"""Abstract headline claims — "final configurations up to 8% more
accurate, reducing the search time by up to 95%".

Derived from the same strategy comparison as Table III, but scored the way
the abstract frames it: for each synthetic case, compare the methodology's
suggested strategy against the *extreme* strategies (fully joint, fully
independent) on

* accuracy: relative improvement of the minima found, and
* search time: relative reduction of the measured search wall-clock.

Shape checks: the best-case accuracy improvement across cases is positive
(single-digit-to-tens percent against an extreme), and the best-case time
reduction versus the fully-joint search exceeds 90%.
"""

import numpy as np

from repro.synthetic import SyntheticFunction

from _helpers import format_table, once, reps, write_result
from bench_table3_strategies import run_strategy

CASES = (1, 2, 3, 4, 5)
# The methodology suggests merging G3+G4 only for cases 3-5 (Fig. 2).
SUGGESTED = {1: "independent", 2: "independent", 3: "methodology",
             4: "methodology", 5: "methodology"}


def run_claims():
    rows = {}
    for case in CASES:
        acc = {s: [] for s in ("joint", "independent", "suggested")}
        tim = {s: [] for s in ("joint", "independent", "suggested")}
        for rep in range(reps()):
            f = SyntheticFunction(case, random_state=2000 * case + rep)
            for label, strat in (
                ("joint", "joint"),
                ("independent", "independent"),
                ("suggested", SUGGESTED[case]),
            ):
                m, t = run_strategy(f, strat, seed=77 * case + rep)
                acc[label].append(m)
                tim[label].append(t)
        rows[case] = {
            s: (float(np.mean(acc[s])), float(np.mean(tim[s])))
            for s in acc
        }
    return rows


def test_headline_claims(benchmark):
    rows = once(benchmark, run_claims)

    # Objective values are sums of logs; compare on the linear scale the
    # "accuracy" claim implies (exp of the objective ~ product of group
    # magnitudes).
    table = []
    acc_gains, time_cuts = [], []
    for case in CASES:
        jm, jt = rows[case]["joint"]
        im, it = rows[case]["independent"]
        sm, st = rows[case]["suggested"]
        acc_vs_joint = 100.0 * (jm - sm) / abs(jm)
        time_vs_joint = 100.0 * (jt - st) / jt
        acc_gains.append(acc_vs_joint)
        time_cuts.append(time_vs_joint)
        table.append(
            [f"Case {case}", f"{sm:.1f}", f"{jm:.1f}", f"{im:.1f}",
             f"{acc_vs_joint:+.1f}%", f"{time_vs_joint:+.1f}%"]
        )
    write_result(
        "headline_claims",
        format_table(
            ["Case", "suggested min", "joint min", "independent min",
             "minima gain vs joint", "time cut vs joint"],
            table,
        ),
    )

    # "up to 8% more accurate": the suggested strategy beats the joint
    # extreme (our margins typically exceed the paper's 8% because the
    # 20-dim GP navigates even worse at N=200).  Case 1 is excluded from
    # the every-case claim for the zero-manifold artifact documented in
    # bench_table3_strategies / EXPERIMENTS.md.
    assert max(acc_gains) > 5.0
    assert all(g > 0 for g in acc_gains[1:])
    # "reducing the search time by up to 95%": >= 90% cut somewhere.
    assert max(time_cuts) > 90.0
