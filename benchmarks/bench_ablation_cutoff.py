"""Ablation — the interdependence cut-off.

The paper: "There is no a one-size-fits-all cut-off, it depends on the
specific characteristics of the problem".  This ablation sweeps the
cut-off on synthetic Case 3 (the borderline "medium influence" case) and
on the RT-TDDFT application, recording the resulting partition:

* a near-zero cut-off merges everything reachable (noise edges included),
* the paper's operating points (25% synthetic / 10% RT-TDDFT) isolate the
  designed interdependencies,
* a huge cut-off dissolves all edges (fully independent searches).
"""

from repro.core import TuningMethodology
from repro.synthetic import SyntheticFunction
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import format_table, once, write_result

CUTOFFS = (0.01, 0.05, 0.10, 0.25, 0.50, 1.00)


def synthetic_partitions():
    out = {}
    f = SyntheticFunction(3, random_state=0)
    tm = TuningMethodology(
        f.search_space(), f.routines(), cutoff=0.25, n_variations=100,
        random_state=0,
    )
    res = tm.analyze()  # one sensitivity pass, re-pruned per cut-off
    for cut in CUTOFFS:
        dag = res.dag if cut == 0.25 else tm._planner(res.influence, None)
        # Re-prune from the raw influence matrix at each cut-off.
        from repro.core import InterdependenceDAG

        d = InterdependenceDAG.from_influence(res.influence, cutoff=cut)
        out[cut] = d.partition()
    return out


def tddft_partitions():
    app = RTTDDFTApplication(case_study(1), random_state=42)
    tm = TuningMethodology(
        app.search_space(), app.routines(), cutoff=0.10, n_variations=5,
        n_baselines=5, variation_mode="random", hierarchy=app.hierarchy(),
        random_state=42,
    )
    res = tm.analyze()
    out = {}
    for cut in CUTOFFS:
        planner = TuningMethodology(
            app.search_space(), app.routines(), cutoff=cut,
            hierarchy=app.hierarchy(), random_state=42,
        )._planner(res.influence, None)
        out[cut] = [list(s.routines) for s in planner.plan().searches]
    return out


def test_ablation_cutoff_synthetic(benchmark):
    parts = once(benchmark, synthetic_partitions)
    rows = [
        [f"{100 * cut:.0f}%", " | ".join("+".join(c) for c in parts[cut])]
        for cut in CUTOFFS
    ]
    write_result(
        "ablation_cutoff_synthetic",
        format_table(["cut-off", "partition (case 3)"], rows),
    )
    # The paper's 25% operating point: {G1}, {G2}, {G3+G4}.
    assert parts[0.25] == [["Group 1"], ["Group 2"], ["Group 3", "Group 4"]]
    # A huge cut-off dissolves all interdependence.
    assert parts[1.00] == [["Group 1"], ["Group 2"], ["Group 3"], ["Group 4"]]
    # Partition granularity is monotone: components never split as the
    # cut-off decreases.
    sizes = [max(len(c) for c in parts[cut]) for cut in CUTOFFS]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


def test_ablation_cutoff_tddft(benchmark):
    parts = once(benchmark, tddft_partitions)
    rows = [
        [f"{100 * cut:.0f}%", " | ".join("+".join(c) for c in parts[cut])]
        for cut in CUTOFFS
    ]
    write_result(
        "ablation_cutoff_tddft",
        format_table(["cut-off", "searches (case study 1)"], rows),
    )
    # The paper's 10% operating point merges exactly Group 2 with Group 3.
    assert ["Group 2", "Group 3"] in parts[0.10]
    # At 100% even the cache coupling is ignored.
    assert all(len(c) == 1 for c in parts[1.00])
