"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation.  Conventions:

* every benchmark runs through the ``benchmark`` fixture (pytest-benchmark)
  with a single round — the interesting output is the regenerated table,
  not the harness timing,
* regenerated tables are printed AND written to
  ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference them,
* scale knobs come from the environment:

  - ``REPRO_BENCH_REPS``  — repetitions to average (paper: 5; default 1),
  - ``REPRO_BENCH_SCALE`` — multiplier on evaluation budgets (default 1.0;
    the paper-scale budgets are already the default, so this mainly exists
    to *shrink* runs on slow machines).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def reps() -> int:
    """Number of repetitions to average over."""
    return max(1, int(os.environ.get("REPRO_BENCH_REPS", "1")))


def scale() -> float:
    """Budget multiplier."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def budget(n: int) -> int:
    """Scale an evaluation budget, keeping it >= 10."""
    return max(10, int(round(n * scale())))


def write_result(name: str, text: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(v) for v in col) for col in cols]
    def fmt_row(values):
        return "  ".join(str(v).ljust(w) for v, w in zip(values, widths))
    lines = [fmt_row(headers), fmt_row(["-" * w for w in widths])]
    lines += [fmt_row(r) for r in rows]
    return "\n".join(lines)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
