"""Streaming overhead — observation must be (nearly) free.

Runs the same deterministic BO campaign job through the inline service
three ways:

* **untraced** — ``job_traces=False``: the pre-observability baseline
  (no per-job JSONL trace, no bus, nothing to stream);
* **traced** — per-job traces on, but **no subscriber**: the event bus
  must not even exist (streaming is pull-based — no subscriber means no
  tailer thread, no file reads, structurally zero streaming cost);
* **streamed** — traced plus one live subscriber draining every event
  of the job while it runs, exactly what ``repro watch`` or an SSE
  client induces.

Assertions:

* all three runs produce the **same fingerprint** — observation never
  perturbs results;
* with no subscriber the supervisor holds **no event bus at all**
  (the structural form of "zero overhead with zero subscribers");
* the live subscriber received the full stream (``tune_start``, every
  ``combo_result``, terminal ``job_done``);
* streaming overhead stays **under 3%**, measured as the minimum over
  adjacent (traced, streamed) run pairs of the wall-clock ratio —
  pairing cancels scheduler/frequency drift, and a genuine systematic
  cost (tailer reads race the writer for the page cache) would survive
  pairing while noise does not.
"""

import threading
import time
from pathlib import Path

from repro.service import JobRegistry, JobSpec, JobState, Supervisor

from _helpers import budget, format_table, once, reps, write_result

MAX_STREAM_OVERHEAD = 0.03
SEED = 0
CASE = 3


def job_params():
    return {
        "engine": "bo",
        "budget": budget(48),
        "seed": SEED,
        "case": CASE,
        "noise": 0.0,
    }


def run_job(workdir, *, job_traces, subscribe):
    workdir = Path(workdir)
    registry = JobRegistry(workdir / "registry")
    supervisor = Supervisor(
        registry,
        jobs_dir=str(workdir / "jobs"),
        workers=1,
        inline=True,
        job_traces=job_traces,
    )
    rec, decision = supervisor.submit(
        JobSpec(kind="campaign", params=job_params())
    )
    assert decision.admitted

    events = []
    consumer = None
    if subscribe:
        sub = supervisor.event_bus().subscribe(job_id=rec.job_id)

        def drain():
            while True:
                item = sub.get(timeout=5.0)
                if item is None:
                    if sub.closed:
                        return
                    continue
                events.append(item[1])
                if item[1]["event"] == "job_done":
                    return

        consumer = threading.Thread(target=drain, daemon=True)
        consumer.start()

    t0 = time.perf_counter()
    supervisor.tick()
    elapsed = time.perf_counter() - t0

    if subscribe:
        consumer.join(timeout=30)
        assert not consumer.is_alive(), "subscriber never saw job_done"
        supervisor.close_event_bus()
    else:
        # Nobody asked: the whole streaming plane must not exist.
        assert supervisor._event_bus is None

    done = registry.get(rec.job_id)
    registry.close()
    assert done.state == JobState.DONE
    return {
        "elapsed": elapsed,
        "fingerprint": done.result["fingerprint"],
        "events": events,
    }


def test_stream_overhead(benchmark, tmp_path_factory):
    def body():
        runs = {"untraced": [], "traced": [], "streamed": []}
        # Warm-up pays one-time BLAS/thread-pool initialization so it
        # does not land on the first pair.
        run_job(
            tmp_path_factory.mktemp("stream-warmup"),
            job_traces=False, subscribe=False,
        )
        for i in range(max(5, reps())):
            base = tmp_path_factory.mktemp(f"stream-bench-{i}")
            runs["untraced"].append(
                run_job(base / "untraced", job_traces=False, subscribe=False)
            )
            runs["traced"].append(
                run_job(base / "traced", job_traces=True, subscribe=False)
            )
            runs["streamed"].append(
                run_job(base / "streamed", job_traces=True, subscribe=True)
            )
        return runs

    runs = once(benchmark, body)

    # Observation never perturbs the result.
    fingerprints = {
        variant: {r["fingerprint"] for r in rows}
        for variant, rows in runs.items()
    }
    assert all(len(f) == 1 for f in fingerprints.values())
    assert (
        fingerprints["untraced"]
        == fingerprints["traced"]
        == fingerprints["streamed"]
    )

    # The live subscriber saw the whole story, every round.
    n = job_params()["budget"]
    for r in runs["streamed"]:
        names = [e["event"] for e in r["events"]]
        assert "tune_start" in names
        assert names.count("combo_result") == n
        assert names[-1] == "job_done"

    import statistics

    ratios = sorted(
        streamed["elapsed"] / traced["elapsed"] - 1.0
        for traced, streamed in zip(runs["traced"], runs["streamed"])
    )
    overhead = ratios[0]  # systematic floor; noise only raises pairs
    median = statistics.median(ratios)
    t = {v: min(r["elapsed"] for r in rows) for v, rows in runs.items()}

    rows = [
        ("untraced (no observability)", f"{t['untraced']:.2f}", "-", "-"),
        ("traced, no subscriber", f"{t['traced']:.2f}", "-", "-"),
        (
            "traced + live subscriber",
            f"{t['streamed']:.2f}",
            f"{100 * overhead:+.1f}%",
            f"{100 * median:+.1f}%",
        ),
    ]
    write_result(
        "stream_overhead",
        format_table(
            ("pipeline", "wall [s]", "paired min", "paired median"), rows
        )
        + f"\n\nbudget={n} evaluations, case {CASE}, seed {SEED}; "
        f"bound: paired-min subscriber overhead <= "
        f"{MAX_STREAM_OVERHEAD:.0%} vs traced-unobserved; with no "
        f"subscriber the bus/tailer is never constructed (structural "
        f"zero); fingerprints identical across all three variants",
    )
    assert overhead <= MAX_STREAM_OVERHEAD
