"""Section V motivation — the CPU path's communication bottleneck.

The paper motivates the GPU offload with a profile of the CPU MPI code:
"around 40-50% of the runtime is attributed to communication primitives.
Notably, most of this overhead is incurred during a matrix
transpose&padding step when calculating 3D-FFTs among ngb MPI tasks."

This bench sweeps the QBox grid's ``ngb`` dimension on the CPU model and
checks the claims:

* there is a practical operating range where communication is 40-60% of
  the runtime,
* the transpose&padding dominates that communication,
* setting ``ngb = 1`` (the GPU port's structural change) removes it.
"""

from repro.mpisim import ClusterSpec
from repro.tddft import CpuRTTDDFT, case_study

from _helpers import format_table, once, write_result


def sweep():
    cluster = ClusterSpec(name="perlmutter-cpu", nodes=10, ranks_per_node=64)
    cpu = CpuRTTDDFT(case_study(1), cluster)
    rows = {}
    for ngb in (1, 2, 4, 8, 16, 32, 64):
        for nstb in (8,):
            cfg = {"nspb": 1, "nkpb": 1, "nstb": nstb, "ngb": ngb}
            if nstb * ngb > cluster.total_ranks:
                continue
            rows[ngb] = cpu.slater_profile(cfg)
    best = cpu.best_balanced_grid()
    return cpu, rows, best


def test_cpu_communication_motivation(benchmark):
    cpu, rows, best = once(benchmark, sweep)

    table = [
        [str(ngb), f"{p.total:.3f}s", f"{100 * p.communication_fraction:.1f}%"]
        for ngb, p in sorted(rows.items())
    ]
    bp = cpu.slater_profile(best)
    table.append(
        [f"best grid {best}", f"{bp.total:.3f}s",
         f"{100 * bp.communication_fraction:.1f}%"]
    )
    write_result(
        "cpu_motivation",
        format_table(["ngb", "Slater time", "communication share"], table),
    )

    fracs = {ngb: p.communication_fraction for ngb, p in rows.items()}
    # The paper's 40-50% regime exists within the practical ngb range.
    assert any(0.35 <= f <= 0.65 for f in fracs.values())
    # The GPU port's ngb = 1 eliminates the communication...
    assert fracs[1] < 0.05
    # ...which is why nqb = 1 "disrupt[s] the optimal balance among
    # previous MPI parameters": the CPU-optimal grid wants ngb > 1.
    assert best["ngb"] > 1
    assert bp.communication_fraction > 0.3