"""Incremental-GP fast path — the surrogate-fit speedup, measured.

The BO loop adds one observation per iteration, yet the classic loop
refits from scratch: an O(N^3) Cholesky per step.  The incremental path
(:meth:`repro.bo.gp.GaussianProcess.update`) extends the existing factor
by a rank-1 block in O(N^2) and reuses cached kernel cross-columns when
re-scoring a candidate pool.  This benchmark measures both effects and
ties the speedup claim to correctness:

* **per-observation fit**: median wall-clock of absorbing one new point,
  full refit vs. incremental update, at N = 50/100/200/400 — the
  acceptance bound is a **>= 3x median speedup at N = 200**,
* **candidate re-scoring**: predicting on a C=512 pool after an update,
  cold cache vs. the cross-column cache,
* **differential guard**: the harness seeds must produce *identical*
  proposal sequences with the fast path on vs. off — a speedup that
  changes what BO proposes would be a bug, not an optimization.

Sizes are fixed (not ``REPRO_BENCH_SCALE``-scaled): the N=200 bound *is*
the acceptance criterion.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bo.gp import GaussianProcess
from repro.bo.kernels import kernel_by_name

from _helpers import format_table, once, reps, write_result
from tests.bo.harness.differential import run_differential

SIZES = (50, 100, 200, 400)
TARGET_N = 200
MIN_SPEEDUP = 3.0
STEPS = 8          # observations absorbed (and timed) per measurement
POOL = 512         # candidate-pool size for the re-scoring measurement
HARNESS_SEEDS = (0, 1, 2)


def _data(n, d=6, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n + STEPS, d))
    y = np.sin(X.sum(axis=1)) + 0.1 * rng.standard_normal(n + STEPS)
    return X, y


def _fresh(d=6):
    return GaussianProcess(kernel=kernel_by_name("matern52", d), random_state=0)


def time_full_refit(n):
    """Median seconds per absorbed observation via full refit."""
    X, y = _data(n)
    gp = _fresh()
    gp.fit(X[:n], y[:n], optimize=False)
    times = []
    for i in range(STEPS):
        t0 = time.perf_counter()
        gp.fit(X[: n + i + 1], y[: n + i + 1], optimize=False)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def time_incremental(n):
    """Median seconds per absorbed observation via rank-1 update."""
    X, y = _data(n)
    gp = _fresh()
    gp.fit(X[:n], y[:n], optimize=False)
    times = []
    for i in range(STEPS):
        t0 = time.perf_counter()
        gp.update(X[n + i : n + i + 1], y[n + i : n + i + 1])
        times.append(time.perf_counter() - t0)
    assert gp.last_fit_mode == "incremental"
    assert gp.n_incremental == STEPS
    return float(np.median(times))


def time_rescoring(n):
    """(cold, cached) median seconds to score a C=512 pool post-update.

    Both passes follow the constant-liar pattern — update one point, then
    re-score the pool — but the cold pass hands ``predict`` a fresh array
    each time (cache miss by object identity) while the cached pass keeps
    scoring the same pool object, riding the cross-column cache.
    """
    X, y = _data(n)
    pool = np.random.default_rng(1).random((POOL, X.shape[1]))
    cold_times, cached_times = [], []

    gp = _fresh()
    gp.fit(X[:n], y[:n], optimize=False)
    for i in range(STEPS):
        gp.update(X[n + i : n + i + 1], y[n + i : n + i + 1])
        fresh_pool = pool.copy()  # different object: full (N x C) solve
        t0 = time.perf_counter()
        gp.predict(fresh_pool)
        cold_times.append(time.perf_counter() - t0)

    gp = _fresh()
    gp.fit(X[:n], y[:n], optimize=False)
    gp.predict(pool)  # prime the cache
    for i in range(STEPS):
        gp.update(X[n + i : n + i + 1], y[n + i : n + i + 1])
        t0 = time.perf_counter()
        gp.predict(pool)  # extends the cached Ks/V by one row
        cached_times.append(time.perf_counter() - t0)
    return float(np.median(cold_times)), float(np.median(cached_times))


def test_incremental_speedup(benchmark):
    def body():
        measurements = {}
        for n in SIZES:
            # Best-of-reps guards against scheduler noise on shared CI.
            full = min(time_full_refit(n) for _ in range(max(3, reps())))
            inc = min(time_incremental(n) for _ in range(max(3, reps())))
            cold, cached = time_rescoring(n)
            measurements[n] = (full, inc, cold, cached)
        return measurements

    measurements = once(benchmark, body)

    rows = []
    for n, (full, inc, cold, cached) in measurements.items():
        rows.append(
            (
                n,
                f"{full * 1e3:.3f}",
                f"{inc * 1e3:.3f}",
                f"{full / inc:.1f}x",
                f"{cold * 1e3:.3f}",
                f"{cached * 1e3:.3f}",
                f"{cold / cached:.1f}x",
            )
        )
    table = format_table(
        [
            "N",
            "full refit [ms]",
            "rank-1 update [ms]",
            "fit speedup",
            "pool rescore cold [ms]",
            "cached [ms]",
            "rescore speedup",
        ],
        rows,
    )

    reports = [run_differential(seed) for seed in HARNESS_SEEDS]
    guard_lines = [r.line() for r in reports]
    speedup = measurements[TARGET_N][0] / measurements[TARGET_N][1]
    write_result(
        "gp_incremental",
        table
        + f"\n\nbound: fit speedup >= {MIN_SPEEDUP:.0f}x at N={TARGET_N} "
        "(median per absorbed observation)\n"
        "differential guard (fast path on vs. off):\n  "
        + "\n  ".join(guard_lines),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"incremental speedup {speedup:.1f}x at N={TARGET_N} below "
        f"{MIN_SPEEDUP:.0f}x bound"
    )
    for report in reports:
        assert report.identical, report.line()
        assert report.n_incremental_fits > 0
