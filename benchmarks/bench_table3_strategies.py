"""Table III — minima found and search time for four strategies on the
five synthetic cases.

Strategies, as in the paper:

* **Random Search** — one fully-joint 20-dim random search, N = 200,
  embarrassingly parallel (time = measured engine wall-clock; evaluations
  are free),
* **G1+G2+G3+G4 BO** — one fully-joint 20-dim BO search, N = 200,
* **G1, G2, G3+G4 BO** — the methodology's suggestion for cases 3-5: two
  independent 5-dim searches (N = 50) plus one merged 10-dim search
  (N = 100), run in parallel,
* **G1, G2, G3, G4 BO** — four independent 5-dim searches (N = 50).

"Minima Found" is the full objective F evaluated at each strategy's
combined best configuration; "Time" is the *measured* wall-clock of the
search process (max over parallel member searches), which for synthetic
functions is dominated by the GP modeling overhead — the paper's
O(N^3)-driven gap between the joint search and everything else.

Shape assertions (paper-text claims, not absolute numbers):
* BO beats random search on minima in every case,
* the joint 20-dim search is by far the slowest,
* the decomposed strategies cut search time by >90% versus the joint one,
* on the high-interdependence cases (4, 5) the merged G3+G4 strategy finds
  better minima than fully-independent searches.
"""

import numpy as np

from repro.search import RandomSearch, SearchCampaign, SearchSpec
from repro.synthetic import GROUP_VARIABLES, SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result

CASES = (1, 2, 3, 4, 5)


def group_objective(f, names):
    """Per-group search objective on the same log scale as F.

    Each decomposed search minimizes its groups' contribution to the full
    objective (sum of log|g|), so the joint and decomposed strategies
    optimize the same metric and the comparison isolates *search
    decomposition*, not objective shaping.
    """

    def obj(cfg):
        outs = f.group_objectives(cfg)
        return float(sum(outs[n] for n in names))

    return obj


def run_strategy(f, strategy: str, seed: int):
    """Returns (minima_found, measured_time_seconds)."""
    sp = f.search_space()
    if strategy == "random":
        import time as _time

        t0 = _time.perf_counter()
        r = RandomSearch(sp, f, max_evaluations=budget(200), random_state=seed).run()
        elapsed = _time.perf_counter() - t0
        return f(r.best_config), elapsed

    if strategy == "joint":
        specs = [SearchSpec(sp, f, engine="bo", max_evaluations=budget(200))]
    elif strategy == "methodology":
        g34 = sp.subspace(
            list(GROUP_VARIABLES["Group 3"] + GROUP_VARIABLES["Group 4"]),
            name="Group 3+4",
        )
        specs = [
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES["Group 1"]), name="Group 1"),
                group_objective(f, ["Group 1"]),
                max_evaluations=budget(50),
            ),
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES["Group 2"]), name="Group 2"),
                group_objective(f, ["Group 2"]),
                max_evaluations=budget(50),
            ),
            SearchSpec(
                g34,
                group_objective(f, ["Group 3", "Group 4"]),
                max_evaluations=budget(100),
            ),
        ]
    elif strategy == "independent":
        specs = [
            SearchSpec(
                sp.subspace(list(GROUP_VARIABLES[g]), name=g),
                group_objective(f, [g]),
                max_evaluations=budget(50),
            )
            for g in ("Group 1", "Group 2", "Group 3", "Group 4")
        ]
    else:
        raise ValueError(strategy)

    campaign = SearchCampaign(specs, strategy=strategy, random_state=seed).run()
    cfg = dict(f.search_space().defaults())
    cfg.update(campaign.combined_config)
    return f(cfg), campaign.measured_wall_time


STRATEGIES = ("random", "joint", "methodology", "independent")
LABELS = {
    "random": "Random Search",
    "joint": "G1+G2+G3+G4 BO",
    "methodology": "G1, G2, G3+G4 BO",
    "independent": "G1, G2, G3, G4 BO",
}


def run_table():
    table = {}
    for case in CASES:
        table[case] = {}
        for strat in STRATEGIES:
            minima, times = [], []
            for rep in range(reps()):
                f = SyntheticFunction(case, random_state=1000 * case + rep)
                m, t = run_strategy(f, strat, seed=10 * case + rep)
                minima.append(m)
                times.append(t)
            table[case][strat] = (float(np.mean(minima)), float(np.mean(times)))
    return table


def test_table3_strategy_comparison(benchmark):
    table = once(benchmark, run_table)

    rows = []
    for case in CASES:
        row = [f"Case {case}"]
        for strat in STRATEGIES:
            m, t = table[case][strat]
            row += [f"{m:.1f}", f"{t:.1f}s"]
        rows.append(row)
    headers = ["Case"]
    for strat in STRATEGIES:
        headers += [f"{LABELS[strat]} min", "time"]
    write_result("table3_strategies", format_table(headers, rows))

    for case in CASES:
        rs_min, rs_time = table[case]["random"]
        joint_min, joint_time = table[case]["joint"]
        meth_min, meth_time = table[case]["methodology"]
        ind_min, ind_time = table[case]["independent"]

        # BO-based strategies beat random search on minima.
        assert min(joint_min, meth_min, ind_min) < rs_min
        # The decomposed strategies beat the joint 20-dim BO search.
        # Case 1 is excluded from the per-case claim: its Group-3 formula
        # (sum x_u + sum cos) has a zero manifold where log|G3| spikes to
        # -inf, and the joint search can sit on it while the decomposed
        # strategy loses it when Group 4's tuned variables shift the
        # cosines — an artifact of the synthetic log objective, not of the
        # decomposition (documented in EXPERIMENTS.md).
        if case != 1:
            assert meth_min < joint_min
        # Time ordering: the joint search is the slowest by far; the
        # decomposed searches cut >90% of its wall-clock (the paper's
        # "reducing the search time by up to 95%").
        assert joint_time > 4 * meth_time
        assert meth_time < 0.25 * joint_time
        assert ind_time <= meth_time * 1.5

    # Aggregate: decomposition wins on minima across the suite.
    mean_meth = np.mean([table[c]["methodology"][0] for c in CASES])
    mean_joint = np.mean([table[c]["joint"][0] for c in CASES])
    assert mean_meth < mean_joint

    # High-interdependence cases: merging G3+G4 pays off on minima.
    high_gap = [
        table[c]["independent"][0] - table[c]["methodology"][0] for c in (4, 5)
    ]
    assert np.mean(high_gap) > 0
