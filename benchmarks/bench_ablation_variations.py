"""Ablation — variations per parameter (V) in the sensitivity analysis.

The paper: "In sensitivity analysis, more variations improve accuracy, but
real HPC applications ... are resource-intensive."  This ablation sweeps V
on synthetic Case 3 and measures (a) the observation cost (exactly
``1 + V x 20``) and (b) whether the derived partition matches the
reference partition obtained at V = 100.
"""

from repro.core import TuningMethodology
from repro.synthetic import SyntheticFunction

from _helpers import format_table, once, write_result

VS = (3, 5, 10, 20, 50, 100)
REFERENCE = [["Group 1"], ["Group 2"], ["Group 3", "Group 4"]]


def sweep():
    out = {}
    for v in VS:
        correct = 0
        evals = 0
        trials = 5
        for seed in range(trials):
            f = SyntheticFunction(3, random_state=seed)
            tm = TuningMethodology(
                f.search_space(), f.routines(), cutoff=0.25,
                n_variations=v, random_state=seed,
            )
            res = tm.analyze()
            evals += res.analysis_evaluations
            if res.dag.partition() == REFERENCE:
                correct += 1
        out[v] = (correct / trials, evals / trials)
    return out


def test_ablation_variations(benchmark):
    out = once(benchmark, sweep)
    rows = [
        [str(v), f"{100 * out[v][0]:.0f}%", f"{out[v][1]:.0f}"]
        for v in VS
    ]
    write_result(
        "ablation_variations",
        format_table(["V", "partition recovery", "observations"], rows),
    )

    # Cost accounting is exact: 1 + V x 20 observations.
    for v in VS:
        assert out[v][1] == 1 + v * 20
    # The paper-scale V = 100 recovers the reference partition reliably.
    assert out[100][0] == 1.0
    assert out[50][0] >= 0.8
    # Larger V never hurts much: recovery at the top is at least as good
    # as at the bottom of the sweep.
    assert out[100][0] >= out[3][0]
