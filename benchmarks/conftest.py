"""Benchmark-suite configuration: show regenerated tables on the console."""

import sys
from pathlib import Path

# Make the sibling _helpers module importable from every bench file even
# when pytest is invoked from a different working directory.
sys.path.insert(0, str(Path(__file__).parent))
# And the repo root, so benchmarks can reuse the tests/bo/harness
# differential runner (bench_gp_incremental ties its speedup claim to
# proposal-sequence identity on the harness seeds).
sys.path.insert(0, str(Path(__file__).parent.parent))
