"""Benchmark-suite configuration: show regenerated tables on the console."""

import sys
from pathlib import Path

# Make the sibling _helpers module importable from every bench file even
# when pytest is invoked from a different working directory.
sys.path.insert(0, str(Path(__file__).parent))
