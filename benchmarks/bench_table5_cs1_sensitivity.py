"""Table V — per-region sensitivity analysis on Case Study 1 (MgP).

Reruns methodology phase 1 on the simulated RT-TDDFT application (random
baseline, 5 expert-style variations per parameter) and checks the
structural couplings the paper reads off the table:

* nbatches dominates Groups 1, 2, and 3 (workload per invocation),
* Group 2's threadblock parameters (tb_pair / tb_sm_pair) move Group 3
  above the 10% cut-off (the GPU-cache interdependence),
* Group 1 sees no external influence above the cut-off other than the
  hierarchical nbatches,
* nstb dominates the Slater-determinant region.
"""

import numpy as np

from repro.core import TuningMethodology
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import format_table, once, write_result

CUTOFF = 0.10


def run_sensitivity(cs: int, seed: int = 42):
    app = RTTDDFTApplication(case_study(cs), random_state=seed)
    tm = TuningMethodology(
        app.search_space(),
        app.routines(),
        cutoff=CUTOFF,
        n_variations=5,
        # Average the influence scores over several random baselines: the
        # single-baseline estimator's variance would make the drop-choice
        # ranking of the merged search flip between near-tied parameters.
        n_baselines=5,
        variation_mode="random",
        hierarchy=app.hierarchy(),
        random_state=seed,
    )
    return app, tm.analyze()


def render(res, name):
    lines = [f"analysis evaluations: {res.analysis_evaluations}", ""]
    for target in ("Group 1", "Group 2", "Group 3", "Slater Determinant"):
        rows = [
            [p, f"{100 * s:.2f}%"]
            for p, s in res.sensitivity.top(target, 10)
        ]
        lines.append(f"== {target} ==")
        lines.append(format_table(["Feature", "Variability"], rows))
        lines.append("")
    write_result(name, "\n".join(lines))


def test_table5_cs1_sensitivity(benchmark):
    app, res = once(benchmark, lambda: run_sensitivity(1))
    render(res, "table5_cs1_sensitivity")
    s = res.sensitivity.scores

    # nbatches dominates every kernel group (the paper's 357%/320%/94%).
    for g in ("Group 1", "Group 2", "Group 3"):
        top = res.sensitivity.top(g, 1)[0][0]
        assert top == "nbatches"
        assert s[g]["nbatches"] > CUTOFF

    # Group 2 -> Group 3 cache coupling above the cut-off.
    pair_on_g3 = max(s["Group 3"]["tb_pair"], s["Group 3"]["tb_sm_pair"])
    assert pair_on_g3 > CUTOFF

    # Group 1's only above-cutoff external influence is hierarchical.
    g1_externals = {
        p: v
        for p, v in s["Group 1"].items()
        if v > CUTOFF and p not in (
            "u_vec", "tb_vec", "tb_sm_vec", "u_zcopy", "tb_zcopy", "tb_sm_zcopy",
        )
    }
    assert set(g1_externals) <= {"nbatches", "nstreams", "nstb", "nkpb", "nspb"}

    # nstb dominates the Slater region (the paper's 88%).
    assert res.sensitivity.top("Slater Determinant", 1)[0][0] == "nstb"

    # zcopy parameters matter more in Group 3 than in Group 1 (rule-5
    # input: the forward transpose&padding is the heavy call site).
    assert s["Group 3"]["tb_zcopy"] > s["Group 1"]["tb_zcopy"]
