"""Section IV-C cost claim — sensitivity analysis versus orthogonality
analysis.

The paper's central cost argument: "we novelly leverage sensitivity
analysis to infer routine orthogonality ... By studying the individual
effect of each parameter on every routine baseline configuration, we
significantly reduce the required observations" compared to the pairwise/
additive-decomposition analyses of the high-dimensional BO literature.

This bench runs both analyses on synthetic Case 4 and reports:

* observations consumed (the methodology's 1 + dV versus the baseline's
  1 + dV + C(d,2) V^2),
* whether each analysis recovers the designed G3-G4 interdependence.

Shape: both find the interdependence; the sensitivity route needs well
under 1/10th of the observations.
"""

from repro.core import InfluenceMatrix, InterdependenceDAG
from repro.insights import (
    PairwiseOrthogonalityAnalysis,
    SensitivityAnalysis,
    observation_cost,
    sensitivity_observation_cost,
)
from repro.synthetic import SyntheticFunction

from _helpers import format_table, once, write_result


def run_both():
    f = SyntheticFunction(4, random_state=0)
    sp = f.search_space()
    routines = f.routines()

    sens = SensitivityAnalysis.from_routines(
        sp, routines, n_variations=5, random_state=0
    ).run()
    dag = InterdependenceDAG.from_influence(
        InfluenceMatrix.from_sensitivity(routines, sens), cutoff=0.25
    )

    ortho = PairwiseOrthogonalityAnalysis(
        sp, f, n_variations=3, random_state=0
    ).run()
    inter = ortho.routine_interdependence(routines)
    return sens, dag, ortho, inter, routines


def test_orthogonality_cost_comparison(benchmark):
    sens, dag, ortho, inter, routines = once(benchmark, run_both)

    g34 = inter[frozenset(("Group 3", "Group 4"))]
    others = [v for k, v in inter.items() if k != frozenset(("Group 3", "Group 4"))]
    rows = [
        ["sensitivity (paper)", str(sens.n_evaluations),
         "yes" if dag.dependent_pairs() == {frozenset(("Group 3", "Group 4"))} else "no"],
        ["pairwise orthogonality", str(ortho.n_evaluations),
         "yes" if g34 > 2 * max(others) else "no"],
        ["formula d=20, V=5", str(sensitivity_observation_cost(20, 5)), ""],
        ["formula pairwise d=20, V=3", str(observation_cost(20, 3)), ""],
    ]
    write_result(
        "orthogonality_cost",
        format_table(["analysis", "observations", "finds G3-G4 link"], rows),
    )

    # Both analyses find the designed interdependence...
    assert dag.dependent_pairs() == {frozenset(("Group 3", "Group 4"))}
    assert g34 > 2 * max(others)
    # ...but the sensitivity analysis needs a small fraction of the
    # observations (the paper's cost-effectiveness claim).
    assert sens.n_evaluations < 0.1 * ortho.n_evaluations
