"""Figure 5 — the RT-TDDFT dependency diagram (10% cut-off).

Renders the interdependence DAG the methodology derives for the simulated
application and asserts its structure: nbatches links the Slater region to
all three kernel groups, the MPI grid links to the Slater region through
nstb, and the only *peer* (non-hierarchical) dependence is Group 2 ->
Group 3 via the pairwise kernel's threadblock parameters.
"""

from repro.core import TuningMethodology
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import once, write_result
from bench_table5_cs1_sensitivity import run_sensitivity

HIERARCHICAL = {"MPI Grid", "Slater Determinant"}


def test_fig5_dependency_diagram(benchmark):
    app, res = once(benchmark, lambda: run_sensitivity(1))
    dag = res.dag

    write_result(
        "fig5_tddft_dag",
        "RT-TDDFT interdependence DAG (Case Study 1, 10% cut-off)\n\n"
        + (res.dag_diagram or dag.format_diagram())
        + "\n\nplanned searches:\n"
        + res.plan.format_table(),
    )

    edges = dag.edges()
    # nbatches (Slater region) reaches every kernel group.
    nb_targets = {
        dst for src, dst, params in edges
        if src == "Slater Determinant" and "nbatches" in params
    }
    assert {"Group 1", "Group 2", "Group 3"} <= nb_targets

    # nstb (MPI grid) reaches the Slater region.
    assert any(
        src == "MPI Grid" and dst == "Slater Determinant" and "nstb" in params
        for src, dst, params in edges
    )

    # The only peer edge (between kernel groups) is Group 2 -> Group 3.
    peer_edges = [
        (src, dst)
        for src, dst, _ in edges
        if src not in HIERARCHICAL and dst not in HIERARCHICAL
    ]
    assert peer_edges
    assert set(peer_edges) == {("Group 2", "Group 3")}

    # And its parameters are the pairwise kernel's (correlated) tb pair.
    for src, dst, params in edges:
        if (src, dst) == ("Group 2", "Group 3"):
            assert set(params) <= {"tb_pair", "tb_sm_pair", "u_pair"}
