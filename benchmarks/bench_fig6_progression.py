"""Figure 6 — BO best-so-far progression over evaluated candidates.

Runs the methodology's merged Group 2+3 search (the paper's N = 100
flagship search) for both case studies and prints the progression series
the figure plots.  Case Study 2 additionally uses transfer learning from
Case Study 1's evaluation database, as in the paper.

Shape checks:
* the progression is monotonically non-increasing,
* the tuned configuration clearly beats the initial random candidates,
* transfer learning starts CS2 from a better incumbent than a cold start.
"""

import numpy as np

from repro.bo import BayesianOptimizer, transfer_bo
from repro.tddft import RTTDDFTApplication, case_study

from _helpers import budget, format_table, once, write_result


def g23_problem(cs: int, seed: int):
    app = RTTDDFTApplication(case_study(cs), random_state=seed)
    sp = app.search_space()
    names = [
        "u_pair", "tb_pair", "tb_sm_pair",
        "u_zcopy", "tb_zcopy", "tb_sm_zcopy",
        "u_dscal", "tb_dscal", "tb_sm_dscal",
        "u_zvec",
    ]
    sub = sp.subspace(names, name=f"Group 2+3 (CS{cs})")
    obj = lambda c: app.group_runtime("Group 2", c) + app.group_runtime("Group 3", c)  # noqa: E731
    return app, sub, obj


def run_progressions():
    # Case Study 1: cold-start BO.
    _, sub1, obj1 = g23_problem(1, seed=0)
    r1 = BayesianOptimizer(
        sub1, obj1, max_evaluations=budget(100), random_state=0
    ).run()

    # Case Study 2: transfer learning from CS1's database.
    _, sub2, obj2 = g23_problem(2, seed=1)
    r2 = transfer_bo(
        sub2, obj2, r1.database, max_evaluations=budget(100), random_state=1
    )

    # CS2 cold start, for the transfer comparison.
    _, sub2b, obj2b = g23_problem(2, seed=1)
    r2_cold = BayesianOptimizer(
        sub2b, obj2b, max_evaluations=budget(100), random_state=1
    ).run()
    return r1, r2, r2_cold


def test_fig6_progression(benchmark):
    r1, r2, r2_cold = once(benchmark, run_progressions)

    rows = []
    t1, t2, t2c = r1.trajectory, r2.trajectory, r2_cold.trajectory
    for i in range(0, len(t1), 10):
        rows.append(
            [
                str(i + 1),
                f"{1000 * t1[i]:.3f}",
                f"{1000 * t2[min(i, len(t2) - 1)]:.3f}",
                f"{1000 * t2c[min(i, len(t2c) - 1)]:.3f}",
            ]
        )
    rows.append(
        ["final", f"{1000 * t1[-1]:.3f}", f"{1000 * t2[-1]:.3f}", f"{1000 * t2c[-1]:.3f}"]
    )
    write_result(
        "fig6_progression",
        format_table(
            ["evaluations", "CS1 best (ms)", "CS2 transfer (ms)", "CS2 cold (ms)"],
            rows,
        ),
    )

    # Progressions are monotone non-increasing.
    for t in (t1, t2, t2c):
        assert np.all(np.diff(t) <= 1e-12)
    # The search improves substantially over the first random candidate.
    assert t1[-1] < 0.8 * t1[0]
    # Transfer learning's incumbent after the seeded design beats the cold
    # start's at the same point.
    k = 5
    assert t2[k] <= t2c[k] * 1.05
    # And the final tuned result is at least as good.
    assert t2[-1] <= t2c[-1] * 1.1
