"""Service overhead — crash-safety must be (nearly) free.

Runs the same deterministic BO campaign job two ways:

* **bare** — a ``SearchCampaign`` driven directly (checkpointing on,
  since the service requires it and checkpointing long predates it);
* **service** — the full crash-safe pipeline in inline mode: WAL-backed
  registry submit, admission check, lease + fence write, the per-
  evaluation :class:`repro.service.jobs.JobGuard` check, result
  fingerprinting, and the ``done`` transition fsynced to the WAL.

Inline mode keeps both sides in one process, so the comparison isolates
the service machinery itself from worker fork/exec noise.

Assertions:

* the service-run job is **bit-identical** to the bare campaign — same
  evaluation records (digest), same best objective;
* service overhead stays **under 5%**, measured as the minimum over
  adjacent (bare, service) run pairs of the wall-clock ratio: pairing
  cancels scheduler/frequency drift, and a genuine systematic cost
  (fence reads are per evaluation, WAL fsyncs per transition) would
  survive pairing while noise does not.
"""

import time
from pathlib import Path

from repro.search import SearchCampaign, SearchSpec
from repro.service import (
    AdmissionController,
    JobRegistry,
    JobSpec,
    JobState,
    Supervisor,
)
from repro.service.jobs import _db_digest
from repro.synthetic import SyntheticFunction

from _helpers import budget, format_table, once, reps, write_result

MAX_OVERHEAD = 0.05
SEED = 0
CASE = 3


def job_params():
    return {
        "engine": "bo",
        "budget": budget(48),
        "seed": SEED,
        "case": CASE,
        "noise": 0.0,
    }


def run_bare(workdir):
    """The job's exact campaign, driven directly."""
    params = job_params()
    f = SyntheticFunction(
        case=CASE, noise_scale=0.0, random_state=SEED
    )
    t0 = time.perf_counter()
    result = SearchCampaign(
        [
            SearchSpec(
                f.search_space(),
                f,
                engine="bo",
                max_evaluations=params["budget"],
            )
        ],
        random_state=SEED,
        parallel=False,
        checkpoint_dir=str(Path(workdir) / "checkpoints"),
    ).run()
    elapsed = time.perf_counter() - t0
    search = result.searches[0]
    return {
        "elapsed": elapsed,
        "digest": _db_digest(search.database),
        "best": search.best_objective,
    }


def run_service(workdir):
    """The same job through registry + admission + supervised lease."""
    workdir = Path(workdir)
    t0 = time.perf_counter()
    registry = JobRegistry(workdir / "registry")
    supervisor = Supervisor(
        registry,
        jobs_dir=str(workdir / "jobs"),
        admission=AdmissionController(max_queue=4),
        workers=1,
        inline=True,
        # This benchmark isolates the crash-safety machinery; the
        # observability plane has its own bound in bench_stream_overhead.
        job_traces=False,
    )
    rec, decision = supervisor.submit(JobSpec(kind="campaign", params=job_params()))
    assert decision.admitted
    supervisor.tick()
    done = registry.get(rec.job_id)
    registry.compact()
    registry.close()
    elapsed = time.perf_counter() - t0
    assert done.state == JobState.DONE
    return {
        "elapsed": elapsed,
        "digest": done.result["searches"][0]["digest"],
        "best": done.result["searches"][0]["best_objective"],
    }


def test_service_overhead(benchmark, tmp_path_factory):
    def body():
        runs = {"bare": [], "service": []}
        # Warm-up: the first GP fit pays BLAS/thread-pool initialization,
        # which would otherwise land entirely on the first bare run and
        # skew the first (bare, service) pair.
        run_bare(tmp_path_factory.mktemp("svc-bench-warmup"))
        for i in range(max(5, reps())):
            base = tmp_path_factory.mktemp(f"svc-bench-{i}")
            runs["bare"].append(run_bare(base / "bare"))
            runs["service"].append(run_service(base / "service"))
        return runs

    runs = once(benchmark, body)
    bare, service = runs["bare"][0], runs["service"][0]

    # Crash-safety is a pure wrapper: identical records, identical best.
    assert service["digest"] == bare["digest"]
    assert service["best"] == bare["best"]

    import statistics

    ratios = sorted(
        svc["elapsed"] / base["elapsed"] - 1.0
        for base, svc in zip(runs["bare"], runs["service"])
    )
    overhead = ratios[0]  # the systematic floor; noise only raises pairs
    median = statistics.median(ratios)
    t_bare = min(r["elapsed"] for r in runs["bare"])
    t_service = min(r["elapsed"] for r in runs["service"])

    rows = [
        ("bare campaign", f"{t_bare:.2f}", "-", "-", f"{bare['best']:.3f}"),
        (
            "job service (inline)",
            f"{t_service:.2f}",
            f"{100 * overhead:+.1f}%",
            f"{100 * median:+.1f}%",
            f"{service['best']:.3f}",
        ),
    ]
    write_result(
        "service_overhead",
        format_table(
            ("pipeline", "wall [s]", "paired min", "paired median", "best"),
            rows,
        )
        + f"\n\nbudget={job_params()['budget']} evaluations, case {CASE}, "
        f"seed {SEED}; bound: paired-min overhead <= {MAX_OVERHEAD:.0%} "
        f"(min over adjacent run pairs cancels machine drift; a real "
        f"systematic cost would raise every pair)",
    )
    assert overhead <= MAX_OVERHEAD
