"""Figure 2 — the interdependence DAG for synthetic Case 3 (25% cut-off).

Runs methodology phase 1 (per-routine sensitivity) on Case 3 and renders
the pruned DAG.  The paper's figure shows Group 4's variables linking into
Group 3 while Groups 1 and 2 stay isolated — exactly the structure asserted
here, plus the partition {G1}, {G2}, {G3+G4} it implies.
"""

from repro.core import TuningMethodology
from repro.synthetic import SyntheticFunction

from _helpers import format_table, once, write_result


def build_dag(case: int = 3, cutoff: float = 0.25, seed: int = 0):
    f = SyntheticFunction(case, random_state=seed)
    tm = TuningMethodology(
        f.search_space(),
        f.routines(),
        cutoff=cutoff,
        n_variations=100,
        variation_mode="relative",
        random_state=seed,
    )
    return tm.analyze()


def test_fig2_case3_dag(benchmark):
    res = once(benchmark, build_dag)
    dag = res.dag

    lines = [
        f"synthetic Case 3, cut-off 25%, "
        f"analysis evaluations: {res.analysis_evaluations}",
        "",
        dag.format_diagram(),
    ]
    write_result("fig2_dag", "\n".join(lines))

    # The figure's structure: only G3 <-> G4 interdependence survives.
    assert dag.dependent_pairs() == {frozenset({"Group 3", "Group 4"})}
    assert dag.is_independent("Group 1")
    assert dag.is_independent("Group 2")
    # Every edge parameter is a Group-4 variable influencing Group 3.
    for src, dst, params in dag.edges():
        assert dst == "Group 3"
        assert src == "Group 4"
        assert set(params) <= {f"x{i}" for i in range(15, 20)}
    # The implied partition is the paper's suggested search set.
    assert dag.partition() == [["Group 1"], ["Group 2"], ["Group 3", "Group 4"]]


def test_fig2_cutoff_sensitivity(benchmark):
    """Raising the cut-off far enough dissolves the G3-G4 edge; the DAG
    prune is the mechanism, not a hard-coded rule."""

    def run():
        res = build_dag(case=3, cutoff=0.25)
        full = res.dag
        return full, full.prune(10.0)

    full, pruned = once(benchmark, run)
    assert full.dependent_pairs()
    assert not pruned.dependent_pairs()
