"""Table II — variability of Group 3's output for the five synthetic cases.

Reruns the paper's sensitivity analysis ("a baseline configuration was
randomly selected, and subsequently, 100 individual variations were
systematically applied to each parameter ... increasing the variable value
by 10% relative to the preceding iteration") with Group 3's output as the
target, and checks the paper's reading of the table:

* Cases 1-2: variability comes mainly from Group 3's own variables
  (x10..x14),
* Case 3: both groups contribute comparably,
* Cases 4-5: Group 4's variables (x15..x19) dominate.
"""

import numpy as np

from repro.insights import SensitivityAnalysis
from repro.synthetic import SyntheticFunction

from _helpers import format_table, once, write_result


def group3_variability(case: int, seed: int = 7) -> dict[str, float]:
    f = SyntheticFunction(case, random_state=seed)
    sa = SensitivityAnalysis(
        f.search_space(),
        {"Group 3": lambda c: f.group_outputs(c)["Group 3"]},
        n_variations=100,
        variation=0.10,
        mode="relative",
        random_state=seed,
    )
    res = sa.run()
    return res.scores["Group 3"]


def test_table2_group3_variability(benchmark):
    scores = once(
        benchmark, lambda: {c: group3_variability(c) for c in range(1, 6)}
    )

    rows = []
    for i in range(10, 20):
        rows.append(
            [f"x{i}"] + [f"{100 * scores[c][f'x{i}']:.1f}%" for c in range(1, 6)]
        )
    write_result(
        "table2_sensitivity",
        format_table(
            ["Feature", "Case 1", "Case 2", "Case 3", "Case 4", "Case 5"], rows
        ),
    )

    own = {c: np.mean([scores[c][f"x{i}"] for i in range(10, 15)]) for c in scores}
    ext = {c: np.mean([scores[c][f"x{i}"] for i in range(15, 20)]) for c in scores}
    other = {
        c: np.mean([scores[c][f"x{i}"] for i in range(0, 10)]) for c in scores
    }

    # Cases 1-2: own variables dominate; cases 4-5: Group 4 dominates.
    assert own[1] > 5 * ext[1]
    assert own[2] > ext[2]
    assert ext[4] > own[4]
    assert ext[5] > own[5]
    # Group 4's share rises monotonically with the case grading.
    shares = [ext[c] / (ext[c] + own[c]) for c in range(1, 6)]
    assert all(a < b + 0.05 for a, b in zip(shares, shares[1:]))
    # Variables from Groups 1-2 never matter for Group 3 (noise floor).
    for c in range(1, 6):
        assert other[c] < 0.01
    # The top-10 sensitive variables are exactly x10..x19 (paper caption).
    for c in range(1, 6):
        top10 = sorted(scores[c], key=scores[c].get, reverse=True)[:10]
        assert set(top10) == {f"x{i}" for i in range(10, 20)}
