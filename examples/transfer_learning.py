#!/usr/bin/env python
"""Transfer learning between material systems (paper Figure 6).

The paper tunes Case Study 2 (the hexagonal-BN slab) "using transfer
learning to benefit from Case Study 1's configuration database".  This
example:

1. tunes the merged Group 2+3 search on Case Study 1 and keeps its
   evaluation database (checkpointed to disk — the same file a crashed
   search would resume from),
2. re-tunes Case Study 2 cold and with the CS1 database as a stacked-GP
   prior + warm-start seeds,
3. prints both progressions side by side.

Run:  python examples/transfer_learning.py
"""

import tempfile
from pathlib import Path

from repro.bo import BayesianOptimizer, EvaluationDatabase, transfer_bo
from repro.tddft import RTTDDFTApplication, case_study

G23 = [
    "u_pair", "tb_pair", "tb_sm_pair",
    "u_zcopy", "tb_zcopy", "tb_sm_zcopy",
    "u_dscal", "tb_dscal", "tb_sm_dscal",
    "u_zvec",
]


def make_problem(cs: int, seed: int):
    app = RTTDDFTApplication(case_study(cs), random_state=seed)
    sub = app.search_space().subspace(G23, name=f"Group 2+3 (CS{cs})")

    def objective(cfg):
        return app.group_runtime("Group 2", cfg) + app.group_runtime("Group 3", cfg)

    return app, sub, objective


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-transfer-"))

    # --- source task: Case Study 1, database checkpointed to disk -------
    _, sub1, obj1 = make_problem(1, seed=0)
    db_path = workdir / "cs1.json"
    source = BayesianOptimizer(
        sub1, obj1, max_evaluations=100,
        database=EvaluationDatabase(db_path, task="cs1"),
        random_state=0,
    ).run()
    print(f"CS1 tuned: best Group 2+3 runtime {1000 * source.best_objective:.3f} ms "
          f"({source.n_evaluations} evaluations; database -> {db_path})")

    # --- target task: Case Study 2, cold vs transfer ---------------------
    _, sub2, obj2 = make_problem(2, seed=1)
    cold = BayesianOptimizer(sub2, obj2, max_evaluations=100, random_state=1).run()

    _, sub2b, obj2b = make_problem(2, seed=1)
    warm = transfer_bo(
        sub2b, obj2b, EvaluationDatabase(db_path),
        max_evaluations=100, random_state=1,
    )

    print(f"\nCS2 cold start : {1000 * cold.best_objective:.3f} ms")
    print(f"CS2 transfer   : {1000 * warm.best_objective:.3f} ms")

    print("\nbest-so-far progression (ms):")
    print(f"{'evals':>6} {'cold':>10} {'transfer':>10}")
    tc, tw = cold.trajectory, warm.trajectory
    for i in list(range(0, 100, 10)) + [99]:
        print(f"{i + 1:>6} {1000 * tc[min(i, len(tc) - 1)]:>10.3f} "
              f"{1000 * tw[min(i, len(tw) - 1)]:>10.3f}")


if __name__ == "__main__":
    main()
