#!/usr/bin/env python
"""Tuning a *real* (measured, not simulated) workload.

Everything else in this repository scores configurations with a
performance model; this example tunes the numeric Slater mini-app
(:class:`repro.tddft.NumericSlaterApp`) — actual numpy FFTs over actual
wavefunctions — on measured wall-clock.  The tunable is the band batch
size, the same ``nbatches`` parameter the RT-TDDFT study tunes, and the
objective is noisy in exactly the way real machines are.

Also demonstrates the profiling workflow from the HPC-Python guidance:
measure first (region profile), then tune the bottleneck's parameter.

Run:  python examples/numeric_miniapp.py
"""

import numpy as np

from repro.bo import BayesianOptimizer
from repro.space import Integer, SearchSpace
from repro.tddft import NumericSlaterApp


def main() -> None:
    app = NumericSlaterApp(grid_shape=(32, 32, 32), nbands=32, random_state=0)
    print(
        f"numeric Slater mini-app: grid {app.grid_shape}, {app.nbands} bands, "
        f"{app.n_gvectors} G-vectors/band"
    )

    # --- measure first ----------------------------------------------------
    result = app.run(1)
    print("\nregion profile (nbatches=1):")
    print(result.timings.format())
    print(f"\nphysics check: density integrates to "
          f"{result.density.sum():.6f} (expect {app.nbands})")

    # --- then tune --------------------------------------------------------
    space = SearchSpace([Integer("nbatches", 1, app.nbands, default=1)],
                        name="numeric-slater")

    # Average a few runs per evaluation: measured wall-clock is noisy.
    def objective(cfg):
        return float(np.median([app.objective(cfg) for _ in range(3)]))

    search = BayesianOptimizer(
        space, objective, max_evaluations=12, random_state=0
    )
    tuned = search.run()

    base = objective({"nbatches": 1})
    best = tuned.best_objective
    print(f"\nbaseline (nbatches=1)     : {1000 * base:8.2f} ms")
    print(f"tuned   (nbatches={tuned.best_config['nbatches']:>2})    : "
          f"{1000 * best:8.2f} ms")
    print(f"speedup                   : {base / best:8.2f}x")

    print("\nbatch sweep (median of 3):")
    for b in (1, 2, 4, 8, 16, 32):
        print(f"  nbatches={b:<3} {1000 * objective({'nbatches': b}):8.2f} ms")


if __name__ == "__main__":
    main()
