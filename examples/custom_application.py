#!/usr/bin/env python
"""Applying the methodology to your own application.

The methodology only needs three things from an application:

1. a constrained :class:`repro.space.SearchSpace` over its tuning
   parameters,
2. a :class:`repro.core.RoutineSet` — one entry per tunable code region
   with the parameters it *owns* and a runtime callable,
3. (optionally) a region hierarchy for outer-loop parameters.

This example builds a small made-up pipeline — a stencil kernel, a halo
exchange, and an I/O stage — with a hidden interdependence: the stencil's
tile size changes the message layout the halo exchange sees.  The
methodology discovers the coupling from runtime observations alone and
merges exactly those two searches.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro.core import Routine, RoutineSet, TuningMethodology
from repro.space import Constraint, Integer, Ordinal, SearchSpace

rng = np.random.default_rng(0)


# ---------------------------------------------------------------------------
# A made-up application: three regions, seven parameters.
# ---------------------------------------------------------------------------
def stencil_time(cfg):
    """Tiled stencil: best at tile=64, unroll=4."""
    tile, unroll = cfg["tile"], cfg["unroll"]
    t = 10.0 * (1 + 0.15 * abs(np.log2(tile) - 6)) * (1 + 0.1 * abs(np.log2(unroll) - 2))
    return t * float(np.exp(rng.normal(0, 0.01)))


def halo_time(cfg):
    """Halo exchange: depends on its own message aggregation AND on the
    stencil's tile size (tile shapes the surface-to-volume ratio of the
    exchanged halos) — the hidden interdependence."""
    agg, overlap = cfg["aggregation"], cfg["overlap"]
    tile = cfg["tile"]  # <- external influence
    surface = 256.0 / tile  # smaller tiles -> more halo traffic
    t = surface * (1 + 1.0 / agg) * (1.0 if overlap else 1.4)
    return t * float(np.exp(rng.normal(0, 0.01)))


def io_time(cfg):
    """Collective I/O: independent of everything else."""
    stripes, buffer_mb = cfg["stripes"], cfg["buffer_mb"]
    t = 20.0 / min(stripes, 8) + 0.05 * abs(buffer_mb - 64)
    return t * float(np.exp(rng.normal(0, 0.01)))


def main() -> None:
    space = SearchSpace(
        [
            Ordinal("tile", [8, 16, 32, 64, 128], default=32),
            Ordinal("unroll", [1, 2, 4, 8], default=1),
            Integer("aggregation", 1, 16, default=1),
            Ordinal("overlap", [0, 1], default=0),
            Integer("stripes", 1, 16, default=4),
            Integer("buffer_mb", 1, 256, default=16),
            Integer("writers", 1, 8, default=1),
        ],
        [
            Constraint(
                lambda c: c["stripes"] >= c["writers"],
                names=("stripes", "writers"),
                name="one_stripe_per_writer",
            )
        ],
        name="my-pipeline",
    )

    routines = RoutineSet(
        [
            Routine("stencil", ("tile", "unroll"), stencil_time, weight=10.0),
            Routine("halo", ("aggregation", "overlap"), halo_time, weight=5.0),
            Routine("io", ("stripes", "buffer_mb", "writers"), io_time, weight=2.0),
        ]
    )

    tm = TuningMethodology(
        space, routines,
        cutoff=0.10,
        n_variations=10,
        n_baselines=3,
        variation_mode="random",
        random_state=0,
    )
    result = tm.run()

    print(result.summary())

    tuned = result.best_config
    total = lambda cfg: stencil_time(cfg) + halo_time(cfg) + io_time(cfg)  # noqa: E731
    defaults = space.defaults()
    print(f"\ndefault pipeline time: {total(defaults):7.2f}")
    print(f"tuned pipeline time  : {total(tuned):7.2f}")
    merged = [s for s in result.plan.searches if s.is_merged]
    if merged:
        print(f"\ndiscovered interdependence -> merged search: {merged[0].name}")


if __name__ == "__main__":
    main()
