#!/usr/bin/env python
"""Tuning the (simulated) GPU-offloaded RT-TDDFT application.

Reproduces the paper's Section VIII flow on Case Study 1 (the magnesium-
porphyrin molecule):

* the expert-constrained 20-parameter search space of Table IV,
* phase 1: per-region sensitivity analysis (5 variations per parameter,
  averaged over several baselines),
* phase 2: the staged search plan of Table VII —
  MPI grid -> batch/stream ("Iterations") -> {Group 1, Group 2+3},
* execution with Bayesian optimization, pinning each stage's optimum for
  the next stage,
* before/after comparison against the untuned default configuration.

Run:  python examples/tddft_tuning.py [case_study]
"""

import sys

from repro.core import TuningMethodology
from repro.tddft import RTTDDFTApplication, case_study


def main(cs: int = 1) -> None:
    app = RTTDDFTApplication(case_study(cs), random_state=0)
    print(f"system: {app.system.name}  "
          f"(spin={app.system.nspin}, k-points={app.system.nkpoints}, "
          f"bands={app.system.nbands}, FFT={app.system.fft_size:,})")
    print(f"allocation: {app.cluster.nodes} nodes x "
          f"{app.cluster.ranks_per_node} GPU ranks")

    print("\nGPU kernel profile at defaults (paper Section V-A):")
    for name, share in sorted(app.gpu_profile().items(), key=lambda kv: -kv[1]):
        print(f"  {name:12s} {100 * share:5.1f}%")

    methodology = TuningMethodology(
        app.search_space(),
        app.routines(),
        cutoff=0.10,              # the paper's RT-TDDFT cut-off
        n_variations=5,           # expert-style variations
        n_baselines=5,            # average the sensitivity over baselines
        variation_mode="random",
        hierarchy=app.hierarchy(),  # MPI grid > Slater region > groups
        random_state=0,
    )

    result = methodology.run()
    print("\n" + result.summary())

    defaults = app.defaults()
    tuned = result.best_config
    app.noise_scale = 0.0
    before = app.total_runtime(defaults)
    after = app.total_runtime(tuned)
    print(f"\ndefault configuration : {1000 * before:8.2f} ms / rt-iteration")
    print(f"tuned configuration   : {1000 * after:8.2f} ms / rt-iteration")
    print(f"speedup               : {before / after:8.2f}x")
    print("\ntuned parameters:")
    for k in sorted(tuned):
        if tuned[k] != defaults.get(k):
            print(f"  {k:14s} {defaults.get(k)!r:>6} -> {tuned[k]!r}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
