#!/usr/bin/env python
"""Real-time propagation and an absorption-spectrum-style observable.

The physics workflow RT-TDDFT exists for: kick the system with a weak
delta perturbation, propagate the wavefunction in real time through the
FFT <-> pointwise pipeline (the pattern the whole tuning study optimizes),
record the dipole signal, and Fourier-transform it into a spectrum.

Also shows why the tuning matters end to end: the tuned band batch size
from the mini-app study is reused here, and every propagation step runs
the batched FFT pipeline.

Run:  python examples/realtime_spectrum.py
"""

import numpy as np

from repro.tddft import ImaginaryTimeSolver, NumericSlaterApp, SplitOperatorPropagator


def main() -> None:
    app = NumericSlaterApp(grid_shape=(24, 24, 24), nbands=8, random_state=0)

    # Start from the DFT-style ground state (imaginary-time relaxation),
    # exactly as an RT-TDDFT run would.
    print("relaxing to the ground state (imaginary time)...")
    gs = ImaginaryTimeSolver(app, dtau=0.2).solve(
        max_iterations=150, tol=1e-9, config={"nbatches": 4}
    )
    app.coefficients = gs.coefficients
    print(f"  band energies: {np.array2string(gs.band_energies, precision=3)}")

    dt, steps = 0.05, 200
    prop = SplitOperatorPropagator(app, dt=dt, kick=0.2)

    print(f"\npropagating {app.nbands} bands on a {app.grid_shape} grid "
          f"for {steps} steps (dt={dt})...")
    res = prop.propagate(steps, config={"nbatches": 4})

    norm_drift = np.ptp(res.norms) / res.norms[0]
    energy_drift = np.ptp(res.energies) / abs(res.energies[0])
    print(f"wall time     : {res.wall_time:.2f}s")
    print(f"norm drift    : {norm_drift:.2e}  (unitary propagator)")
    print(f"energy drift  : {energy_drift:.2e}  (Trotter wobble)")

    # Spectrum: |FFT| of the windowed dipole signal.
    signal = res.dipole - res.dipole.mean()
    window = np.hanning(len(signal))
    spectrum = np.abs(np.fft.rfft(signal * window))
    freqs = np.fft.rfftfreq(len(signal), d=dt) * 2 * np.pi

    print("\ndipole power spectrum (text plot):")
    top = spectrum[1:].max()
    for i in range(1, min(len(freqs), 30)):
        bar = "#" * int(50 * spectrum[i] / top)
        print(f"  w={freqs[i]:6.2f} {bar}")

    peak = freqs[1 + int(np.argmax(spectrum[1:]))]
    print(f"\ndominant excitation frequency: {peak:.2f}")

    print("\npropagation region profile:")
    print(res.timings.format())


if __name__ == "__main__":
    main()
