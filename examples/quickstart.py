#!/usr/bin/env python
"""Quickstart: the cost-effective tuning methodology in ~40 lines.

Tunes the paper's synthetic Case 3 (four routines, 20 parameters, medium
cross-routine interdependence) end to end:

1. sensitivity analysis discovers that Group 4's variables move Group 3,
2. the DAG partition merges those two searches and keeps the rest
   independent,
3. Bayesian optimization runs the planned searches.

Run:  python examples/quickstart.py
"""

from repro.core import TuningMethodology
from repro.synthetic import SyntheticFunction


def main() -> None:
    # The application under tuning: callable on 20-parameter configs,
    # decomposed into four routines that each own five parameters.
    app = SyntheticFunction(case=3, random_state=0)
    space = app.search_space()
    routines = app.routines()

    methodology = TuningMethodology(
        space,
        routines,
        cutoff=0.25,        # the paper's synthetic interdependence cut-off
        n_variations=100,   # V variations per parameter (paper: 100)
        dimension_cap=10,   # max dims per search (paper: 10)
        random_state=0,
    )

    result = methodology.run()

    print(result.summary())
    print()
    best = result.best_config
    print(f"combined best configuration scores F = {app(best):.2f}")
    print(
        f"evaluations: {result.analysis_evaluations} (analysis) + "
        f"{result.campaign.n_evaluations} (search) = {result.total_evaluations}"
    )


if __name__ == "__main__":
    main()
